/// \file cost_model_explorer.cpp
/// Interactive-style exploration of the analytical machinery: for a grid
/// of Pareto shapes, evaluate the exact discrete model Eq. (50) at a
/// finite n, the asymptotic limit via Algorithm 2, and the model's own
/// computation time — a miniature of the Table 5 story plus the regime
/// map of Section 6.3.
///
/// Usage: cost_model_explorer [n] [eps]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace trilist;
  const auto n =
      argc > 1 ? std::strtoll(argv[1], nullptr, 10) : int64_t{1000000};
  const double eps = argc > 2 ? std::strtod(argv[2], nullptr) : 1e-5;

  std::printf("cost model explorer: n=%lld, Algorithm-2 eps=%g\n\n",
              static_cast<long long>(n), eps);
  std::printf(
      "per-node cost of each method under its optimal permutation\n"
      "(model Eq. 50 at n with root truncation; limit via Algorithm 2)\n\n");

  const struct {
    Method method;
    PermutationKind order;
  } cells[] = {
      {Method::kT1, PermutationKind::kDescending},
      {Method::kT2, PermutationKind::kRoundRobin},
      {Method::kE1, PermutationKind::kDescending},
      {Method::kE4, PermutationKind::kComplementaryRoundRobin},
  };

  TablePrinter table({"alpha", "method+order", "model@n", "limit",
                      "finite?", "model time"});
  for (double alpha : {1.2, 4.0 / 3.0, 1.5, 1.7, 2.1, 3.0}) {
    const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
    const int64_t t_n = TruncationPoint(TruncationKind::kRoot, n);
    const TruncatedDistribution fn(base, t_n);
    for (const auto& cell : cells) {
      const XiMap xi = XiMap::FromKind(cell.order);
      Timer timer;
      const double model = ExactDiscreteCost(fn, t_n, cell.method, xi);
      const double model_seconds = timer.ElapsedSeconds();
      const bool finite = IsFiniteAsymptoticCost(cell.method, xi, alpha);
      timer.Start();
      const double limit =
          finite ? AsymptoticCost(base, cell.method, xi,
                                  WeightFn::Identity(), eps)
                 : 0.0;
      char label[32];
      std::snprintf(label, sizeof(label), "%s+%s", MethodName(cell.method),
                    PermutationKindName(cell.order));
      table.AddRow({FormatNumber(alpha, 3), label, FormatNumber(model, 1),
                    finite ? FormatNumber(limit, 1) : "inf",
                    finite ? "yes" : "no",
                    FormatNumber(model_seconds * 1e3, 1) + "ms"});
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nreading the table: T1+theta_D stays finite down to alpha > 4/3,\n"
      "E1+theta_D needs alpha > 1.5, and in between the vertex iterator\n"
      "wins no matter how fast scanning intersection is (Section 6.3).\n");
  return 0;
}
