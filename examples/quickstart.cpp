/// \file quickstart.cpp
/// Minimal end-to-end tour of the library:
///  1. sample a heavy-tailed degree sequence (truncated Pareto),
///  2. realize it exactly as a simple graph (Section 7.2 generator),
///  3. relabel + orient under the descending-degree order,
///  4. list triangles with the four fundamental methods (T1, T2, E1, E4)
///     and compare their measured operation counts with the paper's cost
///     formulas.
///
/// Usage: quickstart [n] [alpha] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/algo/registry.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/order/pipeline.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

int main(int argc, char** argv) {
  using namespace trilist;
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 1.7;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  std::printf("trilist quickstart: n=%zu alpha=%.2f seed=%llu\n", n, alpha,
              static_cast<unsigned long long>(seed));

  // 1. Degree distribution: discretized Pareto, root truncation (AMRC).
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(TruncationKind::kRoot,
                                      static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t_n);
  Rng rng(seed);
  DegreeSequence seq = DegreeSequence::SampleIid(fn, n, &rng);
  std::vector<int64_t> degrees = seq.degrees();
  MakeGraphic(&degrees);

  // 2. Exact realization.
  Timer timer;
  ResidualGenStats gen_stats;
  auto graph_result = GenerateExactDegree(degrees, &rng, &gen_stats);
  if (!graph_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph_result.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *graph_result;
  std::printf("generated graph: m=%zu edges in %.2fs (unplaced stubs: %lld)\n",
              graph.num_edges(), timer.ElapsedSeconds(),
              static_cast<long long>(gen_stats.unplaced_stubs));

  // 3. Relabel + orient (three-step framework, steps 1-2).
  const OrientedGraph oriented =
      OrientNamed(graph, PermutationKind::kDescending);

  // 4. List triangles with each fundamental method and compare costs.
  TablePrinter table({"method", "triangles", "paper-metric ops",
                      "formula ops", "seconds"});
  for (Method m : FundamentalMethods()) {
    CountingSink sink;
    Timer method_timer;
    const OpCounts ops = RunMethod(m, oriented, &sink);
    table.AddRow({MethodName(m), FormatCount(sink.count()),
                  FormatCount(static_cast<uint64_t>(ops.PaperCost())),
                  FormatCount(static_cast<uint64_t>(
                      MethodCostTotal(oriented, m))),
                  FormatNumber(method_timer.ElapsedSeconds(), 3)});
  }
  table.Print(std::cout);
  return 0;
}
