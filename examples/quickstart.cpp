/// \file quickstart.cpp
/// Minimal end-to-end tour of the library, driven through the unified
/// run layer: one RunSpec describes the whole experiment —
///  1. sample a heavy-tailed degree sequence (truncated Pareto) and
///     realize it exactly as a simple graph (Section 7.2 generator),
///  2. relabel + orient under the descending-degree order,
///  3. list triangles with the four fundamental methods (T1, T2, E1, E4)
/// — and RunPipeline returns a RunReport with per-stage wall times plus,
/// per method, the measured operation counters next to the paper's
/// closed-form cost prediction.
///
/// Usage: quickstart [n] [alpha] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/run/runner.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace trilist;
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 1.7;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  std::printf("trilist quickstart: n=%zu alpha=%.2f seed=%llu\n", n, alpha,
              static_cast<unsigned long long>(seed));

  RunSpec spec;
  GenerateSpec gen;
  gen.n = n;
  gen.alpha = alpha;  // root truncation + residual generator by default
  spec.source = GraphSource::FromGenerator(gen);
  spec.orient = OrientSpec{PermutationKind::kDescending, seed};
  spec.methods = FundamentalMethods();
  spec.seed = seed;

  auto report = RunPipeline(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "generated graph: m=%zu edges in %.2fs (orient %.2fs)\n",
      report->num_edges, report->stages.WallOf("generate"),
      report->stages.WallOf("order") + report->stages.WallOf("orient"));

  TablePrinter table({"method", "triangles", "paper-metric ops",
                      "formula ops", "seconds"});
  for (const MethodReport& m : report->methods) {
    table.AddRow({MethodName(m.method), FormatCount(m.triangles),
                  FormatCount(static_cast<uint64_t>(m.ops.PaperCost())),
                  FormatCount(static_cast<uint64_t>(m.formula_cost)),
                  FormatNumber(m.wall_s, 3)});
  }
  table.Print(std::cout);
  return 0;
}
