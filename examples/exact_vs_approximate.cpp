/// \file exact_vs_approximate.cpp
/// Exact listing vs sublinear estimation on the same graph: runs the
/// recommended exact configuration (E1 + theta_D), wedge sampling at
/// increasing sample sizes, and a RAM-constrained partitioned run — the
/// three operating points a practitioner chooses between.
///
/// Usage: exact_vs_approximate [n] [alpha] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/algo/registry.h"
#include "src/algo/wedge_sampling.h"
#include "src/order/pipeline.h"
#include "src/run/runner.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"
#include "src/xm/partitioned.h"

int main(int argc, char** argv) {
  using namespace trilist;
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 1.7;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 21;

  Rng rng(seed);
  GenerateSpec gen;
  gen.n = n;
  gen.alpha = alpha;
  auto graph = GenerateGraph(gen, &rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("exact vs approximate: n=%zu m=%zu alpha=%.2f seed=%llu\n\n",
              n, graph->num_edges(), alpha,
              static_cast<unsigned long long>(seed));

  TablePrinter table({"strategy", "triangles", "error", "seconds",
                      "notes"});

  // Exact, in memory.
  const OrientedGraph og =
      OrientNamed(*graph, PermutationKind::kDescending);
  Timer timer;
  CountingSink exact_sink;
  RunMethod(Method::kE1, og, &exact_sink);
  const double exact_time = timer.ElapsedSeconds();
  const auto truth = static_cast<double>(exact_sink.count());
  table.AddRow({"E1 + theta_D (exact)", FormatCount(exact_sink.count()),
                "0%", FormatNumber(exact_time, 3), "ground truth"});

  // Exact, partitioned under a tight RAM budget.
  {
    const auto graph_bytes =
        static_cast<int64_t>(og.num_arcs() * sizeof(NodeId));
    const Partitioning parts =
        Partitioning::ForMemoryBudget(og, graph_bytes / 8 + 1);
    timer.Start();
    CountingSink sink;
    IoStats io;
    RunPartitionedE1(og, parts, &sink, &io);
    char note[64];
    std::snprintf(note, sizeof(note), "K=%zu, %s I/O",
                  parts.num_partitions(),
                  FormatBytes(static_cast<double>(io.TotalBytes())).c_str());
    table.AddRow({"partitioned E1 (1/8 RAM)", FormatCount(sink.count()),
                  "0%", FormatNumber(timer.ElapsedSeconds(), 3), note});
  }

  // Approximate, at three budgets.
  for (uint64_t samples : {1000ull, 10000ull, 100000ull}) {
    timer.Start();
    const WedgeSampleEstimate est =
        EstimateTrianglesByWedgeSampling(*graph, samples, &rng);
    const double err =
        truth > 0 ? (est.triangles - truth) / truth * 100.0 : 0.0;
    char label[48];
    std::snprintf(label, sizeof(label), "wedge sampling (%llu)",
                  static_cast<unsigned long long>(samples));
    // confidence99 is an absolute band on transitivity; express it
    // relative to the estimate for comparability with the error column.
    const double rel_band =
        est.transitivity > 0.0
            ? est.confidence99 / est.transitivity * 100.0
            : 0.0;
    char note[64];
    std::snprintf(note, sizeof(note), "99%% band +/-%.1f%%", rel_band);
    table.AddRow({label,
                  FormatCount(static_cast<uint64_t>(est.triangles + 0.5)),
                  FormatPercent(err, 1),
                  FormatNumber(timer.ElapsedSeconds(), 3), note});
  }
  table.Print(std::cout);
  return 0;
}
