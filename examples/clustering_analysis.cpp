/// \file clustering_analysis.cpp
/// A small graph-mining application on top of the listing API: measure how
/// much more clustered a heavy-tailed "social" graph is than an
/// Erdos-Renyi graph of the same size and density — the observation that
/// motivates subgraph mining in the paper's introduction (triangles occur
/// far more often in natural networks than in classical random graphs).
///
/// For each graph we compute the number of triangles T, the number of
/// wedges W (paths of length 2), and the global clustering coefficient
/// C = 3T / W, using the cheapest listing configuration the theory
/// recommends (E1 + theta_D for light tails).
///
/// Usage: clustering_analysis [n] [alpha] [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "src/gen/erdos_renyi.h"
#include "src/run/runner.h"
#include "src/util/rng.h"
#include "src/util/table_printer.h"

namespace {

using namespace trilist;

struct ClusteringReport {
  uint64_t triangles = 0;
  double wedges = 0.0;
  double clustering = 0.0;
  double mean_degree = 0.0;
};

ClusteringReport Analyze(const Graph& g) {
  ClusteringReport report;
  // E1 + theta_D, the cheapest exact configuration for light tails,
  // through the shared pipeline (orient + list).
  RunSpec spec;
  spec.source = GraphSource::FromGraph(g);
  spec.methods = {Method::kE1};
  auto run = RunPipeline(spec);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 run.status().ToString().c_str());
    std::exit(1);
  }
  report.triangles = run->Triangles();
  double wedges = 0.0;
  double degree_sum = 0.0;
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    const auto d = static_cast<double>(g.Degree(static_cast<NodeId>(v)));
    wedges += d * (d - 1) / 2.0;
    degree_sum += d;
  }
  report.wedges = wedges;
  report.clustering =
      wedges > 0 ? 3.0 * static_cast<double>(report.triangles) / wedges : 0.0;
  report.mean_degree =
      g.num_nodes() > 0 ? degree_sum / static_cast<double>(g.num_nodes())
                        : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30000;
  const double alpha = argc > 2 ? std::strtod(argv[2], nullptr) : 1.7;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;
  Rng rng(seed);

  // Heavy-tailed "social network": exact realization of a truncated
  // Pareto degree sequence, via the shared run-layer generation path.
  GenerateSpec gen;
  gen.n = n;
  gen.alpha = alpha;
  auto social = GenerateGraph(gen, &rng);
  if (!social.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 social.status().ToString().c_str());
    return 1;
  }

  // Erdos-Renyi control with the same expected number of edges.
  const double p = static_cast<double>(social->num_edges()) /
                   (static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
  const Graph er = GenerateGnp(n, p, &rng);

  const ClusteringReport sr = Analyze(*social);
  const ClusteringReport er_report = Analyze(er);

  std::printf("clustering analysis: n=%zu alpha=%.2f seed=%llu\n\n", n,
              alpha, static_cast<unsigned long long>(seed));
  TablePrinter table(
      {"graph", "edges", "mean deg", "triangles", "wedges", "clustering"});
  table.AddRow({"powerlaw", FormatCount(social->num_edges()),
                FormatNumber(sr.mean_degree, 2), FormatCount(sr.triangles),
                FormatNumber(sr.wedges, 0), FormatNumber(sr.clustering, 5)});
  table.AddRow({"erdos-renyi", FormatCount(er.num_edges()),
                FormatNumber(er_report.mean_degree, 2),
                FormatCount(er_report.triangles),
                FormatNumber(er_report.wedges, 0),
                FormatNumber(er_report.clustering, 5)});
  table.Print(std::cout);

  if (er_report.triangles > 0) {
    std::printf(
        "\nthe heavy-tailed graph packs %.1fx more triangles than the ER "
        "control at equal density\n",
        static_cast<double>(sr.triangles) /
            static_cast<double>(er_report.triangles));
  }
  return 0;
}
