/// \file orientation_advisor.cpp
/// The Section 6 results as a practical decision tool: given the Pareto
/// shape alpha of a graph family, report
///  * the finiteness regime of every fundamental method under its optimal
///    permutation (Sections 4.2, 5.3, 6.3),
///  * the asymptotic cost of each (method, named permutation) pair,
///  * and the recommended algorithm for fast-scanning (SIMD-class) and
///    slow-scanning hardware.
///
/// Usage: orientation_advisor [alpha] [sei_speedup]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>

#include "src/core/advisor.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/pareto.h"
#include "src/util/table_printer.h"

int main(int argc, char** argv) {
  using namespace trilist;
  const double alpha = argc > 1 ? std::strtod(argv[1], nullptr) : 1.7;
  const double speedup = argc > 2 ? std::strtod(argv[2], nullptr) : 95.0;

  std::printf("orientation advisor for Pareto degree graphs, alpha=%.3f\n\n",
              alpha);

  const DiscretePareto f = DiscretePareto::PaperParameterization(alpha);
  const PermutationKind kinds[] = {
      PermutationKind::kAscending, PermutationKind::kDescending,
      PermutationKind::kRoundRobin,
      PermutationKind::kComplementaryRoundRobin, PermutationKind::kUniform};

  TablePrinter table({"method", "theta_A", "theta_D", "theta_RR",
                      "theta_CRR", "theta_U", "optimal", "finite iff"});
  for (Method m : FundamentalMethods()) {
    std::vector<std::string> row = {MethodName(m)};
    for (PermutationKind kind : kinds) {
      const XiMap xi = XiMap::FromKind(kind);
      if (IsFiniteAsymptoticCost(m, xi, alpha)) {
        row.push_back(FormatNumber(AsymptoticCost(f, m, xi), 1));
      } else {
        row.push_back("inf");
      }
    }
    row.push_back(PermutationKindName(OptimalPermutationKindFor(m)));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "alpha > %.3f",
                  FinitenessThresholdAlpha(
                      m, XiMap::FromKind(OptimalPermutationKindFor(m))));
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  const MethodAdvice advice = AdviseForPareto(alpha, speedup);
  std::printf(
      "\nrecommendation (scanning speedup %.0fx): use %s with %s\n  %s\n",
      speedup, MethodName(advice.method),
      PermutationKindName(advice.order), advice.rationale.c_str());
  const MethodAdvice slow = AdviseForPareto(alpha, 1.0);
  std::printf(
      "recommendation (no scanning advantage): use %s with %s\n  %s\n",
      MethodName(slow.method), PermutationKindName(slow.order),
      slow.rationale.c_str());
  return 0;
}
