/// \file trilist_cli.cpp
/// Command-line front end covering the library's main workflows:
///
///   trilist_cli generate --n N --alpha A [--trunc root|linear]
///                        [--seed S] --out FILE
///       Sample a truncated-Pareto degree sequence, realize it exactly,
///       write the graph as an edge list.
///
///   trilist_cli count --in FILE [--method T1|T2|E1|E4|...]
///                     [--order D|A|RR|CRR|U|degen] [--seed S]
///                     [--threads N]
///       Relabel + orient an edge-list graph and list its triangles,
///       reporting the count and the operation metrics. --threads N > 1
///       runs orientation and the fundamental methods (T1/T2/E1/E4) on
///       the parallel engine (0 = all hardware threads); results are
///       bit-identical to the default serial run.
///
///   trilist_cli model --alpha A [--n N] [--trunc root|linear]
///                     [--method M] [--order O] [--eps E]
///       Evaluate the exact discrete cost model Eq. (50) at n and the
///       asymptotic limit via Algorithm 2.
///
///   trilist_cli advise --alpha A [--speedup X]
///       Recommend a method + ordering for a Pareto graph family.
///
///   trilist_cli convert --in FILE --out FILE [--orders D,RR,...]
///                       [--seed S] [--threads N]
///       Convert between text edge lists and the `.tlg` binary container.
///       Text input goes through the tolerant ingester (duplicates,
///       self-loops and sparse IDs are normalized, with a report);
///       --orders embeds precomputed orientations so later runs skip
///       preprocessing. Output format follows the --out extension
///       (`.tlg` = binary, anything else = text). Deterministic: the
///       same input bytes always produce the same output bytes.
///
///   trilist_cli info --in FILE.tlg
///       Print the container's header, section table and cached
///       orientations (validates every CRC on the way).
///
/// `count` accepts either format transparently: `.tlg` inputs are
/// detected by magic, mmap-loaded zero-copy, and reuse a cached
/// orientation when one matches the requested --order/--seed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/core/advisor.h"
#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/graph/binfmt.h"
#include "src/graph/ingest.h"
#include "src/graph/io.h"
#include "src/order/pipeline.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;

/// Minimal --flag value parser: flags() returns "" for missing keys.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2] = argv[i + 1];
      }
    }
  }
  std::string Get(const std::string& key, const std::string& def = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }
  uint64_t GetUint(const std::string& key, uint64_t def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

bool ParseMethod(const std::string& name, Method* out) {
  for (Method m : AllMethods()) {
    if (name == MethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool ParseOrder(const std::string& name, PermutationKind* out) {
  static const std::map<std::string, PermutationKind> kOrders = {
      {"D", PermutationKind::kDescending},
      {"A", PermutationKind::kAscending},
      {"RR", PermutationKind::kRoundRobin},
      {"CRR", PermutationKind::kComplementaryRoundRobin},
      {"U", PermutationKind::kUniform},
      {"degen", PermutationKind::kDegenerate},
  };
  const auto it = kOrders.find(name);
  if (it == kOrders.end()) return false;
  *out = it->second;
  return true;
}

TruncationKind ParseTrunc(const std::string& name) {
  return name == "linear" ? TruncationKind::kLinear : TruncationKind::kRoot;
}

int CmdGenerate(const Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetUint("n", 100000));
  const double alpha = flags.GetDouble("alpha", 1.7);
  const TruncationKind trunc = ParseTrunc(flags.Get("trunc", "root"));
  const uint64_t seed = flags.GetUint("seed", 1);
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out FILE is required\n");
    return 2;
  }
  Rng rng(seed);
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(trunc, static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t_n);
  std::vector<int64_t> degrees =
      DegreeSequence::SampleIid(fn, n, &rng).degrees();
  MakeGraphic(&degrees);
  Timer timer;
  ResidualGenStats stats;
  auto graph = GenerateExactDegree(degrees, &rng, &stats);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const Status write = WriteEdgeListFile(*graph, out);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: n=%zu m=%zu (alpha=%.3f trunc=%s seed=%llu, %.2fs, "
      "unplaced stubs %lld)\n",
      out.c_str(), graph->num_nodes(), graph->num_edges(), alpha,
      TruncationKindName(trunc), static_cast<unsigned long long>(seed),
      timer.ElapsedSeconds(), static_cast<long long>(stats.unplaced_stubs));
  return 0;
}

int CmdCount(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (in.empty()) {
    std::fprintf(stderr, "count: --in FILE is required\n");
    return 2;
  }
  Method method = Method::kE1;
  if (!flags.Get("method").empty() &&
      !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  int threads = static_cast<int>(flags.GetUint("threads", 1));
  if (threads == 0) threads = HardwareThreads();
  const uint64_t seed = flags.GetUint("seed", 1);

  // Accept either format: `.tlg` containers are detected by magic and
  // mmap-loaded zero-copy; anything else parses as a text edge list.
  Graph graph;
  std::shared_ptr<TlgFile> tlg;
  if (LooksLikeTlgFile(in)) {
    auto t = TlgFile::Open(in);
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    tlg = std::make_shared<TlgFile>(std::move(t).ValueOrDie());
    graph = tlg->graph();
  } else {
    auto r = ReadEdgeListFile(in);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    graph = std::move(r).ValueOrDie();
  }

  Timer timer;
  const OrientSpec spec{order, seed};
  const OrientedGraph* cached =
      tlg != nullptr ? tlg->FindOrientation(spec) : nullptr;
  const OrientedGraph og =
      cached != nullptr ? *cached : OrientWithSpec(graph, spec, threads);
  CountingSink sink;
  ExecPolicy exec;
  exec.threads = threads;
  const OpCounts ops = RunMethod(method, og, &sink, exec);
  const bool parallel_listing = threads > 1 && SupportsParallel(method);
  std::printf(
      "%s + %s on %s (n=%zu m=%zu, %d thread%s%s%s):\n  triangles %llu\n"
      "  paper-metric ops %lld\n  wall time %.3fs\n",
      MethodName(method), PermutationKindName(order), in.c_str(),
      graph.num_nodes(), graph.num_edges(), threads,
      threads == 1 ? "" : "s",
      threads > 1 && !parallel_listing ? ", serial listing fallback" : "",
      cached != nullptr ? ", cached orientation" : "",
      static_cast<unsigned long long>(sink.count()),
      static_cast<long long>(ops.PaperCost()), timer.ElapsedSeconds());
  return 0;
}

/// Parses a comma-separated --orders list ("D,RR,U") into OrientSpecs.
bool ParseOrderList(const std::string& csv, uint64_t seed,
                    std::vector<OrientSpec>* out) {
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    PermutationKind kind;
    if (!ParseOrder(token, &kind)) {
      std::fprintf(stderr, "unknown order '%s' in --orders\n",
                   token.c_str());
      return false;
    }
    out->push_back(OrientSpec{kind, seed});
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int CmdConvert(const Flags& flags) {
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "convert: --in FILE and --out FILE are required\n");
    return 2;
  }
  int threads = static_cast<int>(flags.GetUint("threads", 1));
  if (threads == 0) threads = HardwareThreads();
  const uint64_t seed = flags.GetUint("seed", 1);

  Timer timer;
  Graph graph;
  if (LooksLikeTlgFile(in)) {
    auto t = TlgFile::Open(in);
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    graph = t->graph();
    std::printf("loaded %s: n=%zu m=%zu (%s)\n", in.c_str(),
                graph.num_nodes(), graph.num_edges(),
                t->mmap_backed() ? "mmap" : "read fallback");
  } else {
    IngestOptions opts;
    opts.threads = threads;
    auto r = IngestEdgeListFile(in, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    graph = std::move(r->graph);
    std::printf("ingested %s: %s\n", in.c_str(),
                r->stats.Summary().c_str());
  }

  if (EndsWith(out, ".tlg")) {
    TlgWriteOptions opts;
    opts.threads = threads;
    if (!flags.Get("orders").empty() &&
        !ParseOrderList(flags.Get("orders"), seed, &opts.orientations)) {
      return 2;
    }
    const Status st = WriteTlgFile(graph, out, opts);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: n=%zu m=%zu, %zu cached orientation%s "
                "(%.2fs)\n",
                out.c_str(), graph.num_nodes(), graph.num_edges(),
                opts.orientations.size(),
                opts.orientations.size() == 1 ? "" : "s",
                timer.ElapsedSeconds());
  } else {
    const Status st = WriteEdgeListFile(graph, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: n=%zu m=%zu as text (%.2fs)\n", out.c_str(),
                graph.num_nodes(), graph.num_edges(),
                timer.ElapsedSeconds());
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (in.empty()) {
    std::fprintf(stderr, "info: --in FILE.tlg is required\n");
    return 2;
  }
  if (!LooksLikeTlgFile(in)) {
    std::fprintf(stderr, "%s is not a .tlg container\n", in.c_str());
    return 1;
  }
  auto t = TlgFile::Open(in);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return 1;
  }
  const Graph& g = t->graph();
  std::printf("%s: .tlg version %u, %zu bytes (%s)\n", in.c_str(),
              t->version(), t->file_size(),
              t->mmap_backed() ? "mmap" : "read fallback");
  std::printf("  nodes %zu, edges %zu, max degree %lld\n",
              g.num_nodes(), g.num_edges(),
              static_cast<long long>(g.MaxDegree()));
  std::printf("  %-14s %6s %12s %12s %10s\n", "section", "aux", "offset",
              "length", "crc32");
  for (const TlgFile::SectionInfo& s : t->sections()) {
    std::printf("  %-14s %6u %12llu %12llu %10u\n",
                TlgSectionTypeName(s.type), s.aux,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.length), s.crc32);
  }
  if (t->orientation_specs().empty()) {
    std::printf("  cached orientations: none\n");
  } else {
    std::printf("  cached orientations:");
    for (const OrientSpec& spec : t->orientation_specs()) {
      std::printf(" %s", PermutationKindName(spec.kind));
      if (spec.kind == PermutationKind::kUniform) {
        std::printf("(seed=%llu)",
                    static_cast<unsigned long long>(spec.seed));
      }
    }
    std::printf("\n");
  }
  std::printf("  all section CRCs verified\n");
  return 0;
}

int CmdModel(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const auto n = static_cast<int64_t>(flags.GetUint("n", 1000000));
  const TruncationKind trunc = ParseTrunc(flags.Get("trunc", "root"));
  const double eps = flags.GetDouble("eps", 1e-5);
  Method method = Method::kT1;
  if (!flags.Get("method").empty() &&
      !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  if (order == PermutationKind::kDegenerate) {
    std::fprintf(stderr,
                 "the degenerate order has no distribution-level model\n");
    return 2;
  }
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(trunc, n);
  const TruncatedDistribution fn(base, t_n);
  const XiMap xi = XiMap::FromKind(order);
  const double model = ExactDiscreteCost(fn, t_n, method, xi);
  std::printf("E[c_n(%s, %s)] at n=%lld (%s truncation): %.4f\n",
              MethodName(method), PermutationKindName(order),
              static_cast<long long>(n), TruncationKindName(trunc), model);
  if (IsFiniteAsymptoticCost(method, xi, alpha)) {
    std::printf("asymptotic limit: %.4f\n",
                AsymptoticCost(base, method, xi, WeightFn::Identity(), eps));
  } else {
    std::printf("asymptotic limit: infinite (finite iff alpha > %.4f)\n",
                FinitenessThresholdAlpha(method, xi));
  }
  return 0;
}

int CmdAdvise(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const double speedup = flags.GetDouble("speedup", 95.0);
  const MethodAdvice advice = AdviseForPareto(alpha, speedup);
  std::printf("alpha=%.3f, scanning speedup %.0fx -> use %s with %s\n%s\n",
              alpha, speedup, MethodName(advice.method),
              PermutationKindName(advice.order), advice.rationale.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: trilist_cli <generate|count|model|advise|convert|info> "
      "[--flag value]...\n"
      "  generate --n N --alpha A [--trunc root|linear] [--seed S] --out F\n"
      "  count    --in F [--method T1..L6] [--order D|A|RR|CRR|U|degen]\n"
      "           [--threads N]   (N > 1: parallel engine; 0 = hardware)\n"
      "           (--in accepts text edge lists or .tlg containers)\n"
      "  model    --alpha A [--n N] [--trunc ...] [--method M] [--order O]\n"
      "  advise   --alpha A [--speedup X]\n"
      "  convert  --in F --out F [--orders D,RR,...] [--seed S]\n"
      "           [--threads N]   (--out *.tlg = binary, else text)\n"
      "  info     --in F.tlg\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "count") return CmdCount(flags);
  if (cmd == "model") return CmdModel(flags);
  if (cmd == "advise") return CmdAdvise(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "info") return CmdInfo(flags);
  return Usage();
}
