/// \file trilist_cli.cpp
/// Command-line front end covering the library's main workflows:
///
///   trilist_cli generate --n N --alpha A [--trunc root|linear]
///                        [--seed S] --out FILE
///       Sample a truncated-Pareto degree sequence, realize it exactly,
///       write the graph as an edge list.
///
///   trilist_cli count --in FILE [--method T1|T2|E1|E4|...]
///                     [--order D|A|RR|CRR|U|degen] [--seed S]
///                     [--threads N]
///       Relabel + orient an edge-list graph and list its triangles,
///       reporting the count and the operation metrics. --threads N > 1
///       runs orientation and the fundamental methods (T1/T2/E1/E4) on
///       the parallel engine (0 = all hardware threads); results are
///       bit-identical to the default serial run.
///
///   trilist_cli model --alpha A [--n N] [--trunc root|linear]
///                     [--method M] [--order O] [--eps E]
///       Evaluate the exact discrete cost model Eq. (50) at n and the
///       asymptotic limit via Algorithm 2.
///
///   trilist_cli advise --alpha A [--speedup X]
///       Recommend a method + ordering for a Pareto graph family.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/core/advisor.h"
#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/graph/io.h"
#include "src/order/pipeline.h"
#include "src/util/parallel_for.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;

/// Minimal --flag value parser: flags() returns "" for missing keys.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        values_[argv[i] + 2] = argv[i + 1];
      }
    }
  }
  std::string Get(const std::string& key, const std::string& def = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }
  uint64_t GetUint(const std::string& key, uint64_t def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

bool ParseMethod(const std::string& name, Method* out) {
  for (Method m : AllMethods()) {
    if (name == MethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

bool ParseOrder(const std::string& name, PermutationKind* out) {
  static const std::map<std::string, PermutationKind> kOrders = {
      {"D", PermutationKind::kDescending},
      {"A", PermutationKind::kAscending},
      {"RR", PermutationKind::kRoundRobin},
      {"CRR", PermutationKind::kComplementaryRoundRobin},
      {"U", PermutationKind::kUniform},
      {"degen", PermutationKind::kDegenerate},
  };
  const auto it = kOrders.find(name);
  if (it == kOrders.end()) return false;
  *out = it->second;
  return true;
}

TruncationKind ParseTrunc(const std::string& name) {
  return name == "linear" ? TruncationKind::kLinear : TruncationKind::kRoot;
}

int CmdGenerate(const Flags& flags) {
  const auto n = static_cast<size_t>(flags.GetUint("n", 100000));
  const double alpha = flags.GetDouble("alpha", 1.7);
  const TruncationKind trunc = ParseTrunc(flags.Get("trunc", "root"));
  const uint64_t seed = flags.GetUint("seed", 1);
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out FILE is required\n");
    return 2;
  }
  Rng rng(seed);
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(trunc, static_cast<int64_t>(n));
  const TruncatedDistribution fn(base, t_n);
  std::vector<int64_t> degrees =
      DegreeSequence::SampleIid(fn, n, &rng).degrees();
  MakeGraphic(&degrees);
  Timer timer;
  ResidualGenStats stats;
  auto graph = GenerateExactDegree(degrees, &rng, &stats);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const Status write = WriteEdgeListFile(*graph, out);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: n=%zu m=%zu (alpha=%.3f trunc=%s seed=%llu, %.2fs, "
      "unplaced stubs %lld)\n",
      out.c_str(), graph->num_nodes(), graph->num_edges(), alpha,
      TruncationKindName(trunc), static_cast<unsigned long long>(seed),
      timer.ElapsedSeconds(), static_cast<long long>(stats.unplaced_stubs));
  return 0;
}

int CmdCount(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (in.empty()) {
    std::fprintf(stderr, "count: --in FILE is required\n");
    return 2;
  }
  Method method = Method::kE1;
  if (!flags.Get("method").empty() &&
      !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  auto graph = ReadEdgeListFile(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  int threads = static_cast<int>(flags.GetUint("threads", 1));
  if (threads == 0) threads = HardwareThreads();
  Rng rng(flags.GetUint("seed", 1));
  Timer timer;
  const OrientedGraph og = OrientNamed(*graph, order, &rng, threads);
  CountingSink sink;
  ExecPolicy exec;
  exec.threads = threads;
  const OpCounts ops = RunMethod(method, og, &sink, exec);
  const bool parallel_listing = threads > 1 && SupportsParallel(method);
  std::printf(
      "%s + %s on %s (n=%zu m=%zu, %d thread%s%s):\n  triangles %llu\n"
      "  paper-metric ops %lld\n  wall time %.3fs\n",
      MethodName(method), PermutationKindName(order), in.c_str(),
      graph->num_nodes(), graph->num_edges(), threads,
      threads == 1 ? "" : "s",
      threads > 1 && !parallel_listing ? ", serial listing fallback" : "",
      static_cast<unsigned long long>(sink.count()),
      static_cast<long long>(ops.PaperCost()), timer.ElapsedSeconds());
  return 0;
}

int CmdModel(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const auto n = static_cast<int64_t>(flags.GetUint("n", 1000000));
  const TruncationKind trunc = ParseTrunc(flags.Get("trunc", "root"));
  const double eps = flags.GetDouble("eps", 1e-5);
  Method method = Method::kT1;
  if (!flags.Get("method").empty() &&
      !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  if (order == PermutationKind::kDegenerate) {
    std::fprintf(stderr,
                 "the degenerate order has no distribution-level model\n");
    return 2;
  }
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(trunc, n);
  const TruncatedDistribution fn(base, t_n);
  const XiMap xi = XiMap::FromKind(order);
  const double model = ExactDiscreteCost(fn, t_n, method, xi);
  std::printf("E[c_n(%s, %s)] at n=%lld (%s truncation): %.4f\n",
              MethodName(method), PermutationKindName(order),
              static_cast<long long>(n), TruncationKindName(trunc), model);
  if (IsFiniteAsymptoticCost(method, xi, alpha)) {
    std::printf("asymptotic limit: %.4f\n",
                AsymptoticCost(base, method, xi, WeightFn::Identity(), eps));
  } else {
    std::printf("asymptotic limit: infinite (finite iff alpha > %.4f)\n",
                FinitenessThresholdAlpha(method, xi));
  }
  return 0;
}

int CmdAdvise(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const double speedup = flags.GetDouble("speedup", 95.0);
  const MethodAdvice advice = AdviseForPareto(alpha, speedup);
  std::printf("alpha=%.3f, scanning speedup %.0fx -> use %s with %s\n%s\n",
              alpha, speedup, MethodName(advice.method),
              PermutationKindName(advice.order), advice.rationale.c_str());
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: trilist_cli <generate|count|model|advise> [--flag value]...\n"
      "  generate --n N --alpha A [--trunc root|linear] [--seed S] --out F\n"
      "  count    --in F [--method T1..L6] [--order D|A|RR|CRR|U|degen]\n"
      "           [--threads N]   (N > 1: parallel engine; 0 = hardware)\n"
      "  model    --alpha A [--n N] [--trunc ...] [--method M] [--order O]\n"
      "  advise   --alpha A [--speedup X]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "count") return CmdCount(flags);
  if (cmd == "model") return CmdModel(flags);
  if (cmd == "advise") return CmdAdvise(flags);
  return Usage();
}
