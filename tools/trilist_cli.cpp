/// \file trilist_cli.cpp
/// Command-line front end covering the library's main workflows. Every
/// graph-touching subcommand executes through the unified RunSpec engine
/// (src/run/runner.h), which owns the acquire -> order -> orient -> list
/// pipeline and reports per-stage telemetry.
///
/// --threads semantics are uniform across all subcommands that accept the
/// flag (count, run, convert): N > 1 uses the parallel engine for
/// orientation and the fundamental methods (T1/T2/E1/E4), N == 0 means
/// "all hardware threads", and results are bit-identical to the serial
/// run for any value.
///
///   trilist_cli generate --n N --alpha A [--trunc root|linear]
///                        [--seed S] --out FILE
///       Sample a truncated-Pareto degree sequence, realize it exactly,
///       write the graph as an edge list.
///
///   trilist_cli count --in FILE [--method T1|T2|E1|E4|...]
///                     [--order D|A|RR|CRR|U|degen] [--seed S]
///                     [--threads N]
///       Relabel + orient an edge-list graph and list its triangles,
///       reporting the count, the operation metrics and the per-stage
///       wall times.
///
///   trilist_cli run [--in FILE | --n N --alpha A [--trunc root|linear]
///                    [--gen residual|config|gnp]]
///                   [--methods M1,M2,...|all|fundamental] [--order O]
///                   [--seed S] [--threads N] [--repeats R]
///                   [--report table|json] [--trace FILE.json]
///                   [--metrics FILE.prom] [--degree-profile]
///       The full RunSpec surface: acquire a graph (file or generated),
///       orient, run any method set, and dump the structured RunReport —
///       per-stage wall times (load/generate, order, orient, arcs, list),
///       per-method triangles + operation counters, peak RSS and thread
///       utilization — as an aligned table or machine-readable JSON.
///       The observability layer (src/obs/) hangs off this subcommand:
///       --trace records every pipeline span (stages, methods, parallel
///       chunks) into a Chrome trace-event file loadable in Perfetto,
///       --metrics exports the report in Prometheus text format, and
///       --degree-profile re-runs each method with per-node op hooks and
///       reports measured work vs the model's g(d)h(q) per log2-degree
///       bucket with relative residuals.
///
///   trilist_cli version
///       Build provenance: version, git hash, compiler, flags, build type.
///
///   trilist_cli model --alpha A [--n N] [--trunc root|linear]
///                     [--method M] [--order O] [--eps E]
///       Evaluate the exact discrete cost model Eq. (50) at n and the
///       asymptotic limit via Algorithm 2.
///
///   trilist_cli advise --alpha A [--speedup X]
///       Recommend a method + ordering for a Pareto graph family.
///
///   trilist_cli convert --in FILE --out FILE [--orders D,RR,...]
///                       [--seed S] [--threads N]
///                       [--mem-budget SIZE [--tmpdir DIR] [--io-workers N]
///                        [--no-direct-io] [--report json]]
///       Convert between text edge lists and the `.tlg` binary container.
///       With --mem-budget, a text -> .tlg conversion runs out-of-core
///       (src/ooc/convert.h): chunked O_DIRECT reads, external edge sort
///       with spill files in --tmpdir, and a streamed container writer,
///       so peak memory stays under the budget for any graph size while
///       producing byte-identical output for compact inputs.
///       Text input goes through the tolerant ingester (duplicates,
///       self-loops and sparse IDs are normalized, with a report);
///       --orders embeds precomputed orientations so later runs skip
///       preprocessing. Output format follows the --out extension
///       (`.tlg` = binary, anything else = text). Deterministic: the
///       same input bytes always produce the same output bytes.
///
///   trilist_cli info --in FILE.tlg
///       Print the container's header, section table and cached
///       orientations (validates every CRC on the way).
///
///   trilist_cli serve [--tcp PORT] [--host H] [--unix PATH]
///                     [--graphs DIR] [--graph name=path[,name=path...]]
///                     [--workers N] [--queue N] [--catalog N] [--sjf]
///                     [--max-threads N] [--send-timeout SEC]
///       Run trilistd: the long-running triangle-query daemon
///       (src/serve/server.h). Serves the versioned binary protocol over
///       TCP and/or a Unix-domain socket, keeps an LRU catalog of
///       mmapped graphs with cached orientations, admits requests into a
///       bounded queue (explicit backpressure when full, optionally
///       shortest-predicted-job-first by the Section-3 formula cost) and
///       executes them on a worker pool through the same listing loop as
///       `run`. SIGTERM/SIGINT drain gracefully: in-flight and queued
///       requests finish, then the process exits 0.
///
///   trilist_cli query (--connect HOST:PORT | --unix PATH) --graph NAME
///                     [--methods ...] [--order O] [--seed S]
///                     [--threads N] [--repeats R] [--report] [--stats]
///       One round trip against a running daemon: print the served
///       triangle counts, stage walls and catalog provenance (warm hit
///       vs cold load), or --stats for the server's Prometheus text.
///
///   trilist_cli mutate ...
///       Dynamic graphs (src/dyn/): remotely, ship batched edge
///       inserts/deletes to a running daemon (--connect/--unix --graph,
///       with --add/--del/--ops-file) — each batch publishes a new
///       epoch whose exact triangle count is maintained incrementally;
///       locally, replay a recorded mutation log over --in and, with
///       --verify, prove the incremental count against a from-scratch
///       recount and byte-compare a compaction against a fresh convert.
///       `info` describes an on-disk container, which is always a
///       static snapshot: mutations live in the serving layer until a
///       compaction writes the next container.
///
/// `count` accepts either format transparently: `.tlg` inputs are
/// detected by magic, mmap-loaded zero-copy, and reuse a cached
/// orientation when one matches the requested --order/--seed.

#include <algorithm>
#include <csignal>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/core/advisor.h"
#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/pareto.h"
#include "src/degree/truncated.h"
#include "src/gen/residual_generator.h"
#include "src/graph/binfmt.h"
#include "src/graph/ingest.h"
#include "src/graph/io.h"
#include "src/dyn/mutation_log.h"
#include "src/dyn/replay.h"
#include "src/obs/prom.h"
#include "src/obs/trace.h"
#include "src/ooc/convert.h"
#include "src/ooc/paged_count.h"
#include "src/order/pipeline.h"
#include "src/order/registry.h"
#include "src/run/runner.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/build_info.h"
#include "src/util/cpu_features.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace {

using namespace trilist;

/// Minimal --flag parser: `--key value` pairs plus bare boolean switches
/// (`--degree-profile`). A flag followed by another `--flag` (or nothing)
/// is a switch; Get() returns "" for missing keys.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc;) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        ++i;
        continue;
      }
      const char* key = argv[i] + 2;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[i + 1];
        i += 2;
      } else {
        values_[key] = "";
        i += 1;
      }
    }
  }
  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  std::string Get(const std::string& key, const std::string& def = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }
  uint64_t GetUint(const std::string& key, uint64_t def) const {
    const std::string v = Get(key);
    return v.empty() ? def : std::strtoull(v.c_str(), nullptr, 10);
  }

 private:
  std::map<std::string, std::string> values_;
};

bool ParseMethod(const std::string& name, Method* out) {
  for (Method m : AllMethods()) {
    if (name == MethodName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

/// Ordering lookup through the registry: accepts both the CLI spelling
/// ("D", "aot") and the registry key ("theta_D", "aot"). `trilist_cli
/// orders` lists everything this accepts.
bool ParseOrder(const std::string& name, PermutationKind* out) {
  const OrderingProvider* provider =
      OrderingRegistry::Instance().FindByName(name);
  if (provider == nullptr) return false;
  *out = provider->kind();
  return true;
}

TruncationKind ParseTrunc(const std::string& name) {
  return name == "linear" ? TruncationKind::kLinear : TruncationKind::kRoot;
}

/// Raw --threads value; 0 means "all hardware threads". The runner
/// resolves it (so reports record both the request and the resolved
/// count); local consumers call ResolveThreads themselves.
int ParseThreadsFlag(const Flags& flags) {
  return static_cast<int>(flags.GetUint("threads", 1));
}

/// Byte-size flag with optional K/M/G (or KiB/MiB/GiB) suffix:
/// "--mem-budget 64M" = 64 MiB. Bare numbers are bytes. Returns `def`
/// when the flag is absent; 0 on a malformed value (callers treat a
/// present-but-zero budget as an error).
uint64_t ParseSizeFlag(const Flags& flags, const std::string& key,
                       uint64_t def) {
  const std::string v = flags.Get(key);
  if (v.empty()) return def;
  char* end = nullptr;
  const unsigned long long base = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str()) return 0;
  uint64_t scale = 1;
  switch (*end) {
    case 'k': case 'K': scale = 1ull << 10; break;
    case 'm': case 'M': scale = 1ull << 20; break;
    case 'g': case 'G': scale = 1ull << 30; break;
    case '\0': break;
    default: return 0;
  }
  return base * scale;
}

/// --intersect backend for the SEI kernels; returns false (after
/// reporting) on an unknown name.
bool ParseIntersectFlag(const Flags& flags, ExecPolicy* exec) {
  const std::string name = flags.Get("intersect");
  if (name.empty()) return true;
  if (!ParseIntersectBackend(name.c_str(), &exec->intersect)) {
    std::fprintf(stderr,
                 "unknown intersect backend '%s' "
                 "(merge|gallop|auto|simd|bitmap)\n",
                 name.c_str());
    return false;
  }
  exec->bitmap_min_degree =
      static_cast<int>(flags.GetUint("bitmap-min-degree", 0));
  return true;
}

/// Writes `content` to `path`, reporting failures on stderr.
bool WriteFileOrWarn(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "short write to %s\n", path.c_str());
  return ok;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out FILE is required\n");
    return 2;
  }
  GenerateSpec gen;
  gen.n = static_cast<size_t>(flags.GetUint("n", 100000));
  gen.alpha = flags.GetDouble("alpha", 1.7);
  gen.truncation = ParseTrunc(flags.Get("trunc", "root"));
  const uint64_t seed = flags.GetUint("seed", 1);
  Rng rng(seed);
  Timer timer;
  const std::vector<int64_t> degrees = SampleGraphicDegrees(gen, &rng);
  ResidualGenStats stats;
  auto graph = GenerateExactDegree(degrees, &rng, &stats);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const Status write = WriteEdgeListFile(*graph, out);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s: n=%zu m=%zu (alpha=%.3f trunc=%s seed=%llu, %.2fs, "
      "unplaced stubs %lld)\n",
      out.c_str(), graph->num_nodes(), graph->num_edges(), gen.alpha,
      TruncationKindName(gen.truncation),
      static_cast<unsigned long long>(seed), timer.ElapsedSeconds(),
      static_cast<long long>(stats.unplaced_stubs));
  return 0;
}

int CmdCount(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (in.empty()) {
    std::fprintf(stderr, "count: --in FILE is required\n");
    return 2;
  }
  PlanFlags plan;
  Method method = Method::kE1;
  if (flags.Get("method") == "auto") {
    plan.method = true;
  } else if (!flags.Get("method").empty() &&
             !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (flags.Get("order") == "auto") {
    plan.order = true;
  } else if (!flags.Get("order").empty() &&
             !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  const uint64_t mem_budget = ParseSizeFlag(flags, "mem-budget", 0);
  if (plan.Any() && mem_budget > 0) {
    std::fprintf(stderr,
                 "count: --method/--order auto are incompatible with "
                 "--mem-budget (the planner may pick a non-partitioned "
                 "method)\n");
    return 2;
  }
  if (flags.Has("mem-budget") && mem_budget == 0) {
    std::fprintf(stderr, "count: bad --mem-budget '%s' (want e.g. 64M)\n",
                 flags.Get("mem-budget").c_str());
    return 2;
  }

  // A budgeted count over a .tlg container takes the true out-of-core
  // path: demand-paged mmap, partitioned E1/E2 passes, and eviction
  // chasing the stream cursor (src/ooc/paged_count.h). Text inputs (and
  // .tlg files lacking the orientation) fall through to the runner's
  // partitioned executors below.
  if (mem_budget > 0 && LooksLikeTlgFile(in) &&
      (method == Method::kE1 || method == Method::kE2)) {
    ooc::OocCountOptions copts;
    copts.mem_budget_bytes = static_cast<int64_t>(mem_budget);
    copts.spec = OrientSpec{order, flags.GetUint("seed", 1)};
    copts.use_e2 = method == Method::kE2;
    Timer timer;
    auto counted = ooc::OocCountTlg(in, copts);
    if (counted.ok()) {
      std::printf(
          "%s + %s on %s (paged, budget %llu bytes):\n"
          "  triangles %llu\n  paper-metric ops %lld\n  wall time %.3fs\n"
          "  io: %d partitions, %lld passes, %lld loaded + %lld streamed "
          "bytes, %lld evictions%s\n",
          MethodName(method), PermutationKindName(order), in.c_str(),
          static_cast<unsigned long long>(mem_budget),
          static_cast<unsigned long long>(counted->ops.triangles),
          static_cast<long long>(counted->ops.PaperCost()),
          timer.ElapsedSeconds(), static_cast<int>(counted->partitions),
          static_cast<long long>(counted->io.passes),
          static_cast<long long>(counted->io.bytes_loaded),
          static_cast<long long>(counted->io.bytes_streamed),
          static_cast<long long>(counted->evictions),
          counted->mmap_backed ? "" : " (no mmap: eviction inert)");
      return 0;
    }
    std::fprintf(stderr, "%s\n", counted.status().ToString().c_str());
    return 1;
  }

  RunSpec spec;
  spec.source = GraphSource::FromFile(in);
  spec.orient = OrientSpec{order, flags.GetUint("seed", 1)};
  spec.plan = plan;
  spec.methods = {method};
  spec.exec.threads = ParseThreadsFlag(flags);
  spec.mem_budget_bytes = static_cast<int64_t>(mem_budget);
  if (!ParseIntersectFlag(flags, &spec.exec)) return 2;
  // "--intersect auto" under an active planner means "let the planner
  // price the backends"; on its own it stays the legacy ratio-adaptive
  // kernel pick.
  if (flags.Get("intersect") == "auto" && plan.Any()) {
    spec.plan.intersect = true;
    spec.exec.intersect = IntersectBackend::kMerge;
  }

  auto report = RunPipeline(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  const RunReport& r = *report;
  const MethodReport& mr = r.methods.front();
  const StageClock& st = r.stages;
  const double work = st.Total() - st.WallOf("load");
  if (r.plan.planned) {
    std::printf("planner: %s + %s / %s (predicted cost %.3g, "
                "%d candidates)\n",
                MethodName(mr.method), r.order.c_str(),
                r.intersect_backend.c_str(), r.plan.predicted_cost,
                r.plan.candidates);
  }
  std::printf(
      "%s + %s on %s (n=%zu m=%zu, %d thread%s%s%s):\n  triangles %llu\n"
      "  paper-metric ops %lld\n  wall time %.3fs\n"
      "  stages: load %.3fs, order %.3fs, orient %.3fs, arcs %.3fs, "
      "list %.3fs\n",
      MethodName(mr.method), r.order.c_str(), in.c_str(),
      r.num_nodes, r.num_edges, r.threads, r.threads == 1 ? "" : "s",
      r.threads > 1 && !mr.parallel ? ", serial listing fallback" : "",
      r.cached_orientation ? ", cached orientation" : "",
      static_cast<unsigned long long>(mr.triangles),
      static_cast<long long>(mr.ops.PaperCost()), work,
      st.WallOf("load"), st.WallOf("order"), st.WallOf("orient"),
      st.WallOf("arcs"), st.WallOf("list"));
  return 0;
}

/// Parses a comma-separated method list; "all" and "fundamental" name the
/// standard sets.
bool ParseMethodList(const std::string& csv, std::vector<Method>* out) {
  if (csv.empty() || csv == "fundamental") {
    *out = FundamentalMethods();
    return true;
  }
  if (csv == "all") {
    *out = AllMethods();
    return true;
  }
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    Method m;
    if (!ParseMethod(token, &m)) {
      std::fprintf(stderr, "unknown method '%s' in --methods\n",
                   token.c_str());
      return false;
    }
    out->push_back(m);
  }
  return !out->empty();
}

int CmdRun(const Flags& flags) {
  RunSpec spec;
  const std::string in = flags.Get("in");
  if (!in.empty()) {
    spec.source = GraphSource::FromFile(in);
  } else {
    GenerateSpec gen;
    gen.n = static_cast<size_t>(flags.GetUint("n", 100000));
    gen.alpha = flags.GetDouble("alpha", 1.7);
    gen.truncation = ParseTrunc(flags.Get("trunc", "root"));
    const std::string kind = flags.Get("gen", "residual");
    if (kind == "config") {
      gen.generator = GeneratorKind::kConfiguration;
    } else if (kind == "gnp") {
      gen.generator = GeneratorKind::kGnp;
    } else if (kind != "residual") {
      std::fprintf(stderr, "unknown generator '%s'\n", kind.c_str());
      return 2;
    }
    spec.source = GraphSource::FromGenerator(gen);
  }
  PermutationKind order = PermutationKind::kDescending;
  if (flags.Get("order") == "auto") {
    spec.plan.order = true;
  } else if (!flags.Get("order").empty() &&
             !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  spec.seed = flags.GetUint("seed", 1);
  spec.orient = OrientSpec{order, spec.seed};
  spec.methods.clear();
  // --methods (or the singular --method) accepts "auto": the planner
  // races the fundamental representatives and runs the cheapest.
  std::string methods_flag = flags.Get("methods");
  if (methods_flag.empty()) methods_flag = flags.Get("method");
  if (methods_flag == "auto") {
    spec.plan.method = true;
    spec.methods = {Method::kE1};  // placeholder; the planner overrides
  } else if (!ParseMethodList(methods_flag.empty() ? "E1" : methods_flag,
                              &spec.methods)) {
    return 2;
  }
  spec.exec.threads = ParseThreadsFlag(flags);
  if (!ParseIntersectFlag(flags, &spec.exec)) return 2;
  if (flags.Get("intersect") == "auto" && spec.plan.Any()) {
    spec.plan.intersect = true;
    spec.exec.intersect = IntersectBackend::kMerge;
  }
  spec.repeats = static_cast<int>(flags.GetUint("repeats", 1));
  spec.degree_profile = flags.Has("degree-profile");
  spec.mem_budget_bytes =
      static_cast<int64_t>(ParseSizeFlag(flags, "mem-budget", 0));
  if (flags.Has("mem-budget") && spec.mem_budget_bytes == 0) {
    std::fprintf(stderr, "run: bad --mem-budget '%s' (want e.g. 64M)\n",
                 flags.Get("mem-budget").c_str());
    return 2;
  }
  if (spec.plan.Any() && spec.mem_budget_bytes > 0) {
    std::fprintf(stderr,
                 "run: --methods/--order auto are incompatible with "
                 "--mem-budget (the planner may pick a non-partitioned "
                 "method)\n");
    return 2;
  }

  const std::string trace_path = flags.Get("trace");
  if (!trace_path.empty()) {
    obs::Tracer::Clear();
    obs::Tracer::Enable();
  }

  auto report = RunPipeline(spec);

  if (!trace_path.empty()) {
    obs::Tracer::Disable();
    const Status st = obs::Tracer::WriteChromeJson(trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  const std::string metrics_path = flags.Get("metrics");
  if (!metrics_path.empty() &&
      !WriteFileOrWarn(metrics_path, obs::RunReportToPrometheus(*report))) {
    return 1;
  }

  const std::string format = flags.Get("report", "table");
  if (format == "json") {
    std::fputs(report->ToJson().c_str(), stdout);
  } else if (format == "table") {
    std::ostringstream out;
    report->PrintTable(out);
    std::fputs(out.str().c_str(), stdout);
  } else {
    std::fprintf(stderr, "unknown report format '%s'\n", format.c_str());
    return 2;
  }
  return 0;
}

/// Parses a comma-separated --orders list ("D,RR,U") into OrientSpecs.
bool ParseOrderList(const std::string& csv, uint64_t seed,
                    std::vector<OrientSpec>* out) {
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    PermutationKind kind;
    if (!ParseOrder(token, &kind)) {
      std::fprintf(stderr, "unknown order '%s' in --orders\n",
                   token.c_str());
      return false;
    }
    out->push_back(OrientSpec{kind, seed});
  }
  return true;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int CmdConvert(const Flags& flags) {
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "convert: --in FILE and --out FILE are required\n");
    return 2;
  }
  const int threads = ResolveThreads(ParseThreadsFlag(flags));
  const uint64_t seed = flags.GetUint("seed", 1);

  // --mem-budget routes text -> .tlg conversion through the out-of-core
  // pipeline (src/ooc/convert.h): external edge sort with spill files in
  // --tmpdir, streamed container writer, peak memory held to the budget
  // regardless of graph size. Byte-identical output to the in-memory
  // path for compact inputs.
  if (flags.Has("mem-budget")) {
    const uint64_t budget = ParseSizeFlag(flags, "mem-budget", 0);
    if (budget == 0) {
      std::fprintf(stderr, "convert: bad --mem-budget '%s' (want e.g. 64M)\n",
                   flags.Get("mem-budget").c_str());
      return 2;
    }
    if (LooksLikeTlgFile(in) || !EndsWith(out, ".tlg")) {
      std::fprintf(stderr,
                   "convert: --mem-budget requires a text edge-list --in "
                   "and a .tlg --out\n");
      return 2;
    }
    ooc::OocConvertOptions oopts;
    oopts.mem_budget_bytes = budget;
    oopts.tmpdir = flags.Get("tmpdir", "/tmp");
    oopts.io_workers = static_cast<int>(flags.GetUint("io-workers", 2));
    oopts.direct_io = !flags.Has("no-direct-io");
    if (!flags.Get("orders").empty() &&
        !ParseOrderList(flags.Get("orders"), seed, &oopts.orientations)) {
      return 2;
    }
    auto report = ooc::OocConvertFile(in, out, oopts);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    if (flags.Get("report") == "json") {
      std::fputs(report->ToJson().c_str(), stdout);
      std::fputs("\n", stdout);
    } else {
      std::printf(
          "wrote %s out-of-core: %s\n"
          "  budget %llu bytes (%s), %zu cached orientation%s\n"
          "  spill: %lld runs, %lld bytes; csr temp %lld bytes; "
          "output %lld bytes\n"
          "  stages: parse %.2fs, merge %.2fs, write %.2fs, orient %.2fs "
          "(total %.2fs)\n",
          out.c_str(), report->ingest.Summary().c_str(),
          static_cast<unsigned long long>(budget),
          report->direct_io ? "O_DIRECT" : "buffered",
          oopts.orientations.size(),
          oopts.orientations.size() == 1 ? "" : "s",
          static_cast<long long>(report->spill_runs),
          static_cast<long long>(report->spill_bytes),
          static_cast<long long>(report->csr_temp_bytes),
          static_cast<long long>(report->output_bytes),
          report->parse_seconds, report->merge_seconds,
          report->write_seconds, report->orient_seconds,
          report->total_seconds);
    }
    return 0;
  }

  Timer timer;
  Graph graph;
  if (LooksLikeTlgFile(in)) {
    auto t = TlgFile::Open(in);
    if (!t.ok()) {
      std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
      return 1;
    }
    graph = t->graph();
    std::printf("loaded %s: n=%zu m=%zu (%s)\n", in.c_str(),
                graph.num_nodes(), graph.num_edges(),
                t->mmap_backed() ? "mmap" : "read fallback");
  } else {
    IngestOptions opts;
    opts.threads = threads;
    auto r = IngestEdgeListFile(in, opts);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    graph = std::move(r->graph);
    std::printf("ingested %s: %s\n", in.c_str(),
                r->stats.Summary().c_str());
  }

  if (EndsWith(out, ".tlg")) {
    TlgWriteOptions opts;
    opts.threads = threads;
    if (!flags.Get("orders").empty() &&
        !ParseOrderList(flags.Get("orders"), seed, &opts.orientations)) {
      return 2;
    }
    const Status st = WriteTlgFile(graph, out, opts);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: n=%zu m=%zu, %zu cached orientation%s "
                "(%.2fs)\n",
                out.c_str(), graph.num_nodes(), graph.num_edges(),
                opts.orientations.size(),
                opts.orientations.size() == 1 ? "" : "s",
                timer.ElapsedSeconds());
  } else {
    const Status st = WriteEdgeListFile(graph, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: n=%zu m=%zu as text (%.2fs)\n", out.c_str(),
                graph.num_nodes(), graph.num_edges(),
                timer.ElapsedSeconds());
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (in.empty()) {
    std::fprintf(stderr, "info: --in FILE.tlg is required\n");
    return 2;
  }
  if (!LooksLikeTlgFile(in)) {
    std::fprintf(stderr, "%s is not a .tlg container\n", in.c_str());
    return 1;
  }
  auto t = TlgFile::Open(in);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return 1;
  }
  const Graph& g = t->graph();
  std::printf("%s: .tlg version %u, %zu bytes (%s, madvise %s)\n",
              in.c_str(), t->version(), t->file_size(),
              t->mmap_backed() ? "mmap" : "read fallback",
              t->backing()->applied_advice());
  std::printf("  nodes %zu, edges %zu, max degree %lld\n",
              g.num_nodes(), g.num_edges(),
              static_cast<long long>(g.MaxDegree()));
  std::printf("  %-14s %6s %12s %12s %10s\n", "section", "aux", "offset",
              "length", "crc32");
  for (const TlgFile::SectionInfo& s : t->sections()) {
    std::printf("  %-14s %6u %12llu %12llu %10u\n",
                TlgSectionTypeName(s.type), s.aux,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.length), s.crc32);
  }
  if (t->orientation_specs().empty()) {
    std::printf("  cached orientations: none\n");
  } else {
    std::printf("  cached orientations:");
    for (const OrientSpec& spec : t->orientation_specs()) {
      std::printf(" %s", PermutationKindName(spec.kind));
      if (spec.kind == PermutationKind::kUniform) {
        std::printf("(seed=%llu)",
                    static_cast<unsigned long long>(spec.seed));
      }
    }
    std::printf("\n");
  }
  std::printf("  all section CRCs verified\n");
  return 0;
}

int CmdModel(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const auto n = static_cast<int64_t>(flags.GetUint("n", 1000000));
  const TruncationKind trunc = ParseTrunc(flags.Get("trunc", "root"));
  const double eps = flags.GetDouble("eps", 1e-5);
  Method method = Method::kT1;
  if (!flags.Get("method").empty() &&
      !ParseMethod(flags.Get("method"), &method)) {
    std::fprintf(stderr, "unknown method '%s'\n",
                 flags.Get("method").c_str());
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  if (order == PermutationKind::kDegenerate ||
      order == PermutationKind::kAot ||
      order == PermutationKind::kSplit) {
    std::fprintf(stderr, "the %s order has no distribution-level model\n",
                 PermutationKindName(order));
    return 2;
  }
  const DiscretePareto base = DiscretePareto::PaperParameterization(alpha);
  const int64_t t_n = TruncationPoint(trunc, n);
  const TruncatedDistribution fn(base, t_n);
  const XiMap xi = XiMap::FromKind(order);
  const double model = ExactDiscreteCost(fn, t_n, method, xi);
  std::printf("E[c_n(%s, %s)] at n=%lld (%s truncation): %.4f\n",
              MethodName(method), PermutationKindName(order),
              static_cast<long long>(n), TruncationKindName(trunc), model);
  if (IsFiniteAsymptoticCost(method, xi, alpha)) {
    std::printf("asymptotic limit: %.4f\n",
                AsymptoticCost(base, method, xi, WeightFn::Identity(), eps));
  } else {
    std::printf("asymptotic limit: infinite (finite iff alpha > %.4f)\n",
                FinitenessThresholdAlpha(method, xi));
  }
  return 0;
}

int CmdOrders() {
  std::printf("%-6s %-11s %-6s %s\n", "cli", "key", "flags", "description");
  for (const OrderingProvider* p : OrderingRegistry::Instance().all()) {
    std::string caps;
    if (p->positional()) caps += 'P';
    if (p->graph_dependent()) caps += 'G';
    if (p->seeded()) caps += 'S';
    std::printf("%-6s %-11s %-6s %s\n", p->cli_name(), p->key(),
                caps.c_str(), p->description());
  }
  std::printf(
      "\nflags: P = positional (priced exactly from the degree sequence),\n"
      "       G = graph-dependent (needs adjacency; priced via a proxy),\n"
      "       S = consumes --seed\n"
      "Every --order flag accepts the cli spelling or the key.\n");
  return 0;
}

int CmdAdvise(const Flags& flags) {
  const double alpha = flags.GetDouble("alpha", 1.7);
  const double speedup = flags.GetDouble("speedup", 95.0);
  const MethodAdvice advice = AdviseForPareto(alpha, speedup);
  std::printf("alpha=%.3f, scanning speedup %.0fx -> use %s with %s\n%s\n",
              alpha, speedup, MethodName(advice.method),
              PermutationKindName(advice.order), advice.rationale.c_str());
  return 0;
}

/// Drain pipe fd of the running daemon; written (one byte, async-signal-
/// safe) by the SIGTERM/SIGINT handler to trigger a graceful drain.
int g_serve_drain_fd = -1;

void HandleServeSignal(int /*signum*/) {
  if (g_serve_drain_fd >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(g_serve_drain_fd, &byte, 1);
  }
}

/// Parses `--graph name=path[,name=path...]` registrations.
bool ParseNamedGraphs(const std::string& csv,
                      std::map<std::string, std::string>* out) {
  std::istringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      std::fprintf(stderr, "--graph expects name=path, got '%s'\n",
                   token.c_str());
      return false;
    }
    (*out)[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return true;
}

int CmdServe(const Flags& flags) {
  serve::ServerOptions options;
  if (flags.Has("tcp")) {
    options.tcp = true;
    options.port = static_cast<uint16_t>(flags.GetUint("tcp", 0));
  }
  options.host = flags.Get("host", "127.0.0.1");
  options.unix_path = flags.Get("unix");
  if (!options.tcp && options.unix_path.empty()) {
    std::fprintf(stderr, "serve: --tcp PORT and/or --unix PATH required\n");
    return 2;
  }
  options.graph_root = flags.Get("graphs");
  if (!ParseNamedGraphs(flags.Get("graph"), &options.named_graphs)) return 2;
  if (options.graph_root.empty() && options.named_graphs.empty()) {
    std::fprintf(stderr,
                 "serve: --graphs DIR and/or --graph name=path required\n");
    return 2;
  }
  options.workers = static_cast<int>(flags.GetUint("workers", 1));
  options.max_queue = flags.GetUint("queue", 64);
  options.catalog_capacity = flags.GetUint("catalog", 8);
  options.shortest_job_first = flags.Has("sjf");
  options.max_query_threads =
      static_cast<int>(flags.GetUint("max-threads", 0));
  options.send_timeout_s = flags.GetDouble("send-timeout", 30);
  options.paged_catalog = flags.Has("paged");
  // Test hook: lets the drain shell test hold a request in flight long
  // enough to race SIGTERM against it deterministically.
  if (const char* delay = std::getenv("TRILIST_SERVE_EXEC_DELAY_S")) {
    options.debug_exec_delay_s = std::strtod(delay, nullptr);
  }

  auto server = serve::TriangleServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  g_serve_drain_fd = (*server)->DrainNotifyFd();
  struct sigaction action = {};
  action.sa_handler = HandleServeSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  if (options.tcp) {
    std::printf("trilistd listening on %s:%u\n", options.host.c_str(),
                (*server)->tcp_port());
  }
  if (!options.unix_path.empty()) {
    std::printf("trilistd listening on unix:%s\n",
                options.unix_path.c_str());
  }
  std::fflush(stdout);  // readiness signal for scripted clients

  (*server)->Wait();
  const serve::ServerStats stats = (*server)->StatsSnapshot();
  std::printf("trilistd drained: %llu ok, %llu rejected "
              "(%llu overload, %llu draining), %llu errors\n",
              static_cast<unsigned long long>(stats.responses_ok),
              static_cast<unsigned long long>(stats.rejected_overload +
                                              stats.rejected_draining),
              static_cast<unsigned long long>(stats.rejected_overload),
              static_cast<unsigned long long>(stats.rejected_draining),
              static_cast<unsigned long long>(stats.errors));
  return 0;
}

/// Connects per the --connect/--unix flags shared by query.
Result<serve::ServeClient> ConnectFromFlags(const Flags& flags) {
  const std::string unix_path = flags.Get("unix");
  if (!unix_path.empty()) return serve::ServeClient::ConnectUnix(unix_path);
  const std::string connect = flags.Get("connect");
  const size_t colon = connect.rfind(':');
  if (connect.empty() || colon == std::string::npos) {
    return Status::InvalidArgument(
        "query: --connect HOST:PORT or --unix PATH required");
  }
  const std::string host = connect.substr(0, colon);
  const auto port = static_cast<uint16_t>(
      std::strtoul(connect.c_str() + colon + 1, nullptr, 10));
  return serve::ServeClient::ConnectTcp(host, port);
}

int CmdQuery(const Flags& flags) {
  auto connected = ConnectFromFlags(flags);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return connected.status().code() == StatusCode::kInvalidArgument ? 2 : 1;
  }
  serve::ServeClient client = std::move(connected).ValueOrDie();

  if (flags.Has("stats")) {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::fputs(stats->c_str(), stdout);
    return 0;
  }

  serve::QueryRequest request;
  request.graph = flags.Get("graph");
  if (request.graph.empty()) {
    std::fprintf(stderr, "query: --graph NAME is required\n");
    return 2;
  }
  PermutationKind order = PermutationKind::kDescending;
  if (!flags.Get("order").empty() &&
      !ParseOrder(flags.Get("order"), &order)) {
    std::fprintf(stderr, "unknown order '%s'\n", flags.Get("order").c_str());
    return 2;
  }
  request.orient = OrientSpec{order, flags.GetUint("seed", 1)};
  request.methods.clear();
  if (!ParseMethodList(flags.Get("methods", "E1"), &request.methods)) {
    return 2;
  }
  request.threads = static_cast<int32_t>(flags.GetUint("threads", 1));
  request.repeats = static_cast<int32_t>(flags.GetUint("repeats", 1));

  auto response = client.Query(request);
  if (!response.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 response.status().message().c_str());
    // Backpressure is an expected, retryable outcome; give scripts a
    // distinct exit code for it.
    if (client.last_failure_was_reply() &&
        (client.last_error().code == serve::ErrorCode::kOverloaded ||
         client.last_error().code == serve::ErrorCode::kDraining)) {
      return 3;
    }
    return 1;
  }

  std::printf("%s (n=%llu m=%llu): %s graph, %s orientation, "
              "predicted cost %.3g, queue wait %.3fs\n",
              request.graph.c_str(),
              static_cast<unsigned long long>(response->num_nodes),
              static_cast<unsigned long long>(response->num_edges),
              response->catalog_hit ? "warm" : "cold-loaded",
              response->orientation_cached ? "cached" : "built",
              response->predicted_cost, response->queue_wait_s);
  std::printf("  stages:");
  for (const serve::StageWall& stage : response->stages) {
    std::printf(" %s %.3fs", stage.name.c_str(), stage.wall_s);
  }
  std::printf("\n");
  for (const serve::MethodResult& m : response->methods) {
    std::printf("  %-4s triangles %llu, paper-metric ops %.0f, "
                "wall %.3fs%s\n",
                MethodName(m.method),
                static_cast<unsigned long long>(m.triangles), m.paper_ops,
                m.wall_s, m.parallel ? " (parallel)" : "");
  }
  if (flags.Has("report")) std::fputs(response->report_json.c_str(), stdout);
  return 0;
}

/// Parses "u:v[,u:v...]" into mutations with the given direction.
bool ParseEdgePairs(const std::string& text, bool insert,
                    std::vector<dyn::EdgeMutation>* ops) {
  if (text.empty()) return true;
  std::istringstream stream(text);
  std::string pair;
  while (std::getline(stream, pair, ',')) {
    const size_t colon = pair.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= pair.size()) {
      std::fprintf(stderr, "mutate: bad edge '%s' (want u:v)\n",
                   pair.c_str());
      return false;
    }
    dyn::EdgeMutation m;
    m.u = static_cast<NodeId>(
        std::strtoul(pair.c_str(), nullptr, 10));
    m.v = static_cast<NodeId>(
        std::strtoul(pair.c_str() + colon + 1, nullptr, 10));
    m.insert = insert;
    if (m.u == m.v) {
      std::fprintf(stderr, "mutate: self-loop '%s' rejected\n",
                   pair.c_str());
      return false;
    }
    ops->push_back(m);
  }
  return true;
}

/// Remote mode: ship the batch to a running trilistd and report the new
/// epoch's state.
int CmdMutateRemote(const Flags& flags,
                    std::vector<dyn::EdgeMutation> ops) {
  auto connected = ConnectFromFlags(flags);
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.status().ToString().c_str());
    return connected.status().code() == StatusCode::kInvalidArgument ? 2
                                                                     : 1;
  }
  serve::ServeClient client = std::move(connected).ValueOrDie();
  serve::MutateRequest request;
  request.graph = flags.Get("graph");
  if (request.graph.empty()) {
    std::fprintf(stderr, "mutate: --graph NAME is required\n");
    return 2;
  }
  const size_t batch =
      static_cast<size_t>(flags.GetUint("batch", 4096));
  for (size_t pos = 0; pos < ops.size();) {
    const size_t len = std::min(batch, ops.size() - pos);
    request.ops.assign(ops.begin() + static_cast<ptrdiff_t>(pos),
                       ops.begin() + static_cast<ptrdiff_t>(pos + len));
    pos += len;
    auto reply = client.Mutate(request);
    if (!reply.ok()) {
      std::fprintf(stderr, "mutate failed: %s\n",
                   reply.status().message().c_str());
      if (client.last_failure_was_reply() &&
          (client.last_error().code == serve::ErrorCode::kOverloaded ||
           client.last_error().code == serve::ErrorCode::kDraining)) {
        return 3;
      }
      return 1;
    }
    std::printf(
        "%s: epoch %llu seq %llu  +%llu -%llu (%llu noop)  "
        "triangles %llu  n=%llu m=%llu overlay=%llu%s  %.3fs\n",
        request.graph.c_str(),
        static_cast<unsigned long long>(reply->epoch),
        static_cast<unsigned long long>(reply->seq),
        static_cast<unsigned long long>(reply->applied_inserts),
        static_cast<unsigned long long>(reply->applied_deletes),
        static_cast<unsigned long long>(reply->noops),
        static_cast<unsigned long long>(reply->triangles),
        static_cast<unsigned long long>(reply->num_nodes),
        static_cast<unsigned long long>(reply->num_edges),
        static_cast<unsigned long long>(reply->overlay_arcs),
        reply->compacted ? " (compacted)" : "", reply->wall_s);
  }
  return 0;
}

/// Local mode: replay a mutation log over a graph through the
/// incremental maintenance path and (with --verify) prove the result
/// against a from-scratch recount + byte-identical compaction.
int CmdMutateLocal(const Flags& flags,
                   std::vector<dyn::EdgeMutation> ops) {
  const std::string in = flags.Get("in");
  Result<Graph> base = LooksLikeTlgFile(in)
                           ? [&]() -> Result<Graph> {
                               auto t = TlgFile::Open(in);
                               if (!t.ok()) return t.status();
                               // Owning rebuild: the mmap dies with `t`.
                               return Graph::FromEdges(
                                   t->graph().num_nodes(),
                                   t->graph().EdgeList());
                             }()
                           : ReadEdgeListFile(in);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }

  dyn::ReplayOptions options;
  options.batch_size = static_cast<size_t>(flags.GetUint("batch", 256));
  options.threads = static_cast<int>(flags.GetUint("threads", 1));
  options.recount_orient = OrientSpec{PermutationKind::kDescending, 0};
  options.verify_tlg = flags.Has("verify");
  const std::string out = flags.Get("out");
  if (options.verify_tlg) {
    const std::string stem =
        "/tmp/trilist-mutate-" + std::to_string(::getpid());
    options.compact_path = out.empty() ? stem + "-compact.tlg" : out;
    options.fresh_path = stem + "-fresh.tlg";
    options.orientations = {options.recount_orient};
  }

  auto report = dyn::ReplayVerify(*base, ops, options);
  const bool keep_out = !out.empty();
  if (options.verify_tlg) {
    ::unlink(options.fresh_path.c_str());
    if (!keep_out) ::unlink(options.compact_path.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "replayed %llu mutations (%llu applied, %llu noop) in %llu "
      "batches, %llu compactions\n",
      static_cast<unsigned long long>(report->mutations),
      static_cast<unsigned long long>(report->applied),
      static_cast<unsigned long long>(report->noops),
      static_cast<unsigned long long>(report->batches),
      static_cast<unsigned long long>(report->compactions));
  std::printf(
      "final graph: n=%llu m=%llu, incremental triangles %llu "
      "(apply %.3fs, %lld comparisons, predicted %.0f ops)\n",
      static_cast<unsigned long long>(report->final_nodes),
      static_cast<unsigned long long>(report->final_edges),
      static_cast<unsigned long long>(report->incremental_triangles),
      report->apply_wall_s, static_cast<long long>(report->comparisons),
      report->predicted_ops);
  std::printf("recount: T1 %llu, T2 %llu (%.3fs) -> %s\n",
              static_cast<unsigned long long>(report->recount_t1),
              static_cast<unsigned long long>(report->recount_t2),
              report->recount_wall_s,
              report->counts_match ? "match" : "MISMATCH");
  if (report->tlg_checked) {
    std::printf("compaction vs fresh convert: %s\n",
                report->tlg_bitmatch ? "bit-identical" : "DIVERGED");
  }
  if (!dyn::ReplayPassed(*report)) return 1;
  return 0;
}

int CmdMutate(const Flags& flags) {
  std::vector<dyn::EdgeMutation> ops;
  const std::string ops_file = flags.Get("ops-file", flags.Get("log"));
  if (!ops_file.empty()) {
    auto log = dyn::ReadMutationLog(ops_file);
    if (!log.ok()) {
      std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
      return 1;
    }
    ops = std::move(log).ValueOrDie();
  }
  if (!ParseEdgePairs(flags.Get("add"), true, &ops)) return 2;
  if (!ParseEdgePairs(flags.Get("del"), false, &ops)) return 2;
  if (ops.empty()) {
    std::fprintf(stderr,
                 "mutate: no mutations (use --add, --del or --ops-file)\n");
    return 2;
  }
  if (flags.Has("connect") || flags.Has("unix")) {
    return CmdMutateRemote(flags, std::move(ops));
  }
  if (flags.Get("in").empty()) {
    std::fprintf(stderr,
                 "mutate: --in GRAPH (local) or --connect/--unix "
                 "(remote) is required\n");
    return 2;
  }
  return CmdMutateLocal(flags, std::move(ops));
}

int CmdVersion() {
  const BuildInfo& info = GetBuildInfo();
  std::printf("%s\n", BuildInfoSummary());
  std::printf("  flags: %s\n", info.flags);
  std::printf("  simd: %s (detected %s; active level after "
              "TRILIST_FORCE_SCALAR/TRILIST_SIMD overrides)\n",
              SimdLevelName(ActiveSimdLevel()),
              SimdLevelName(DetectedSimdLevel()));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: trilist_cli "
      "<generate|count|run|model|orders|advise|convert|info|serve|query|"
      "mutate|version> [--flag value]...\n"
      "  generate --n N --alpha A [--trunc root|linear] [--seed S] --out F\n"
      "  count    --in F [--method T1..L6|auto] [--order O|auto]\n"
      "           (orders: D|A|RR|CRR|U|degen|aot|split; see `orders`;\n"
      "            auto = pick the min-predicted-cost plan, Section 3)\n"
      "           [--threads N]   (N > 1: parallel engine; 0 = hardware)\n"
      "           [--intersect merge|gallop|auto|simd|bitmap]\n"
      "           [--mem-budget SIZE]   (e.g. 64M; E1/E2 run partitioned\n"
      "            under the budget; .tlg inputs demand-page + evict)\n"
      "           (--in accepts text edge lists or .tlg containers)\n"
      "  run      [--in F | --n N --alpha A [--trunc root|linear]\n"
      "           [--gen residual|config|gnp]]\n"
      "           [--methods M1,M2,...|all|fundamental|auto] [--order O|auto]\n"
      "           [--seed S] [--threads N] [--repeats R]\n"
      "           [--intersect merge|gallop|auto|simd|bitmap]\n"
      "           (with --methods/--order auto, --intersect auto joins the\n"
      "            planner; the report's \"plan\" object audits the choice)\n"
      "           [--bitmap-min-degree D]   (0 = auto max(64, n/64))\n"
      "           [--report table|json] [--trace F.json] [--metrics F.prom]\n"
      "           [--degree-profile] [--mem-budget SIZE]\n"
      "           (--trace: Chrome/Perfetto span trace of the pipeline;\n"
      "            --metrics: Prometheus text exposition of the report;\n"
      "            --degree-profile: per-log2-degree-bucket measured ops\n"
      "            vs the model's g(d)h(q) with relative residuals)\n"
      "  model    --alpha A [--n N] [--trunc ...] [--method M] [--order O]\n"
      "  orders   (list registered orderings: keys, flags, descriptions)\n"
      "  advise   --alpha A [--speedup X]\n"
      "  convert  --in F --out F [--orders D,RR,...] [--seed S]\n"
      "           [--threads N]   (--out *.tlg = binary, else text)\n"
      "           [--mem-budget SIZE [--tmpdir DIR] [--io-workers N]\n"
      "            [--no-direct-io] [--report json]]\n"
      "           (--mem-budget: out-of-core text -> .tlg conversion;\n"
      "            external edge sort spills to --tmpdir, peak memory\n"
      "            stays under the budget for any graph size)\n"
      "  info     --in F.tlg   (describes the on-disk snapshot; a served\n"
      "           graph's live epoch/overlay state is in `query --stats`)\n"
      "  serve    [--tcp PORT] [--host H] [--unix PATH] [--graphs DIR]\n"
      "           [--graph name=path[,...]] [--workers N] [--queue N]\n"
      "           [--catalog N] [--sjf] [--max-threads N] [--send-timeout SEC]\n"
      "           [--paged]   (demand-page .tlg graphs instead of eager\n"
      "            load + CRC sweep; for catalogs larger than RAM)\n"
      "           (trilistd: the triangle-query daemon; --tcp 0 binds an\n"
      "            ephemeral port; SIGTERM drains gracefully)\n"
      "  query    (--connect HOST:PORT | --unix PATH) --graph NAME\n"
      "           [--methods ...] [--order O] [--seed S] [--threads N]\n"
      "           [--repeats R] [--report] [--stats]\n"
      "  mutate   (--connect HOST:PORT | --unix PATH) --graph NAME\n"
      "           [--add u:v[,u:v...]] [--del u:v[,...]] [--ops-file F]\n"
      "           [--batch N]   (remote: batched edge inserts/deletes;\n"
      "            each batch publishes a new epoch, count stays exact)\n"
      "       or  --in GRAPH --log F [--verify] [--out F.tlg]\n"
      "           [--batch N] [--threads N]\n"
      "           (local: replay a mutation log incrementally; --verify\n"
      "            recounts from scratch with T1+T2 and byte-compares a\n"
      "            compaction against a fresh convert — exit 1 on any\n"
      "            divergence)\n"
      "  version  (build provenance: version, git hash, compiler, flags)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags(argc, argv);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "count") return CmdCount(flags);
  if (cmd == "run") return CmdRun(flags);
  if (cmd == "model") return CmdModel(flags);
  if (cmd == "orders") return CmdOrders();
  if (cmd == "advise") return CmdAdvise(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "mutate") return CmdMutate(flags);
  if (cmd == "version" || cmd == "--version") return CmdVersion();
  return Usage();
}
