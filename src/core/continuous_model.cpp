#include "src/core/continuous_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/h_function.h"
#include "src/util/status.h"

namespace trilist {

double ContinuousCost(const ContinuousPareto& f, double t_n,
                      const std::function<double(double)>& h,
                      const XiMap& xi, const WeightFn& w, size_t points) {
  TRILIST_DCHECK(t_n > 0.0);
  TRILIST_DCHECK(points >= 16);
  // Log-spaced grid on [x0, t_n]; the mass below x0 is added as a single
  // cell (g(x) -> 0 there, so its cost contribution is negligible but its
  // weight mass is not).
  const double x0 = std::min(1e-4, t_n / 2.0);
  const double lo = std::log(x0);
  const double hi = std::log(t_n);
  const double step = (hi - lo) / static_cast<double>(points);
  const double norm = f.Cdf(t_n);  // truncation normalizer

  // Single sweep: accumulate weighted prefix mass and the cost integral
  // per trapezoid cell, evaluating the integrand at cell midpoints.
  // First compute total weighted mass for the J normalizer.
  double total_weight = w(x0 / 2.0) * f.Cdf(x0);
  {
    double prev = x0;
    for (size_t i = 1; i <= points; ++i) {
      const double x = std::exp(lo + step * static_cast<double>(i));
      const double mid = 0.5 * (prev + x);
      total_weight += w(mid) * (f.Cdf(x) - f.Cdf(prev));
      prev = x;
    }
  }
  if (total_weight <= 0.0) return 0.0;

  double prefix = w(x0 / 2.0) * f.Cdf(x0);
  double cost = 0.0;
  double prev = x0;
  for (size_t i = 1; i <= points; ++i) {
    const double x = std::exp(lo + step * static_cast<double>(i));
    const double mid = 0.5 * (prev + x);
    const double mass = f.Cdf(x) - f.Cdf(prev);
    prefix += w(mid) * mass;
    const double j = std::min(1.0, prefix / total_weight);
    cost += GFunction(mid) * xi.ExpectH(h, j) * mass;
    prev = x;
  }
  return cost / norm;
}

double ContinuousCost(const ContinuousPareto& f, double t_n, Method m,
                      const XiMap& xi, const WeightFn& w, size_t points) {
  return ContinuousCost(f, t_n, HOf(m), xi, w, points);
}

double ParetoWeightedPrefix(const ContinuousPareto& f, double x) {
  if (x <= 0.0) return 0.0;
  const double a = f.alpha();
  const double b = f.beta();
  const double upper = 1.0 + x / b;
  // M(x) = a*b * [ int_1^U u^-a du - int_1^U u^-(a+1) du ].
  double i1;
  if (std::abs(a - 1.0) < 1e-12) {
    i1 = std::log(upper);
  } else {
    i1 = (std::pow(upper, 1.0 - a) - 1.0) / (1.0 - a);
  }
  const double i2 = (1.0 - std::pow(upper, -a)) / a;
  return a * b * (i1 - i2);
}

}  // namespace trilist
