#include "src/core/kernel.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace trilist {

namespace {
size_t DefaultHalfWidth(size_t n) {
  const auto k = static_cast<size_t>(
      0.5 * std::pow(static_cast<double>(n), 2.0 / 3.0));
  return std::max<size_t>(1, k);
}
}  // namespace

double EmpiricalKernel(const Permutation& theta, double v, double u,
                       size_t k) {
  const size_t n = theta.size();
  TRILIST_DCHECK(n > 0);
  if (k == 0) k = DefaultHalfWidth(n);
  const auto center = static_cast<int64_t>(
      std::ceil(u * static_cast<double>(n))) - 1;  // ceil(un), 0-based
  const double label_bound = v * static_cast<double>(n);
  int64_t hits = 0;
  int64_t count = 0;
  for (int64_t off = -static_cast<int64_t>(k);
       off <= static_cast<int64_t>(k); ++off) {
    int64_t pos = center + off;
    if (pos < 0) pos = 0;
    if (pos >= static_cast<int64_t>(n)) pos = static_cast<int64_t>(n) - 1;
    ++count;
    // Labels are 0-based; the paper's theta_n(i) <= vn with 1-based
    // labels corresponds to label + 1 <= vn.
    if (static_cast<double>(theta(static_cast<size_t>(pos))) + 1.0 <=
        label_bound) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(count);
}

double KernelDistance(const Permutation& theta, const XiMap& xi, int grid,
                      size_t k) {
  double worst = 0.0;
  for (int ui = 1; ui < grid; ++ui) {
    const double u = static_cast<double>(ui) / grid;
    for (int vi = 0; vi <= grid; ++vi) {
      const double v = static_cast<double>(vi) / grid;
      // Weak convergence: skip points where the limit kernel jumps in v
      // (compare only at continuity points, per Definition 5). For the
      // affine-mixture maps the kernel is a step function of v, so any
      // local increase marks a jump.
      const double eps = 1.5 / static_cast<double>(grid);
      if (xi.Cdf(v + eps, u) - xi.Cdf(v - eps, u) > 0.05) continue;
      const double diff = std::abs(EmpiricalKernel(theta, v, u, k) -
                                   xi.Cdf(v, u));
      worst = std::max(worst, diff);
    }
  }
  return worst;
}

}  // namespace trilist
