#include "src/core/discrete_model.h"

#include <algorithm>

#include "src/core/h_function.h"
#include "src/util/status.h"

namespace trilist {

double ExactDiscreteCost(const DegreeDistribution& fn, int64_t t_n,
                         const std::function<double(double)>& h,
                         const XiMap& xi, const WeightFn& w) {
  TRILIST_DCHECK(t_n >= 1);
  // Pass 1: E[w(D_n)] for the J normalizer.
  double total_weight = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const double p =
        fn.Survival(static_cast<double>(k - 1)) -
        fn.Survival(static_cast<double>(k));
    total_weight += w(static_cast<double>(k)) * p;
  }
  if (total_weight <= 0.0) return 0.0;

  // Pass 2: stream J and accumulate cost. J uses the inclusive prefix
  // sum_{j<=i}, exactly as Eq. (50) is written; see the Table 6 note in
  // EXPERIMENTS.md for the one ascending-order cell where the paper's own
  // computation appears to differ by a tie-handling detail.
  double prefix_weight = 0.0;
  double cost = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const double p =
        fn.Survival(static_cast<double>(k - 1)) -
        fn.Survival(static_cast<double>(k));
    if (p <= 0.0) continue;
    const auto x = static_cast<double>(k);
    prefix_weight += w(x) * p;
    const double j = std::min(1.0, prefix_weight / total_weight);
    cost += GFunction(x) * xi.ExpectH(h, j) * p;
  }
  return cost;
}

double ExactDiscreteCost(const DegreeDistribution& fn, int64_t t_n, Method m,
                         const XiMap& xi, const WeightFn& w) {
  return ExactDiscreteCost(fn, t_n, HOf(m), xi, w);
}

}  // namespace trilist
