#pragma once

#include <cstdint>
#include <functional>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/core/xi_map.h"
#include "src/degree/distribution.h"

/// \file fast_model.h
/// Algorithm 2 of the paper: epsilon-compressed evaluation of Eq. (50).
///
/// Summands over the geometric block [i, (1+eps)i) are merged into one
/// term evaluated at the block's left edge, reducing O(t_n) to
/// O((1 + log(eps * t_n)) / eps). eps = 1/t_n degenerates to the exact
/// model; eps ~ 1e-5 computes t_n = 1e17 in fractions of a second
/// (Table 5's punchline). Because the limit as n -> infinity is the same
/// under any truncation, running this with a huge t_n on the *untruncated*
/// F(x) yields the asymptotic costs of Eqs. (22)-(24), (34)-(36),
/// (44)-(45).

namespace trilist {

/// Evaluates Eq. (50) with block compression (Algorithm 2).
/// \param fn the (truncated) degree distribution.
/// \param t_n summation bound.
/// \param h cost shape; \param xi limiting map; \param w weight function.
/// \param eps relative block width in (0, 1); values <= 1/t_n are exact.
double FastDiscreteCost(const DegreeDistribution& fn, int64_t t_n,
                        const std::function<double(double)>& h,
                        const XiMap& xi,
                        const WeightFn& w = WeightFn::Identity(),
                        double eps = 1e-5);

/// Convenience overload taking a Method.
double FastDiscreteCost(const DegreeDistribution& fn, int64_t t_n, Method m,
                        const XiMap& xi,
                        const WeightFn& w = WeightFn::Identity(),
                        double eps = 1e-5);

/// Asymptotic limit lim_n E[c_n(M, theta) | D_n] for an untruncated base
/// distribution F: Algorithm 2 with a huge summation bound. Diverging
/// costs return a large finite number that grows with `tail_bound`; use
/// the finiteness classifier (limits.h) to interpret.
/// \param f untruncated degree distribution.
/// \param m method; \param xi limiting map; \param w weight function.
/// \param eps block width; \param tail_bound upper summation limit.
double AsymptoticCost(const DegreeDistribution& f, Method m, const XiMap& xi,
                      const WeightFn& w = WeightFn::Identity(),
                      double eps = 1e-5, int64_t tail_bound = int64_t{1} << 56);

}  // namespace trilist
