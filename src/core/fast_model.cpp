#include "src/core/fast_model.h"

#include <algorithm>
#include <cmath>

#include "src/core/h_function.h"
#include "src/util/status.h"

namespace trilist {

double FastDiscreteCost(const DegreeDistribution& fn, int64_t t_n,
                        const std::function<double(double)>& h,
                        const XiMap& xi, const WeightFn& w, double eps) {
  TRILIST_DCHECK(t_n >= 1);
  TRILIST_DCHECK(eps > 0.0 && eps < 1.0);
  auto block_jump = [&](int64_t i) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(eps * static_cast<double>(i))));
  };
  auto block_mass = [&](int64_t i, int64_t jump) {
    const int64_t end = std::min(t_n, i + jump - 1);
    return fn.Survival(static_cast<double>(i - 1)) -
           fn.Survival(static_cast<double>(end));
  };

  // Line 3-5 of Algorithm 2: E[w(D_n)].
  double total_weight = 0.0;
  for (int64_t i = 1; i <= t_n;) {
    const int64_t jump = block_jump(i);
    total_weight += w(static_cast<double>(i)) * block_mass(i, jump);
    i += jump;
  }
  if (total_weight <= 0.0) return 0.0;

  // Line 6-10: stream J and accumulate the cost (inclusive prefix, as
  // the pseudocode is written).
  double prefix_weight = 0.0;
  double cost = 0.0;
  for (int64_t i = 1; i <= t_n;) {
    const int64_t jump = block_jump(i);
    const double p = block_mass(i, jump);
    if (p > 0.0) {
      const auto x = static_cast<double>(i);
      prefix_weight += w(x) * p;
      const double j = std::min(1.0, prefix_weight / total_weight);
      cost += GFunction(x) * xi.ExpectH(h, j) * p;
    }
    i += jump;
  }
  return cost;
}

double FastDiscreteCost(const DegreeDistribution& fn, int64_t t_n, Method m,
                        const XiMap& xi, const WeightFn& w, double eps) {
  return FastDiscreteCost(fn, t_n, HOf(m), xi, w, eps);
}

double AsymptoticCost(const DegreeDistribution& f, Method m, const XiMap& xi,
                      const WeightFn& w, double eps, int64_t tail_bound) {
  const int64_t bound = std::min(tail_bound, f.MaxSupport());
  return FastDiscreteCost(f, bound, HOf(m), xi, w, eps);
}

}  // namespace trilist
