#include "src/core/h_function.h"

namespace trilist {

double EvalClassH(CostClass c, double x) {
  switch (c) {
    case CostClass::kT1:
      return 0.5 * x * x;
    case CostClass::kT2:
      return x * (1.0 - x);
    case CostClass::kT3:
      return 0.5 * (1.0 - x) * (1.0 - x);
  }
  return 0.0;
}

double EvalH(Method m, double x) {
  double h = EvalClassH(LocalCostClass(m), x);
  if (MethodFamily(m) == Family::kScanningEdgeIterator) {
    h += EvalClassH(RemoteCostClass(m), x);
  }
  return h;
}

std::function<double(double)> HOf(Method m) {
  return [m](double x) { return EvalH(m, x); };
}

double MeanHUniform(Method m) {
  // Each primitive class integrates to 1/6 on [0, 1].
  return MethodFamily(m) == Family::kScanningEdgeIterator ? 1.0 / 3.0
                                                          : 1.0 / 6.0;
}

}  // namespace trilist
