#include "src/core/xi_map.h"

#include <cmath>

#include "src/util/status.h"

namespace trilist {

XiMap XiMap::Ascending() {
  return XiMap(false, {{1.0, 0.0, 1.0}}, "xi_A");
}

XiMap XiMap::Descending() {
  return XiMap(false, {{1.0, 1.0, -1.0}}, "xi_D");
}

XiMap XiMap::RoundRobin() {
  return XiMap(false, {{0.5, 0.5, -0.5}, {0.5, 0.5, 0.5}}, "xi_RR");
}

XiMap XiMap::ComplementaryRoundRobin() {
  return XiMap(false, {{0.5, 0.0, 0.5}, {0.5, 1.0, -0.5}}, "xi_CRR");
}

XiMap XiMap::Uniform() { return XiMap(true, {}, "xi_U"); }

XiMap XiMap::FromKind(PermutationKind kind) {
  switch (kind) {
    case PermutationKind::kAscending: return Ascending();
    case PermutationKind::kDescending: return Descending();
    case PermutationKind::kRoundRobin: return RoundRobin();
    case PermutationKind::kComplementaryRoundRobin:
      return ComplementaryRoundRobin();
    case PermutationKind::kUniform: return Uniform();
    case PermutationKind::kDegenerate:
    case PermutationKind::kAot:
    case PermutationKind::kSplit:
      break;  // graph/sequence-dependent: no distribution-level xi.
  }
  TRILIST_DCHECK(false);
  return Ascending();
}

XiMap XiMap::Mixture(std::vector<Component> components, std::string name) {
  double total = 0.0;
  for (const Component& c : components) {
    TRILIST_DCHECK(c.weight >= 0.0);
    total += c.weight;
  }
  TRILIST_DCHECK(std::abs(total - 1.0) < 1e-9);
  return XiMap(false, std::move(components), std::move(name));
}

double XiMap::ExpectH(const std::function<double(double)>& h,
                      double u) const {
  if (uniform_) {
    // Composite Simpson on [0,1]; the integrand is a low-degree
    // polynomial for every method, so 64 panels is far beyond enough.
    constexpr int kPanels = 64;
    const double step = 1.0 / kPanels;
    double acc = h(0.0) + h(1.0);
    for (int i = 1; i < kPanels; ++i) {
      acc += (i % 2 == 1 ? 4.0 : 2.0) * h(i * step);
    }
    return acc * step / 3.0;
  }
  double expect = 0.0;
  for (const Component& c : components_) {
    expect += c.weight * h(c.intercept + c.slope * u);
  }
  return expect;
}

double XiMap::Cdf(double v, double u) const {
  if (uniform_) {
    if (v < 0.0) return 0.0;
    return v > 1.0 ? 1.0 : v;
  }
  double mass = 0.0;
  for (const Component& c : components_) {
    if (c.intercept + c.slope * u <= v) mass += c.weight;
  }
  return mass;
}

bool XiMap::IsMeasurePreserving(int grid, double tol) const {
  // E_U[K(v; U)] must equal v (Definition 4). Midpoint rule over U.
  for (int vi = 0; vi <= grid; ++vi) {
    const double v = static_cast<double>(vi) / grid;
    double acc = 0.0;
    for (int ui = 0; ui < grid; ++ui) {
      const double u = (ui + 0.5) / grid;
      acc += Cdf(v, u);
    }
    acc /= grid;
    if (std::abs(acc - v) > tol) return false;
  }
  return true;
}

XiMap XiMap::Reverse() const {
  if (uniform_) return *this;
  std::vector<Component> rev;
  rev.reserve(components_.size());
  for (const Component& c : components_) {
    rev.push_back({c.weight, 1.0 - c.intercept, -c.slope});
  }
  return XiMap(false, std::move(rev), name_ + "'");
}

XiMap XiMap::Complement() const {
  if (uniform_) return *this;
  std::vector<Component> comp;
  comp.reserve(components_.size());
  for (const Component& c : components_) {
    comp.push_back({c.weight, c.intercept + c.slope, -c.slope});
  }
  return XiMap(false, std::move(comp), name_ + "''");
}

}  // namespace trilist
