#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/degree/distribution.h"

/// \file spread.h
/// The spread distribution J(x) of Lemma 2 / Proposition 5:
///   J(x) = (1 / E[w(D)]) * integral_0^x w(y) dF(y),
/// the degree distribution of a node chosen proportional to its weight
/// (the renewal-theory inspection paradox). For w(x) = x this is the
/// degree seen at the end of a random edge; the Pareto closed form is
/// Eq. (19) (ContinuousPareto::SpreadCdf).

namespace trilist {

/// \brief Weight function w(x) = min(x, cap); cap = inf gives w(x) = x.
///
/// The paper requires w to be positive and non-decreasing; min(x, a)
/// covers both weights used in the evaluation: w1(x) = x and
/// w2(x) = min(x, sqrt(mean_m)) (Table 11).
struct WeightFn {
  double cap = std::numeric_limits<double>::infinity();

  /// Evaluates w(x).
  double operator()(double x) const { return x < cap ? x : cap; }

  /// w(x) = x.
  static WeightFn Identity() { return WeightFn{}; }
  /// w(x) = min(x, a).
  static WeightFn Capped(double a) { return WeightFn{a}; }
};

/// Dense table of J(k) for k = 1..t_n from a (truncated) distribution:
/// table[k-1] = sum_{j<=k} w(j) p_j / sum_j w(j) p_j. O(t_n) time/space;
/// intended for exact models and tests (t_n up to ~1e8).
std::vector<double> SpreadTable(const DegreeDistribution& fn, int64_t t_n,
                                const WeightFn& w = WeightFn::Identity());

/// J evaluated at a single point by streaming (no table).
double SpreadAt(const DegreeDistribution& fn, int64_t t_n, int64_t x,
                const WeightFn& w = WeightFn::Identity());

/// Empirical q_i denominator: the realized spread of a degree sequence,
/// J_hat(k) = sum of w(d_j) over d_j <= k divided by the total weight.
/// Used by tests of Lemma 2 (q_{ceil(nu)} -> J(F^{-1}(u))).
std::vector<double> EmpiricalSpread(std::vector<int64_t> degrees,
                                    const WeightFn& w = WeightFn::Identity());

}  // namespace trilist
