#include "src/core/advisor.h"

#include <cmath>
#include <cstdio>

#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/pareto.h"
#include "src/util/status.h"

namespace trilist {

PermutationKind OptimalPermutationKindFor(Method m) {
  // With increasing r(x) = g(x)/w(x), Corollary 1 matches h's monotone
  // direction to descending/ascending order and Corollary 2 matches the
  // symmetric h's to RR/CRR. Grouped by the h of each method:
  switch (m) {
    // h = x^2/2 increasing -> descending.
    case Method::kT1: case Method::kT4:
    case Method::kL2: case Method::kL6:
      return PermutationKind::kDescending;
    // h = (1-x)^2/2 decreasing -> ascending.
    case Method::kT3: case Method::kT6:
    case Method::kL4: case Method::kL5:
      return PermutationKind::kAscending;
    // h = x(1-x), symmetric and increasing on [0, 1/2) -> RR.
    case Method::kT2: case Method::kT5:
    case Method::kL1: case Method::kL3:
      return PermutationKind::kRoundRobin;
    // h = x(2-x)/2 increasing -> descending.
    case Method::kE1: case Method::kE2:
      return PermutationKind::kDescending;
    // h = (1-x^2)/2 decreasing -> ascending.
    case Method::kE3: case Method::kE5:
      return PermutationKind::kAscending;
    // h = (x^2+(1-x)^2)/2, symmetric and decreasing on [0, 1/2) -> CRR.
    case Method::kE4: case Method::kE6:
      return PermutationKind::kComplementaryRoundRobin;
  }
  return PermutationKind::kDescending;
}

PermutationKind WorstPermutationKindFor(Method m) {
  // Corollary 3: the complement of the optimal map. Complements of the
  // named maps: A'' = D, D'' = A, RR'' = CRR, CRR'' = RR.
  switch (OptimalPermutationKindFor(m)) {
    case PermutationKind::kAscending:
      return PermutationKind::kDescending;
    case PermutationKind::kDescending:
      return PermutationKind::kAscending;
    case PermutationKind::kRoundRobin:
      return PermutationKind::kComplementaryRoundRobin;
    case PermutationKind::kComplementaryRoundRobin:
      return PermutationKind::kRoundRobin;
    default:
      return PermutationKind::kUniform;
  }
}

MethodAdvice AdviseForPareto(double alpha, double sei_speedup, double beta) {
  TRILIST_DCHECK(alpha > 0.0);
  MethodAdvice advice;
  const XiMap xi_d = XiMap::Descending();
  advice.t1_cost_finite = IsFiniteAsymptoticCost(Method::kT1, xi_d, alpha);
  advice.e1_cost_finite = IsFiniteAsymptoticCost(Method::kE1, xi_d, alpha);

  if (!advice.t1_cost_finite) {
    // alpha <= 4/3: everything diverges; T1 has the slowest growth
    // (Eq. 47 vs 48).
    advice.method = Method::kT1;
    advice.order = PermutationKind::kDescending;
    advice.rationale =
        "alpha <= 4/3: all methods have asymptotically infinite cost; "
        "T1 + theta_D grows slowest (Eq. 47 vs 48).";
    return advice;
  }
  if (!advice.e1_cost_finite) {
    advice.method = Method::kT1;
    advice.order = PermutationKind::kDescending;
    advice.rationale =
        "alpha in (4/3, 1.5]: c(T1, xi_D) is finite while c(E1, xi_D) is "
        "infinite, so the vertex iterator wins regardless of instruction "
        "speed (Section 6.3).";
    return advice;
  }
  // Both finite: compare model costs against the per-op speed advantage.
  if (beta <= 0.0) beta = 30.0 * (alpha - 1.0);
  const DiscretePareto f(alpha, beta);
  const double c_t1 = AsymptoticCost(f, Method::kT1, xi_d);
  const double c_e1 = AsymptoticCost(f, Method::kE1, xi_d);
  const double ratio = c_t1 > 0.0 ? c_e1 / c_t1 : 1.0;
  if (ratio < sei_speedup) {
    advice.method = Method::kE1;
    advice.order = PermutationKind::kDescending;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "alpha > 1.5: w_n = cost(E1)/cost(T1) = %.2f < %.0fx "
                  "scanning speed advantage, so E1 + theta_D wins on "
                  "runtime.",
                  ratio, sei_speedup);
    advice.rationale = buf;
  } else {
    advice.method = Method::kT1;
    advice.order = PermutationKind::kDescending;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "alpha > 1.5 but w_n = cost(E1)/cost(T1) = %.2f exceeds "
                  "the %.0fx speed advantage: T1 + theta_D wins.",
                  ratio, sei_speedup);
    advice.rationale = buf;
  }
  return advice;
}

}  // namespace trilist
