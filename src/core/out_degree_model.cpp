#include "src/core/out_degree_model.h"

#include "src/core/h_function.h"
#include "src/util/status.h"

namespace trilist {

std::vector<int64_t> DegreesByLabel(
    const std::vector<int64_t>& ascending_degrees,
    const Permutation& theta) {
  TRILIST_DCHECK(theta.size() == ascending_degrees.size());
  std::vector<int64_t> by_label(ascending_degrees.size());
  for (size_t pos = 0; pos < ascending_degrees.size(); ++pos) {
    by_label[theta(pos)] = ascending_degrees[pos];
  }
  return by_label;
}

std::vector<double> ExpectedOutDegrees(
    const std::vector<int64_t>& degrees_by_label, const WeightFn& w) {
  const size_t n = degrees_by_label.size();
  double total_weight = 0.0;
  for (int64_t d : degrees_by_label) {
    total_weight += w(static_cast<double>(d));
  }
  std::vector<double> expected(n, 0.0);
  double prefix = 0.0;  // sum_{j<i} w(d_j) in label order
  for (size_t i = 0; i < n; ++i) {
    const auto d = static_cast<double>(degrees_by_label[i]);
    const double denom = total_weight - w(d);
    expected[i] = denom > 0.0 ? d * prefix / denom : 0.0;
    prefix += w(d);
  }
  return expected;
}

std::vector<double> ExpectedSmallerNeighborFractions(
    const std::vector<int64_t>& degrees_by_label, const WeightFn& w) {
  std::vector<double> q = ExpectedOutDegrees(degrees_by_label, w);
  for (size_t i = 0; i < q.size(); ++i) {
    const auto d = static_cast<double>(degrees_by_label[i]);
    q[i] = d > 0.0 ? q[i] / d : 0.0;
  }
  return q;
}

double SequenceConditionalCost(
    const std::vector<int64_t>& ascending_degrees, const Permutation& theta,
    Method m, const WeightFn& w) {
  const std::vector<int64_t> by_label =
      DegreesByLabel(ascending_degrees, theta);
  const std::vector<double> q =
      ExpectedSmallerNeighborFractions(by_label, w);
  const size_t n = by_label.size();
  if (n == 0) return 0.0;
  double cost = 0.0;
  for (size_t i = 0; i < n; ++i) {
    cost += GFunction(static_cast<double>(by_label[i])) * EvalH(m, q[i]);
  }
  return cost / static_cast<double>(n);
}

}  // namespace trilist
