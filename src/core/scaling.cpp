#include "src/core/scaling.h"

#include <cmath>

#include "src/util/status.h"

namespace trilist {

double SpreadTailRate(double alpha, double x, double t_n) {
  TRILIST_DCHECK(x > 0.0 && t_n > 1.0);
  if (alpha > 1.0) {
    return std::pow(x, 1.0 - alpha);
  }
  if (alpha == 1.0) {
    return 1.0 - std::log(x) / std::log(t_n);
  }
  // 0 < alpha < 1.
  return 1.0 - std::pow(x, 1.0 - alpha) / std::pow(t_n, 1.0 - alpha);
}

double T1ScalingRate(double alpha, double n) {
  TRILIST_DCHECK(n > 1.0);
  constexpr double kFourThirds = 4.0 / 3.0;
  if (alpha == kFourThirds) return std::log(n);
  if (alpha > 1.0 && alpha < kFourThirds) {
    return std::pow(n, 2.0 - 1.5 * alpha);
  }
  if (alpha == 1.0) {
    const double logn = std::log(n);
    return std::sqrt(n) / (logn * logn);
  }
  TRILIST_DCHECK(alpha > 0.0 && alpha < 1.0);
  return std::pow(n, 1.0 - alpha / 2.0);
}

double E1ScalingRate(double alpha, double n) {
  TRILIST_DCHECK(n > 1.0);
  if (alpha == 1.5) return std::log(n);
  if (alpha > 1.0 && alpha < 1.5) {
    return std::pow(n, 1.5 - alpha);
  }
  if (alpha == 1.0) {
    return std::sqrt(n) / std::log(n);
  }
  TRILIST_DCHECK(alpha > 0.0 && alpha < 1.0);
  return std::pow(n, 1.0 - alpha / 2.0);
}

}  // namespace trilist
