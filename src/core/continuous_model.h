#pragma once

#include <cstdint>
#include <functional>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/core/xi_map.h"
#include "src/degree/pareto.h"

/// \file continuous_model.h
/// The continuous model, Eq. (49): the double Lebesgue-Stieltjes integral
///
///   int_0^{t_n} g(x) h( xi( int_0^x w dF_n / int_0^{t_n} w dF_n ) ) dF_n(x)
///
/// evaluated against the *continuous* Pareto F*(x) = 1 - (1 + x/beta)^-a
/// truncated to [0, t_n] (the paper computes this in Matlab; we use a
/// log-spaced composite quadrature). Section 7.1 / Table 5 show it is only
/// a crude approximation to the discrete experiments — off by 1.5-2% — yet
/// converges to a nearby limit; reproducing that discrepancy is part of
/// the Table 5 experiment.

namespace trilist {

/// Evaluates Eq. (49).
/// \param f continuous Pareto F*.
/// \param t_n truncation point.
/// \param h cost shape; \param xi limiting map; \param w weight.
/// \param points quadrature resolution (log-spaced trapezoid panels).
double ContinuousCost(const ContinuousPareto& f, double t_n,
                      const std::function<double(double)>& h,
                      const XiMap& xi,
                      const WeightFn& w = WeightFn::Identity(),
                      size_t points = 1 << 17);

/// Convenience overload taking a Method.
double ContinuousCost(const ContinuousPareto& f, double t_n, Method m,
                      const XiMap& xi,
                      const WeightFn& w = WeightFn::Identity(),
                      size_t points = 1 << 17);

/// Closed-form weighted prefix integral M(x) = int_0^x y dF*(y) for the
/// continuous Pareto (w(x) = x), handling alpha = 1 separately. Used by
/// tests to validate the quadrature and Eq. (19).
double ParetoWeightedPrefix(const ContinuousPareto& f, double x);

}  // namespace trilist
