#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/order/named_orders.h"

/// \file xi_map.h
/// Limiting random maps xi(u) of admissible permutation sequences
/// (Section 5). A measure-preserving kernel K(v; u) describes where the
/// position u in [0,1] lands under theta_n as n -> infinity; the cost limit
/// is E[g(D) h(xi(J(D)))] (Theorem 2).
///
/// Every named permutation converges to a finite mixture of affine maps
/// u -> a + b u (Propositions 6-7):
///   ascending   xi(u) = u
///   descending  xi(u) = 1 - u
///   RR          xi(u) = (1-u)/2 or (1+u)/2, each w.p. 1/2
///   CRR         xi(u) = u/2 or 1 - u/2, each w.p. 1/2
/// plus the uniform map, where xi(u) ~ Uniform[0,1] independent of u.
/// This class represents exactly that family and exposes the only
/// operation the models need: E[h(xi(u))] over the map's randomness.

namespace trilist {

/// \brief Limiting map of an admissible permutation sequence.
class XiMap {
 public:
  /// One affine branch xi(u) = intercept + slope * u, taken w.p. weight.
  struct Component {
    double weight;
    double intercept;
    double slope;
  };

  /// xi(u) = u.
  static XiMap Ascending();
  /// xi(u) = 1 - u.
  static XiMap Descending();
  /// Proposition 6: (1-u)/2 or (1+u)/2 with probability 1/2 each.
  static XiMap RoundRobin();
  /// u/2 or 1 - u/2 with probability 1/2 each.
  static XiMap ComplementaryRoundRobin();
  /// xi(u) ~ Uniform[0,1] independent of u.
  static XiMap Uniform();
  /// The map a named permutation sequence converges to. kDegenerate has no
  /// distribution-free limit and is rejected.
  static XiMap FromKind(PermutationKind kind);
  /// Arbitrary mixture of affine branches (weights must sum to 1 and map
  /// into [0,1]).
  static XiMap Mixture(std::vector<Component> components, std::string name);

  /// E[h(xi(u))] over the map's randomness. For the uniform map this is
  /// the u-independent integral of h (65-point composite Simpson).
  double ExpectH(const std::function<double(double)>& h, double u) const;

  /// The kernel K(v; u) = P(xi(u) <= v) of Definition 4: a CDF in v for
  /// each fixed u. Mixtures of affine branches yield step functions; the
  /// uniform map yields clamp(v, 0, 1).
  double Cdf(double v, double u) const;

  /// Checks Definition 4's measure-preservation numerically:
  /// E_U[K(v; U)] == v for all v, up to quadrature error `tol` on a grid
  /// of `grid` points per axis.
  bool IsMeasurePreserving(int grid = 512, double tol = 5e-3) const;

  /// Reverse map xi'(u) = 1 - xi(u) (Proposition 7).
  XiMap Reverse() const;
  /// Complement map xi''(u) = xi(1 - u) (Proposition 7).
  XiMap Complement() const;

  /// True for the uniform (u-independent) map.
  bool is_uniform() const { return uniform_; }
  /// The affine branches (empty for the uniform map).
  const std::vector<Component>& components() const { return components_; }
  /// Display name ("xi_D", "xi_RR", ...).
  const std::string& name() const { return name_; }

 private:
  XiMap(bool uniform, std::vector<Component> components, std::string name)
      : uniform_(uniform),
        components_(std::move(components)),
        name_(std::move(name)) {}

  bool uniform_ = false;
  std::vector<Component> components_;
  std::string name_;
};

}  // namespace trilist
