#pragma once

#include <cstdint>

/// \file scaling.h
/// Growth rates of the cost below the finiteness thresholds under root
/// truncation (Section 6.3, Eqs. (46)-(48)). When alpha drops below 4/3
/// (T1) or 3/2 (E1), E[c_n | D_n] diverges and scales as a_n / b_n; the
/// scaling-law bench checks measured cost against these shapes.

namespace trilist {

/// Spread tail 1 - J_n(x), Eq. (46), for Pareto shape alpha under
/// truncation point t_n (only the alpha > 1 branch is t_n-free).
double SpreadTailRate(double alpha, double x, double t_n);

/// a_n of Eq. (47): the divergence rate of E[c_n(T1, theta_D) | D_n]
/// under root truncation for alpha <= 4/3.
double T1ScalingRate(double alpha, double n);

/// b_n of Eq. (48): the divergence rate of E[c_n(E1, theta_D) | D_n]
/// under root truncation for alpha <= 3/2.
double E1ScalingRate(double alpha, double n);

}  // namespace trilist
