#pragma once

#include <cstddef>

#include "src/core/xi_map.h"
#include "src/order/permutation.h"

/// \file kernel.h
/// Empirical admissibility kernels (Definition 5). For a finite
/// permutation theta_n, the neighborhood-averaged kernel
///
///   K_n(v; u) = (1 / (2k+1)) sum_{|i| <= k} 1[theta_n(ceil(un) + i) <= vn]
///
/// estimates where positions near u land. A sequence {theta_n} is
/// *admissible* when K_n converges weakly to a measure-preserving kernel
/// K(v; u) — the distribution of the limiting map xi(u). This header lets
/// you estimate K_n from any concrete permutation and compare it against
/// the named limits (XiMap::Cdf), which is how the tests validate
/// Propositions 6-7 and how users can check whether a custom ordering has
/// a well-defined asymptotic cost under Theorem 2.

namespace trilist {

/// Evaluates K_n(v; u) for one permutation.
/// \param theta the permutation (positions and labels 0-based).
/// \param v,u arguments in [0, 1].
/// \param k half-width of the position neighborhood; the definition wants
///        k -> inf with k/n -> 0 (default: n^(2/3) / 2, clipped to
///        valid range). Positions outside [0, n) are clipped.
double EmpiricalKernel(const Permutation& theta, double v, double u,
                       size_t k = 0);

/// Max-norm distance between the empirical kernel of `theta` and a
/// limiting map's kernel over a (grid x grid) lattice of (u, v) pairs.
/// Small values indicate the permutation is (numerically) admissible with
/// limit `xi`.
double KernelDistance(const Permutation& theta, const XiMap& xi,
                      int grid = 16, size_t k = 0);

}  // namespace trilist
