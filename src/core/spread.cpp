#include "src/core/spread.h"

#include <algorithm>

#include "src/util/status.h"

namespace trilist {

std::vector<double> SpreadTable(const DegreeDistribution& fn, int64_t t_n,
                                const WeightFn& w) {
  TRILIST_DCHECK(t_n >= 1);
  std::vector<double> table(static_cast<size_t>(t_n));
  double acc = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    acc += w(static_cast<double>(k)) * fn.Pmf(k);
    table[static_cast<size_t>(k - 1)] = acc;
  }
  const double total = acc;
  TRILIST_DCHECK(total > 0.0);
  for (double& v : table) v /= total;
  return table;
}

double SpreadAt(const DegreeDistribution& fn, int64_t t_n, int64_t x,
                const WeightFn& w) {
  double prefix = 0.0;
  double total = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const double mass = w(static_cast<double>(k)) * fn.Pmf(k);
    total += mass;
    if (k <= x) prefix += mass;
  }
  TRILIST_DCHECK(total > 0.0);
  return prefix / total;
}

std::vector<double> EmpiricalSpread(std::vector<int64_t> degrees,
                                    const WeightFn& w) {
  std::sort(degrees.begin(), degrees.end());
  std::vector<double> j(degrees.size());
  double acc = 0.0;
  for (size_t i = 0; i < degrees.size(); ++i) {
    acc += w(static_cast<double>(degrees[i]));
    j[i] = acc;
  }
  if (acc > 0.0) {
    for (double& v : j) v /= acc;
  }
  return j;
}

}  // namespace trilist
