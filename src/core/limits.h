#pragma once

#include "src/algo/cost.h"
#include "src/core/xi_map.h"

/// \file limits.h
/// Finiteness regimes of the asymptotic cost (Sections 4.2, 5.3, 6.3).
///
/// For Pareto F(x) with shape alpha, the tail of the spread obeys
/// 1 - J(x) ~ x^(1-alpha) (alpha > 1), so the integrand of
/// E[g(D) h(xi(J(D)))] behaves like x^(2 - alpha - 1) * (1 - J)^k, where k
/// is the vanishing order of u -> E[h(xi(u))] at u = 1. The limit is
/// finite iff alpha > (2 + k) / (1 + k):
///
///   k = 0 (factor does not vanish):      alpha > 2    (theta_A for T1,
///                                        uniform, CRR, RR for T1/E1)
///   k = 1 (factor ~ (1-J)):              alpha > 3/2  (T2; E1 under
///                                        theta_D; RR for T2)
///   k = 2 (factor ~ (1-J)^2):            alpha > 4/3  (T1 under theta_D)

namespace trilist {

/// Vanishing order k of u -> E[h_M(xi(u))] as u -> 1, estimated
/// numerically (exact for the polynomial h's in play: k in {0, 1, 2}).
int VanishingOrderAtOne(Method m, const XiMap& xi);

/// The critical Pareto shape alpha* = (2 + k)/(1 + k): the asymptotic
/// cost of (M, xi) is finite iff alpha > alpha*.
double FinitenessThresholdAlpha(Method m, const XiMap& xi);

/// True iff the asymptotic cost of (M, xi) on Pareto(alpha, beta) is
/// finite.
bool IsFiniteAsymptoticCost(Method m, const XiMap& xi, double alpha);

}  // namespace trilist
