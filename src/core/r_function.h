#pragma once

#include <cstdint>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/core/xi_map.h"
#include "src/degree/distribution.h"

/// \file r_function.h
/// Lemma 4's change of variables: with U = J(D) uniform on [0, 1] and
/// r(x) = g(J^{-1}(x)) / w(J^{-1}(x)), the limit cost becomes
///
///   c(M, xi) = E[w(D)] * E[r(U) h(xi(U))].                       (Eq. 37)
///
/// Monotonicity of r (equivalently of g/w) is what drives the optimality
/// results of Section 6 (Theorems 3-5). This header evaluates r and the
/// (37)-form of the cost numerically from a truncated distribution — an
/// independent route to the same number as Eq. (50), which the test suite
/// exploits as a cross-check of Lemma 4.

namespace trilist {

/// Evaluates r(x) = g(J^{-1}(x)) / w(J^{-1}(x)) at x in [0, 1), where
/// J^{-1} is the generalized inverse of the (discrete) spread CDF of `fn`
/// truncated at t_n.
/// \param fn truncated degree distribution.
/// \param t_n truncation point.
/// \param x argument in [0, 1).
/// \param w weight function.
double EvalR(const DegreeDistribution& fn, int64_t t_n, double x,
             const WeightFn& w = WeightFn::Identity());

/// Evaluates the cost in the Lemma-4 form (Eq. 37) with a midpoint rule
/// over `grid` u-points: E[w(D)] * (1/grid) sum r(u_k) h(xi(u_k)).
double CostViaRForm(const DegreeDistribution& fn, int64_t t_n, Method m,
                    const XiMap& xi, const WeightFn& w = WeightFn::Identity(),
                    int grid = 200000);

/// True iff g(x)/w(x) is non-decreasing over the support [1, t_n] — the
/// hypothesis of Corollary 1/2 (always true for w(x) = min(x, a)).
bool IsRIncreasing(int64_t t_n, const WeightFn& w = WeightFn::Identity());

}  // namespace trilist
