#pragma once

#include <cstdint>
#include <functional>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/core/xi_map.h"
#include "src/degree/distribution.h"

/// \file discrete_model.h
/// The exact discrete cost model, Eq. (50):
///
///   E[c_n(M, theta)] ~ sum_{i=1}^{t_n} g(i) h(xi(J_i)) p_i,
///   J_i = sum_{j<=i} w(j) p_j / sum_k w(k) p_k,
///
/// where p_i is the PMF of the truncated degree F_n. Computed in O(t_n)
/// time and O(1) space by streaming prefix masses; block masses use the
/// survival function so deep-tail precision survives.

namespace trilist {

/// Evaluates Eq. (50) exactly.
/// \param fn the truncated degree distribution F_n.
/// \param t_n truncation point (summation bound).
/// \param h the method's cost shape (see HOf / Table 4).
/// \param xi limiting map of the permutation.
/// \param w weight function of the out-degree model (Section 3.2).
double ExactDiscreteCost(const DegreeDistribution& fn, int64_t t_n,
                         const std::function<double(double)>& h,
                         const XiMap& xi,
                         const WeightFn& w = WeightFn::Identity());

/// Convenience overload taking a Method.
double ExactDiscreteCost(const DegreeDistribution& fn, int64_t t_n,
                         Method m, const XiMap& xi,
                         const WeightFn& w = WeightFn::Identity());

}  // namespace trilist
