#pragma once

#include <functional>

#include "src/algo/cost.h"

/// \file h_function.h
/// The cost-shape functions h(x) of Proposition 4 / Table 4, extended from
/// the four fundamental methods to all 18 via the equivalence classes:
///
///   T1-class: h(x) = x^2 / 2
///   T2-class: h(x) = x (1 - x)
///   T3-class: h(x) = (1 - x)^2 / 2
///   E1/E2:    h(x) = x (2 - x) / 2          (= T1 + T2)
///   E3/E5:    h(x) = (1 - x^2) / 2          (= T3 + T2)
///   E4/E6:    h(x) = (x^2 + (1 - x)^2) / 2  (= T1 + T3)
///   L's:      the h of their lookup class (Table 2).
///
/// Here x = q_i(theta) is the fraction of a node's neighbors with smaller
/// label, so the expected per-node cost is g(d) h(q) with g(x) = x^2 - x.

namespace trilist {

/// g(x) = x^2 - x of Proposition 4.
inline double GFunction(double x) { return x * x - x; }

/// h(x) for a primitive cost class.
double EvalClassH(CostClass c, double x);

/// h(x) for a method (local + remote classes for SEI).
double EvalH(Method m, double x);

/// EvalH bound to a method, as a reusable callable.
std::function<double(double)> HOf(Method m);

/// Closed-form E[h(U)], U ~ Uniform[0,1]: 1/6 for vertex/lookup classes,
/// 1/3 for scanning edge iterators (the factor behind Eq. (31)).
double MeanHUniform(Method m);

}  // namespace trilist
