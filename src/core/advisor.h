#pragma once

#include <string>

#include "src/algo/cost.h"
#include "src/core/xi_map.h"
#include "src/order/named_orders.h"

/// \file advisor.h
/// The optimality and comparison results of Section 6 packaged as a
/// decision API: which named permutation minimizes each method's expected
/// cost (Corollaries 1-2), and which method to pick for a Pareto graph
/// family (Theorems 4-5 plus the finiteness regimes of Section 6.3).

namespace trilist {

/// The cost-minimizing named permutation for a method, under increasing
/// r(x) = g/w (the canonical w(x) = min(x, a) case):
///   theta_D for T1/T4, E1/E2, L2/L6;  theta_A for T3/T6, E3/E5, L4/L5;
///   theta_RR for T2/T5, L1/L3;        theta_CRR for E4/E6.
PermutationKind OptimalPermutationKindFor(Method m);

/// The cost-maximizing named permutation (Corollary 3: the complement of
/// the optimum).
PermutationKind WorstPermutationKindFor(Method m);

/// Decision outcome for a graph family.
struct MethodAdvice {
  Method method;            ///< recommended algorithm
  PermutationKind order;    ///< recommended permutation
  bool t1_cost_finite;      ///< c(T1, xi_D) < inf
  bool e1_cost_finite;      ///< c(E1, xi_D) < inf
  std::string rationale;    ///< one-paragraph human-readable explanation
};

/// Recommends a method + permutation for Pareto-degree graphs.
/// \param alpha Pareto shape of the degree distribution.
/// \param sei_speedup per-operation speed advantage of scanning
///        intersection over hash probes (the paper measures ~95x on SIMD
///        hardware, Table 3). The advisor picks E1 when both costs are
///        finite and cost(E1)/cost(T1) < sei_speedup.
/// \param beta Pareto scale used to evaluate the cost ratio (default:
///        the paper's 30(alpha-1) convention).
MethodAdvice AdviseForPareto(double alpha, double sei_speedup = 95.0,
                             double beta = -1.0);

}  // namespace trilist
