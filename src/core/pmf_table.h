#pragma once

#include <cstdint>
#include <vector>

#include "src/degree/distribution.h"
#include "src/core/spread.h"

/// \file pmf_table.h
/// Dense PMF materialization and weighted moments of (truncated) degree
/// distributions — the p_i of Eq. (50) and the aggregates that appear all
/// over Sections 4-7 (E[D_n], E[w(D_n)], E[D_n^2 - D_n], ...).

namespace trilist {

/// table[k-1] = P(D = k) for k = 1..t_n.
std::vector<double> PmfTable(const DegreeDistribution& fn, int64_t t_n);

/// E[D_n] over [1, t_n] by direct summation.
double MeanOfTruncated(const DegreeDistribution& fn, int64_t t_n);

/// E[w(D_n)].
double MeanWeight(const DegreeDistribution& fn, int64_t t_n,
                  const WeightFn& w);

/// E[D_n^2 - D_n] = E[g(D_n)] — the no-orientation cost driver.
double MeanG(const DegreeDistribution& fn, int64_t t_n);

}  // namespace trilist
