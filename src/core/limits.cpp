#include "src/core/limits.h"

#include <cmath>

#include "src/core/h_function.h"

namespace trilist {

int VanishingOrderAtOne(Method m, const XiMap& xi) {
  const auto h = HOf(m);
  const auto factor = [&](double u) { return xi.ExpectH(h, u); };
  // The factor is a polynomial in (1 - u) of degree <= 2 with
  // non-negative coefficients in all cases in play; read off the order
  // from two geometric probes.
  const double f0 = factor(1.0);
  if (f0 > 1e-12) return 0;
  const double d1 = 1e-4;
  const double d2 = 1e-6;
  const double f1 = factor(1.0 - d1);
  const double f2 = factor(1.0 - d2);
  if (f1 <= 0.0 || f2 <= 0.0) return 3;  // vanishes identically fast
  const double k = std::log(f1 / f2) / std::log(d1 / d2);
  return static_cast<int>(std::lround(k));
}

double FinitenessThresholdAlpha(Method m, const XiMap& xi) {
  const int k = VanishingOrderAtOne(m, xi);
  return (2.0 + static_cast<double>(k)) / (1.0 + static_cast<double>(k));
}

bool IsFiniteAsymptoticCost(Method m, const XiMap& xi, double alpha) {
  return alpha > FinitenessThresholdAlpha(m, xi);
}

}  // namespace trilist
