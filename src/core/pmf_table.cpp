#include "src/core/pmf_table.h"

#include "src/util/status.h"

namespace trilist {

std::vector<double> PmfTable(const DegreeDistribution& fn, int64_t t_n) {
  TRILIST_DCHECK(t_n >= 1);
  std::vector<double> table(static_cast<size_t>(t_n));
  for (int64_t k = 1; k <= t_n; ++k) {
    table[static_cast<size_t>(k - 1)] = fn.Pmf(k);
  }
  return table;
}

double MeanOfTruncated(const DegreeDistribution& fn, int64_t t_n) {
  double mean = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    mean += static_cast<double>(k) * fn.Pmf(k);
  }
  return mean;
}

double MeanWeight(const DegreeDistribution& fn, int64_t t_n,
                  const WeightFn& w) {
  double mean = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    mean += w(static_cast<double>(k)) * fn.Pmf(k);
  }
  return mean;
}

double MeanG(const DegreeDistribution& fn, int64_t t_n) {
  double mean = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const auto x = static_cast<double>(k);
    mean += (x * x - x) * fn.Pmf(k);
  }
  return mean;
}

}  // namespace trilist
