#pragma once

#include <cstdint>
#include <vector>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/order/permutation.h"

/// \file out_degree_model.h
/// The conditional out-degree model of Section 3.2: given a realized
/// degree sequence D_n and a permutation theta, the expected out-degree of
/// the node holding label i is
///
///   E[X_i(theta) | D_n] ~ d_i(theta) * sum_{j<i} w(d_j(theta))
///                         / (sum_k w(d_k) - w(d_i(theta)))      (Eq. 12)
///
/// and q_i(theta) = E[X_i | D_n] / d_i(theta) (Eq. 13) is the fraction of
/// node i's neighbors holding smaller labels. Proposition 4 then collapses
/// the expected cost of every method into
///
///   E[c_n(M, theta) | D_n] ~ (1/n) sum_i g(d_i(theta)) h(q_i(theta)).
///
/// These are the *sequence-conditional* models: one level below the
/// distribution-level Eq. (50) (which replaces the realized sequence by
/// its generating distribution) and one level above a measured graph.

namespace trilist {

/// Degrees arranged by label: entry i is d_i(theta), i.e. the degree of
/// the node that received label i. Input `ascending_degrees` is the
/// paper's A_n vector (sort the sampled sequence ascending first).
std::vector<int64_t> DegreesByLabel(
    const std::vector<int64_t>& ascending_degrees, const Permutation& theta);

/// Eq. (12): expected out-degrees E[X_i | D_n] indexed by label.
/// \param degrees_by_label output of DegreesByLabel.
/// \param w weight function of the neighbor-selection model.
std::vector<double> ExpectedOutDegrees(
    const std::vector<int64_t>& degrees_by_label,
    const WeightFn& w = WeightFn::Identity());

/// Eq. (13): q_i(theta) = E[X_i | D_n] / d_i(theta), indexed by label.
/// Labels with degree zero get q = 0.
std::vector<double> ExpectedSmallerNeighborFractions(
    const std::vector<int64_t>& degrees_by_label,
    const WeightFn& w = WeightFn::Identity());

/// Proposition 4: the sequence-conditional per-node cost
/// (1/n) sum_i g(d_i(theta)) h_M(q_i(theta)).
double SequenceConditionalCost(
    const std::vector<int64_t>& ascending_degrees, const Permutation& theta,
    Method m, const WeightFn& w = WeightFn::Identity());

}  // namespace trilist
