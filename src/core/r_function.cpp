#include "src/core/r_function.h"

#include <algorithm>
#include <vector>

#include "src/core/h_function.h"
#include "src/util/status.h"

namespace trilist {

namespace {

/// Dense spread table plus inverse lookup (small t_n only; the r-form is
/// a validation tool, not the production model).
struct SpreadInverse {
  std::vector<double> j;  // J(k), k = 1..t_n

  explicit SpreadInverse(const DegreeDistribution& fn, int64_t t_n,
                         const WeightFn& w)
      : j(SpreadTable(fn, t_n, w)) {}

  /// Smallest k with J(k) >= x.
  int64_t Inverse(double x) const {
    const auto it = std::lower_bound(j.begin(), j.end(), x);
    const auto idx = static_cast<int64_t>(it - j.begin());
    return std::min<int64_t>(idx + 1, static_cast<int64_t>(j.size()));
  }
};

}  // namespace

double EvalR(const DegreeDistribution& fn, int64_t t_n, double x,
             const WeightFn& w) {
  TRILIST_DCHECK(x >= 0.0 && x < 1.0);
  const SpreadInverse inv(fn, t_n, w);
  const auto k = static_cast<double>(inv.Inverse(x));
  return GFunction(k) / w(k);
}

double CostViaRForm(const DegreeDistribution& fn, int64_t t_n, Method m,
                    const XiMap& xi, const WeightFn& w, int grid) {
  const SpreadInverse inv(fn, t_n, w);
  double mean_weight = 0.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    mean_weight += w(static_cast<double>(k)) * fn.Pmf(k);
  }
  const auto h = HOf(m);
  double acc = 0.0;
  for (int i = 0; i < grid; ++i) {
    const double u = (i + 0.5) / grid;
    const auto k = static_cast<double>(inv.Inverse(u));
    acc += GFunction(k) / w(k) * xi.ExpectH(h, u);
  }
  return mean_weight * acc / grid;
}

bool IsRIncreasing(int64_t t_n, const WeightFn& w) {
  double prev = -1.0;
  for (int64_t k = 1; k <= t_n; ++k) {
    const auto x = static_cast<double>(k);
    const double r = GFunction(x) / w(x);
    if (r < prev - 1e-12) return false;
    prev = r;
  }
  return true;
}

}  // namespace trilist
