#include "src/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace trilist {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kNotGraphic: return "NotGraphic";
    case StatusCode::kGenerationStuck: return "GenerationStuck";
    case StatusCode::kNotImplemented: return "NotImplemented";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DCheckFail(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "DCHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}
}  // namespace internal

}  // namespace trilist
