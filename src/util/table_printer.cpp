#include "src/util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/status.h"

namespace trilist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TRILIST_DCHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-");
    out << std::string(width[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

namespace {
std::string AddThousandsSeparators(const std::string& digits) {
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    out.push_back(digits[i]);
    const size_t remaining = len - 1 - i;
    if (remaining > 0 && remaining % 3 == 0) out.push_back(',');
  }
  return out;
}
}  // namespace

std::string FormatNumber(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  const size_t dot = s.find('.');
  std::string integral = dot == std::string::npos ? s : s.substr(0, dot);
  std::string fractional = dot == std::string::npos ? "" : s.substr(dot);
  bool negative = !integral.empty() && integral[0] == '-';
  if (negative) integral = integral.substr(1);
  // Built up with append (not operator+) to sidestep a GCC 12 -Wrestrict
  // false positive on chained string concatenation at -O3.
  std::string out;
  if (negative) out.push_back('-');
  out.append(AddThousandsSeparators(integral));
  out.append(fractional);
  return out;
}

std::string FormatCount(uint64_t value) {
  return AddThousandsSeparators(std::to_string(value));
}

std::string FormatOps(double value) {
  if (std::isinf(value)) return "inf";
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {1e12, "T"}, {1e9, "B"}, {1e6, "M"}, {1e3, "K"}};
  for (const Unit& u : kUnits) {
    if (value >= u.scale) {
      const double scaled = value / u.scale;
      char buf[32];
      if (scaled >= 100) {
        std::snprintf(buf, sizeof(buf), "%.0f%s", scaled, u.suffix);
      } else if (scaled >= 10) {
        std::snprintf(buf, sizeof(buf), "%.1f%s", scaled, u.suffix);
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s", scaled, u.suffix);
      }
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", value);
  return buf;
}

std::string FormatBytes(double bytes) {
  struct Unit {
    double scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {1e12, "TB"}, {1e9, "GB"}, {1e6, "MB"}, {1e3, "KB"}};
  for (const Unit& u : kUnits) {
    if (bytes >= u.scale) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f%s", bytes / u.scale, u.suffix);
      return buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  return buf;
}

std::string FormatPercent(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, value);
  return buf;
}

}  // namespace trilist
