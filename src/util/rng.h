#pragma once

#include <cstdint>
#include <limits>

/// \file rng.h
/// Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of the library (degree sampling, graph
/// construction, random permutations) draw from `Rng`, a xoshiro256**
/// generator seeded through SplitMix64. Streams are reproducible across
/// platforms, which the simulation harness relies on: every experiment
/// prints its seed and can be replayed exactly.

namespace trilist {

/// SplitMix64 step; used for seeding and as a cheap hash.
/// \param state in/out 64-bit state, advanced by the golden-ratio increment.
/// \return next 64-bit output.
uint64_t SplitMix64(uint64_t* state);

/// Stateless 64-bit mix of a value (SplitMix64 finalizer). Suitable as a
/// hash for the "uniform/hashed" node order of Section 2.1.
uint64_t Mix64(uint64_t x);

/// \brief xoshiro256** pseudo-random generator.
///
/// Satisfies the essentials of the C++ UniformRandomBitGenerator concept so
/// it can also feed <random> facilities when convenient, but the class
/// provides its own bias-free bounded integers and doubles, which are what
/// the library uses internally.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 256-bit words via SplitMix64 from a single seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Minimum value produced (URBG concept).
  static constexpr result_type min() { return 0; }
  /// Maximum value produced (URBG concept).
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit output.
  uint64_t Next();
  /// URBG call operator.
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method, so results are exactly uniform. Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Forks an independent child stream; deterministic given this stream's
  /// state. Useful for giving each repetition of an experiment its own
  /// stream without sharing state across threads.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace trilist
