#include "src/util/timer.h"

// Header-only; this translation unit exists so the build exposes the header
// through the library target and catches header hygiene issues early.
