#include "src/util/fenwick_tree.h"

#include <bit>

#include "src/util/status.h"

namespace trilist {

FenwickTree::FenwickTree(size_t n)
    : n_(n), tree_(n + 1, 0), weight_(n, 0) {}

FenwickTree::FenwickTree(const std::vector<int64_t>& weights)
    : n_(weights.size()), tree_(weights.size() + 1, 0), weight_(weights) {
  // O(n) construction: propagate each slot into its parent once.
  for (size_t i = 1; i <= n_; ++i) {
    tree_[i] += weights[i - 1];
    const size_t parent = i + (i & (~i + 1));
    if (parent <= n_) tree_[parent] += tree_[i];
    total_ += weights[i - 1];
  }
}

void FenwickTree::Add(size_t i, int64_t delta) {
  TRILIST_DCHECK(i < n_);
  weight_[i] += delta;
  total_ += delta;
  for (size_t j = i + 1; j <= n_; j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

void FenwickTree::Set(size_t i, int64_t value) {
  Add(i, value - weight_[i]);
}

int64_t FenwickTree::Get(size_t i) const {
  TRILIST_DCHECK(i < n_);
  return weight_[i];
}

int64_t FenwickTree::PrefixSum(size_t i) const {
  TRILIST_DCHECK(i < n_);
  int64_t sum = 0;
  for (size_t j = i + 1; j > 0; j -= j & (~j + 1)) {
    sum += tree_[j];
  }
  return sum;
}

size_t FenwickTree::SampleIndex(int64_t target) const {
  TRILIST_DCHECK(target >= 0 && target < total_);
  size_t pos = 0;
  size_t mask = n_ == 0 ? 0 : std::bit_floor(n_);
  int64_t remaining = target;
  while (mask != 0) {
    const size_t next = pos + mask;
    if (next <= n_ && tree_[next] <= remaining) {
      remaining -= tree_[next];
      pos = next;
    }
    mask >>= 1;
  }
  return pos;  // pos is the count of slots fully skipped -> 0-based index.
}

}  // namespace trilist
