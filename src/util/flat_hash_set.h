#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

/// \file flat_hash_set.h
/// Open-addressing hash set of 64-bit keys, tuned for the edge-existence
/// checks performed by vertex iterators and lookup edge iterators.
///
/// Design notes (why not std::unordered_set): the hot loop of a vertex
/// iterator performs one membership probe per candidate tuple, i.e. up to
/// billions of probes per run. A power-of-two open-addressing table with
/// linear probing keeps each probe to one cache line in the common case and
/// avoids per-node allocation entirely. Keys are pre-mixed with the
/// SplitMix64 finalizer, so adversarial clustering of packed (u,v) edge keys
/// is not a concern.

namespace trilist {

/// \brief Open-addressing set of uint64 keys with linear probing.
///
/// One key value is reserved internally as the empty sentinel
/// (0xFFFF'FFFF'FFFF'FFFF); inserting it is a checked error. Edge keys
/// packed as (u << 32) | v never collide with the sentinel because node IDs
/// are < 2^32 - 1.
class FlatHashSet64 {
 public:
  static constexpr uint64_t kEmpty = ~0ull;

  /// Creates a set sized for `expected` keys at <= 50% load.
  explicit FlatHashSet64(size_t expected = 0) { Reserve(expected); }

  /// Ensures capacity for `expected` keys without rehashing later.
  void Reserve(size_t expected) {
    size_t want = 16;
    while (want < expected * 2) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

  /// Number of keys stored.
  size_t size() const { return size_; }

  /// True if no keys are stored.
  bool empty() const { return size_ == 0; }

  /// Inserts `key`; returns true if newly inserted.
  bool Insert(uint64_t key) {
    TRILIST_DCHECK(key != kEmpty);
    if ((size_ + 1) * 2 > slots_.size()) Rehash(slots_.size() * 2);
    size_t i = Slot(key);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// Membership probe.
  bool Contains(uint64_t key) const {
    size_t i = Slot(key);
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask_;
    }
    return false;
  }

  /// Removes `key` if present using backward-shift deletion (keeps probe
  /// chains intact without tombstones). Returns true if the key was found.
  bool Erase(uint64_t key) {
    size_t i = Slot(key);
    while (slots_[i] != key) {
      if (slots_[i] == kEmpty) return false;
      i = (i + 1) & mask_;
    }
    // Backward shift: pull subsequent chain members into the hole while
    // their home slot lies outside the (hole, current] window.
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    while (slots_[j] != kEmpty) {
      const size_t home = Slot(slots_[j]);
      // Can slots_[j] legally move into `hole`? Yes iff hole is not
      // "between" home and j in cyclic probe order.
      const bool between = hole <= j ? (hole < home && home <= j)
                                     : (hole < home || home <= j);
      if (!between) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole] = kEmpty;
    --size_;
    return true;
  }

  /// Removes all keys but keeps the capacity.
  void Clear() {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

 private:
  size_t Slot(uint64_t key) const { return Mix64(key) & mask_; }

  void Rehash(size_t new_cap) {
    if (new_cap < 16) new_cap = 16;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, kEmpty);
    mask_ = new_cap - 1;
    size_ = 0;
    for (uint64_t key : old) {
      if (key == kEmpty) continue;
      size_t i = Slot(key);
      while (slots_[i] != kEmpty) i = (i + 1) & mask_;
      slots_[i] = key;
      ++size_;
    }
  }

  std::vector<uint64_t> slots_ = std::vector<uint64_t>(16, kEmpty);
  size_t mask_ = 15;
  size_t size_ = 0;
};

}  // namespace trilist
