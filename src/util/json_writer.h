#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file json_writer.h
/// Minimal streaming JSON emitter for machine-readable reports (the
/// RunReport exporter and the BENCH_*.json files). Produces
/// deterministically formatted, pretty-printed output: two-space
/// indentation, keys in insertion order, no trailing whitespace — so JSON
/// artifacts can be diffed and golden-tested byte for byte.
///
/// Usage:
/// \code
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("bench"); w.String("io_formats");
///   w.Key("results"); w.BeginArray();
///   ... w.EndArray();
///   w.EndObject();
///   std::string out = std::move(w).Finish();
/// \endcode
///
/// The writer validates nesting with assertions (a Key must be pending
/// before any value inside an object); it does not attempt full
/// serialization of arbitrary structures — callers drive the structure.

namespace trilist {

/// \brief Streaming pretty-printed JSON builder.
class JsonWriter {
 public:
  /// Opens an object scope ("{").
  void BeginObject();
  /// Closes the innermost object scope.
  void EndObject();
  /// Opens an array scope ("[").
  void BeginArray();
  /// Closes the innermost array scope.
  void EndArray();

  /// Emits the key of the next object member.
  void Key(std::string_view name);

  /// Emits a JSON string (escaped).
  void String(std::string_view value);
  /// Emits an integer value.
  void Int(int64_t value);
  /// Emits an unsigned integer value.
  void Uint(uint64_t value);
  /// Emits a double with up to `digits` digits after the decimal point
  /// (fixed notation; non-finite values render as 0 per JSON's limits).
  void Double(double value, int digits = 6);
  /// Emits true/false.
  void Bool(bool value);

  /// Shorthand for Key + value.
  void Field(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void Field(std::string_view key, const char* value) {
    Key(key);
    String(value);
  }
  void Field(std::string_view key, int64_t value) {
    Key(key);
    Int(value);
  }
  void Field(std::string_view key, uint64_t value) {
    Key(key);
    Uint(value);
  }
  void Field(std::string_view key, int value) {
    Key(key);
    Int(value);
  }
  void Field(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }
  void FieldDouble(std::string_view key, double value, int digits = 6) {
    Key(key);
    Double(value, digits);
  }

  /// Returns the completed document (all scopes must be closed) with a
  /// trailing newline.
  std::string Finish() &&;

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void Indent();
  void AppendQuoted(std::string_view value);

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> has_members_;  // parallel to scopes_
  bool key_pending_ = false;
};

}  // namespace trilist
