#include "src/util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace trilist {

StageSample* StageClock::Find(std::string_view name) {
  for (StageSample& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

void StageClock::Add(std::string_view name, double seconds) {
  if (StageSample* s = Find(name)) {
    s->wall_s += seconds;
    ++s->calls;
    return;
  }
  stages_.push_back({std::string(name), seconds, 1});
}

double StageClock::WallOf(std::string_view name) const {
  for (const StageSample& s : stages_) {
    if (s.name == name) return s.wall_s;
  }
  return 0;
}

double StageClock::Total() const {
  double total = 0;
  for (const StageSample& s : stages_) total += s.wall_s;
  return total;
}

void StageClock::Merge(const StageClock& other) {
  for (const StageSample& s : other.stages_) {
    if (StageSample* mine = Find(s.name)) {
      mine->wall_s += s.wall_s;
      mine->calls += s.calls;
    } else {
      stages_.push_back(s);
    }
  }
}

void StageClock::MergeMin(const StageClock& other) {
  for (const StageSample& s : other.stages_) {
    if (StageSample* mine = Find(s.name)) {
      mine->wall_s = std::min(mine->wall_s, s.wall_s);
    } else {
      stages_.push_back(s);
    }
  }
}

size_t PeakRssBytes() {
#if defined(__linux__)
  // VmHWM from /proc/self/status is the high-water mark of the resident
  // set; ru_maxrss would also work but its unit differs across platforms.
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kib);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#elif defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return 0;
#endif
}

double ProcessCpuSeconds() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const auto to_seconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_seconds(usage.ru_utime) + to_seconds(usage.ru_stime);
#else
  return 0;
#endif
}

}  // namespace trilist
