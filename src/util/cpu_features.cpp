#include "src/util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace trilist {
namespace {

SimdLevel QueryCpu() {
#if defined(__x86_64__) || defined(_M_X64)
  // __builtin_cpu_supports reads CPUID once at startup via libgcc's
  // cpu-model resolver; these calls are just flag tests.
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel ParseLevel(const char* name, SimdLevel fallback) {
  if (name == nullptr) return fallback;
  if (std::strcmp(name, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(name, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(name, "avx512") == 0) return SimdLevel::kAvx512;
  return fallback;
}

// The active level is mutable only through SetActiveSimdLevelForTest;
// kernel dispatch reads it as a plain load.
SimdLevel g_active = SimdLevel::kScalar;
bool g_active_resolved = false;

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = QueryCpu();
  return detected;
}

SimdLevel ResolveSimdLevel(SimdLevel detected, const char* force_scalar,
                           const char* simd) {
  if (force_scalar != nullptr && force_scalar[0] != '\0' &&
      std::strcmp(force_scalar, "0") != 0) {
    return SimdLevel::kScalar;
  }
  SimdLevel requested = ParseLevel(simd, detected);
  return requested < detected ? requested : detected;
}

SimdLevel ActiveSimdLevel() {
  if (!g_active_resolved) {
    g_active =
        ResolveSimdLevel(DetectedSimdLevel(),
                         std::getenv("TRILIST_FORCE_SCALAR"),
                         std::getenv("TRILIST_SIMD"));
    g_active_resolved = true;
  }
  return g_active;
}

void SetActiveSimdLevelForTest(SimdLevel level) {
  SimdLevel detected = DetectedSimdLevel();
  g_active = level < detected ? level : detected;
  g_active_resolved = true;
}

}  // namespace trilist
