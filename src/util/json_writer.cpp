#include "src/util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "src/util/status.h"

namespace trilist {

void JsonWriter::Indent() {
  out_.append(2 * scopes_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (scopes_.empty()) return;  // top-level value
  if (scopes_.back() == Scope::kObject) {
    // Inside an object a Key() must have been emitted; it already wrote
    // the separator and indentation.
    TRILIST_DCHECK(key_pending_);
    key_pending_ = false;
    return;
  }
  if (has_members_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_members_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  has_members_.push_back(false);
}

void JsonWriter::EndObject() {
  TRILIST_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  const bool had_members = has_members_.back();
  scopes_.pop_back();
  has_members_.pop_back();
  if (had_members) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  has_members_.push_back(false);
}

void JsonWriter::EndArray() {
  TRILIST_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kArray);
  const bool had_members = has_members_.back();
  scopes_.pop_back();
  has_members_.pop_back();
  if (had_members) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
}

void JsonWriter::Key(std::string_view name) {
  TRILIST_DCHECK(!scopes_.empty() && scopes_.back() == Scope::kObject);
  TRILIST_DCHECK(!key_pending_);
  if (has_members_.back()) out_ += ',';
  out_ += '\n';
  Indent();
  has_members_.back() = true;
  AppendQuoted(name);
  out_ += ": ";
  key_pending_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendQuoted(value);
}

void JsonWriter::AppendQuoted(std::string_view value) {
  out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value, int digits) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += '0';
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

std::string JsonWriter::Finish() && {
  TRILIST_DCHECK(scopes_.empty());
  out_ += '\n';
  return std::move(out_);
}

}  // namespace trilist
