#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table_printer.h
/// Aligned plain-text tables for the benchmark harness. Each bench binary
/// reproduces one table from the paper and prints it in the same row/column
/// layout, so output can be compared to the publication side by side.

namespace trilist {

/// \brief Builds and renders an aligned text table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the number of cells must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline to `out`.
  void Print(std::ostream& out) const;

  /// Renders to a string (convenience for tests).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, using
/// thousands separators for large magnitudes (e.g. "1,354.5") to match the
/// paper's table style.
std::string FormatNumber(double value, int digits = 1);

/// Formats a count with thousands separators (e.g. "1,234,567").
std::string FormatCount(uint64_t value);

/// Formats a value in the paper's compact operations style: "150B", "123T",
/// i.e. billions/trillions with 2-3 significant digits (used by Table 12).
std::string FormatOps(double value);

/// Formats a percentage with sign, e.g. "-2.2%" (used by error columns).
std::string FormatPercent(double value, int digits = 1);

/// Formats a byte count with binary-ish units: "4.76MB", "1.22GB".
std::string FormatBytes(double bytes);

}  // namespace trilist
