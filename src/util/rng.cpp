#include "src/util/rng.h"

#include "src/util/status.h"

namespace trilist {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t state = x;
  return SplitMix64(&state);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TRILIST_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  TRILIST_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  return NextDouble() < p;
}

Rng Rng::Fork() {
  return Rng(Next());
}

}  // namespace trilist
