#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

/// \file status.h
/// Lightweight Status / Result error propagation, in the style used by
/// database engines (Arrow, RocksDB). Functions that can fail in expected,
/// recoverable ways return `Status` or `Result<T>`; programming errors use
/// assertions (`TRILIST_DCHECK`).

namespace trilist {

/// Error category of a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotGraphic,     ///< Degree sequence is not realizable as a simple graph.
  kGenerationStuck,///< Random-graph construction could not complete.
  kNotImplemented,
  kInternal,
};

/// \brief Outcome of an operation that may fail without a payload.
///
/// A `Status` is cheap to copy in the OK case (one word); error states
/// carry a heap-allocated message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns an OutOfRange error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns a NotGraphic error (degree sequence not realizable).
  static Status NotGraphic(std::string msg) {
    return Status(StatusCode::kNotGraphic, std::move(msg));
  }
  /// Returns a GenerationStuck error (graph construction failed).
  static Status GenerationStuck(std::string msg) {
    return Status(StatusCode::kGenerationStuck, std::move(msg));
  }
  /// Returns a NotImplemented error.
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Returns an Internal error.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// Error category.
  StatusCode code() const { return code_; }
  /// Human-readable error message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<Graph> r = GenerateGraph(...);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, enables `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status (implicit, enables `return status;`).
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(repr_); }
  /// The error status (OK() if a value is held).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }
  /// Borrow the held value. Precondition: ok().
  const T& ValueOrDie() const& { return std::get<T>(repr_); }
  /// Mutable access to the held value. Precondition: ok().
  T& ValueOrDie() & { return std::get<T>(repr_); }
  /// Move the held value out. Precondition: ok().
  T ValueOrDie() && { return std::move(std::get<T>(repr_)); }
  /// Alias of ValueOrDie for range-style access.
  const T& operator*() const& { return ValueOrDie(); }
  /// Member access to the held value. Precondition: ok().
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates an error status from an expression returning Status.
#define TRILIST_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::trilist::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Aborts with a message if `cond` is false (debug builds only).
#ifdef NDEBUG
#define TRILIST_DCHECK(cond) ((void)0)
#else
#define TRILIST_DCHECK(cond)                                   \
  do {                                                         \
    if (!(cond)) ::trilist::internal::DCheckFail(#cond, __FILE__, __LINE__); \
  } while (false)
#endif

namespace internal {
/// Prints the failed condition and aborts. Out-of-line to keep the macro slim.
[[noreturn]] void DCheckFail(const char* cond, const char* file, int line);
}  // namespace internal

}  // namespace trilist
