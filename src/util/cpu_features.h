#pragma once

/// \file cpu_features.h
/// One-time runtime detection of the SIMD instruction sets the
/// intersection kernels (src/algo/simd/) can dispatch to. Detection runs
/// CPUID once per process; the resolved level is cached so the hot paths
/// read a plain enum.
///
/// Two environment overrides narrow (never widen) the dispatch:
///   TRILIST_FORCE_SCALAR=1   pin the portable scalar kernels.
///   TRILIST_SIMD=scalar|avx2|avx512
///                            cap the level (clamped to what the CPU has).
/// Overrides exist so the differential tests and the CI fallback leg can
/// exercise every dispatch seam on any machine.

namespace trilist {

/// Vector ISA tiers the intersection kernels are specialized for, in
/// strictly increasing capability order (comparisons rely on the order).
enum class SimdLevel {
  kScalar = 0,  ///< portable C++ loops; always available.
  kAvx2 = 1,    ///< 8 x 32-bit lanes (AVX2).
  kAvx512 = 2,  ///< 16 x 32-bit lanes (AVX-512F).
};

/// Name of a level ("scalar", "avx2", "avx512").
const char* SimdLevelName(SimdLevel level);

/// What the hardware supports, from CPUID; cached after the first call.
/// Non-x86 builds always report kScalar.
SimdLevel DetectedSimdLevel();

/// The level the kernels actually dispatch to: DetectedSimdLevel()
/// narrowed by the TRILIST_FORCE_SCALAR / TRILIST_SIMD environment
/// overrides. Cached after the first call (the envs are read once).
SimdLevel ActiveSimdLevel();

/// Pure resolution rule behind ActiveSimdLevel, exposed for unit tests:
/// `force_scalar` and `simd` are the raw env values (null = unset).
/// Unknown TRILIST_SIMD strings are ignored; requests above `detected`
/// clamp down to it.
SimdLevel ResolveSimdLevel(SimdLevel detected, const char* force_scalar,
                           const char* simd);

/// Test-only override of ActiveSimdLevel (clamped to the detected level);
/// pass the detected level to restore normal resolution. Not thread-safe
/// against concurrent kernel dispatch — call from single-threaded test
/// setup only.
void SetActiveSimdLevelForTest(SimdLevel level);

}  // namespace trilist
