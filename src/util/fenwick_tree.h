#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file fenwick_tree.h
/// Binary indexed tree over non-negative weights with prefix sums and
/// weighted sampling in O(log n).
///
/// This is the "interval tree that records the residual probability mass of
/// degree on both sides of each node" used by the paper's random-graph
/// generator (Section 7.2): neighbors are drawn in proportion to their
/// residual degree, residuals are decremented as stubs are consumed, and
/// candidates can be temporarily zeroed out to exclude already-attached
/// neighbors.

namespace trilist {

/// \brief Fenwick (binary indexed) tree over `n` int64 weights.
class FenwickTree {
 public:
  /// Creates a tree of `n` zero weights.
  explicit FenwickTree(size_t n = 0);

  /// Creates a tree initialized to `weights` in O(n).
  explicit FenwickTree(const std::vector<int64_t>& weights);

  /// Number of slots.
  size_t size() const { return n_; }

  /// Adds `delta` to slot `i` (may be negative; resulting weight must stay
  /// non-negative for sampling to be meaningful).
  void Add(size_t i, int64_t delta);

  /// Sets slot `i` to `value`.
  void Set(size_t i, int64_t value);

  /// Current weight of slot `i`.
  int64_t Get(size_t i) const;

  /// Sum of weights in [0, i]; PrefixSum(size()-1) is the total.
  int64_t PrefixSum(size_t i) const;

  /// Sum of all weights.
  int64_t Total() const { return total_; }

  /// Returns the smallest index `i` such that PrefixSum(i) > target.
  /// Precondition: 0 <= target < Total(). This implements weighted
  /// sampling: draw target uniform in [0, Total()) and call SampleIndex.
  size_t SampleIndex(int64_t target) const;

 private:
  size_t n_ = 0;
  int64_t total_ = 0;
  std::vector<int64_t> tree_;  // 1-based internal layout
  std::vector<int64_t> weight_;
};

}  // namespace trilist
