#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

/// \file parallel_for.h
/// Minimal reusable thread pool with a chunked parallel-for primitive.
///
/// The pool is the substrate of the parallel listing engine (see
/// src/algo/parallel_engine.h): work is expressed as `num_chunks`
/// independent chunk indices, claimed by workers through a single atomic
/// counter, so uneven chunks (hub-heavy graphs) load-balance without any
/// per-chunk scheduling state. No external dependencies — std::thread,
/// std::atomic and condition variables only.
///
/// Determinism contract: ParallelFor guarantees each chunk index in
/// [0, num_chunks) is executed exactly once. It makes no ordering
/// guarantee between chunks; callers that need a deterministic result
/// (the listing engine, the parallel orienter) must write chunk output
/// into chunk-indexed slots and merge in index order afterwards.

namespace trilist {

/// Number of hardware threads, at least 1 (0 is never returned even when
/// std::thread::hardware_concurrency cannot detect the machine).
int HardwareThreads();

/// \brief Persistent worker pool executing chunked parallel loops.
///
/// Construction spawns `num_threads - 1` workers; the thread calling
/// ParallelFor always participates as the remaining worker, so a pool of
/// one runs everything inline with zero synchronization.
class ThreadPool {
 public:
  /// \param num_threads total concurrency (callers + workers); clamped to
  ///        at least 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (including the calling thread).
  int num_threads() const { return num_threads_; }

  /// Runs body(chunk) for every chunk in [0, num_chunks), distributing
  /// chunks over the pool, and returns when all chunks completed. If any
  /// invocation throws, the first exception is rethrown on the calling
  /// thread after all chunks finish or are abandoned. Not reentrant: do
  /// not call ParallelFor from inside a body running on the same pool.
  void ParallelFor(size_t num_chunks, const std::function<void(size_t)>& body);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int num_threads_ = 1;
};

/// One-shot convenience: runs the loop on a temporary pool (inline when
/// threads <= 1 or num_chunks <= 1).
void ParallelFor(int threads, size_t num_chunks,
                 const std::function<void(size_t)>& body);

/// In-place inclusive prefix sum of `values` using `pool`, blocked into
/// one chunk per pool thread: per-block partial sums in parallel, a serial
/// scan over the (few) block totals, then a parallel offset-add pass.
/// Bit-identical to the serial scan for any pool size.
void ParallelInclusivePrefixSum(ThreadPool* pool, std::vector<size_t>* values);

}  // namespace trilist
