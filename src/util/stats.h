#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

/// \file stats.h
/// Streaming statistics used by the simulation harness to average measured
/// cost over repeated degree sequences and graph instances.

namespace trilist {

/// \brief Welford-style streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations.
  size_t count() const { return count_; }
  /// Sample mean (0 if empty).
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 if fewer than two observations).
  double Variance() const;
  /// Sample standard deviation.
  double StdDev() const { return std::sqrt(Variance()); }
  /// Standard error of the mean.
  double StdError() const;
  /// Smallest observation seen (+inf if empty).
  double Min() const { return min_; }
  /// Largest observation seen (-inf if empty).
  double Max() const { return max_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative error (x - reference) / reference, in percent. Returns 0 when
/// the reference is 0.
double RelativeErrorPercent(double x, double reference);

}  // namespace trilist
