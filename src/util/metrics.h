#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/timer.h"

/// \file metrics.h
/// Execution telemetry for the run layer (src/run/): named phase timers,
/// process resource gauges (peak RSS, CPU seconds) and a derived
/// thread-utilization figure. The Runner populates these into a RunReport
/// so every pipeline stage — load, order, orient, list — gets wall-clock
/// attribution, which is what lets performance work target the stage that
/// actually dominates (orientation vs. listing, the split both AOT and
/// the ordering literature report).
///
/// Everything here is plain accounting: no threads, no globals, no
/// overhead when unused. All gauges degrade gracefully (return 0) on
/// platforms without the underlying counters.

namespace trilist {

/// One accumulated pipeline stage.
struct StageSample {
  std::string name;    ///< stage label ("load", "order", "orient", ...).
  double wall_s = 0;   ///< accumulated wall seconds.
  int calls = 0;       ///< number of accumulations.
};

/// \brief Accumulates wall time into named stages, preserving first-touch
/// order (so reports render stages in pipeline order).
class StageClock {
 public:
  /// \brief RAII scope that accounts its lifetime to one stage.
  ///
  /// Attribution happens in the destructor, so a stage body that throws
  /// still gets its elapsed time recorded — an exception escaping "list"
  /// must not silently vanish from the stage table.
  class Scope {
   public:
    Scope(StageClock* clock, std::string_view name)
        : clock_(clock), name_(name) {}
    ~Scope() { clock_->Add(name_, timer_.ElapsedSeconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageClock* clock_;
    std::string name_;  // owned: the scope may outlive the caller's view
    Timer timer_;
  };

  /// Adds `seconds` to stage `name`, creating it on first use.
  void Add(std::string_view name, double seconds);

  /// Times `body()` and accounts it to `name`; returns body's result.
  /// Exception-safe: the elapsed time is attributed even if body throws.
  template <typename Body>
  auto Time(std::string_view name, Body&& body) {
    const Scope scope(this, name);
    return body();
  }

  /// Accumulated wall seconds of `name`, 0 when the stage never ran.
  double WallOf(std::string_view name) const;

  /// Sum of all stage walls.
  double Total() const;

  /// Stages in first-touch order.
  const std::vector<StageSample>& stages() const { return stages_; }

  /// Merges another clock into this one (used by min/aggregate reports).
  void Merge(const StageClock& other);

  /// Keeps, per stage, the smaller wall of this and `other` (best-of-reps
  /// reporting in benches). Stages present in only one side are kept.
  void MergeMin(const StageClock& other);

 private:
  std::vector<StageSample> stages_;
  StageSample* Find(std::string_view name);
};

/// Peak resident set size of this process in bytes (Linux VmHWM), or 0
/// when the platform does not expose it.
size_t PeakRssBytes();

/// CPU time (user + system) consumed by the process so far, in seconds
/// (getrusage), or 0 when unavailable.
double ProcessCpuSeconds();

/// \brief Samples CPU seconds across a region to gauge how busy the
/// worker threads actually were.
///
/// utilization = (cpu_end - cpu_start) / (wall * threads): 1.0 means every
/// thread computed for the whole wall time; values well below 1 flag load
/// imbalance or serialization. Single-threaded regions naturally read ~1.
class CpuGauge {
 public:
  /// Starts sampling at construction.
  CpuGauge() : start_cpu_(ProcessCpuSeconds()) {}

  /// CPU seconds burned since construction.
  double CpuSecondsElapsed() const {
    return ProcessCpuSeconds() - start_cpu_;
  }

  /// Utilization of `threads` workers over `wall_s` seconds of wall time;
  /// 0 when the inputs are degenerate.
  double UtilizationOver(double wall_s, int threads) const {
    if (wall_s <= 0 || threads <= 0) return 0;
    return CpuSecondsElapsed() / (wall_s * threads);
  }

 private:
  double start_cpu_ = 0;
};

}  // namespace trilist
