#pragma once

#include <chrono>

/// \file timer.h
/// Wall-clock timing for the model-computation experiments (Table 5 reports
/// seconds per model evaluation) and for bench harness progress output.

namespace trilist {

/// \brief Monotonic stopwatch.
class Timer {
 public:
  /// Starts (or restarts) the stopwatch.
  void Start() { start_ = Clock::now(); }

  /// Seconds elapsed since Start().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since Start().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_ = Clock::now();
};

}  // namespace trilist
