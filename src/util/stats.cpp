#include "src/util/stats.h"

namespace trilist {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ += delta * static_cast<double>(other.count_) / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RelativeErrorPercent(double x, double reference) {
  if (reference == 0.0) return 0.0;
  return (x - reference) / reference * 100.0;
}

}  // namespace trilist
