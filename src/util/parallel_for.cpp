#include "src/util/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace trilist {

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable cv_start;  // workers wait here between jobs
  std::condition_variable cv_done;   // ParallelFor waits here for workers
  std::vector<std::thread> workers;

  // Current job, valid while `pending_workers > 0` or a generation is live.
  const std::function<void(size_t)>* body = nullptr;
  size_t num_chunks = 0;
  std::atomic<size_t> next_chunk{0};
  uint64_t generation = 0;   // bumped per job so workers never re-run one
  int pending_workers = 0;   // workers that have not finished the job yet
  bool shutdown = false;
  std::exception_ptr first_error;  // guarded by mu

  /// Claims chunks until exhausted; records the first exception.
  void DrainChunks(const std::function<void(size_t)>& fn, size_t total) {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= total) return;
      try {
        fn(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(size_t)>* fn = nullptr;
      size_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_start.wait(lock, [&] {
          return shutdown || generation != seen_generation;
        });
        if (shutdown) return;
        seen_generation = generation;
        fn = body;
        total = num_chunks;
      }
      DrainChunks(*fn, total);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--pending_workers == 0) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : impl_(std::make_unique<Impl>()),
      num_threads_(std::max(1, num_threads)) {
  const int spawned = num_threads_ - 1;  // calling thread is worker #0
  impl_->workers.reserve(static_cast<size_t>(spawned));
  for (int i = 0; i < spawned; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv_start.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

void ThreadPool::ParallelFor(size_t num_chunks,
                             const std::function<void(size_t)>& body) {
  if (num_chunks == 0) return;
  if (impl_->workers.empty() || num_chunks == 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->body = &body;
    impl_->num_chunks = num_chunks;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->pending_workers = static_cast<int>(impl_->workers.size());
    ++impl_->generation;
  }
  impl_->cv_start.notify_all();
  impl_->DrainChunks(body, num_chunks);
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->cv_done.wait(lock, [&] { return impl_->pending_workers == 0; });
  impl_->body = nullptr;
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelFor(int threads, size_t num_chunks,
                 const std::function<void(size_t)>& body) {
  if (threads <= 1 || num_chunks <= 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) body(chunk);
    return;
  }
  ThreadPool pool(threads);
  pool.ParallelFor(num_chunks, body);
}

void ParallelInclusivePrefixSum(ThreadPool* pool,
                                std::vector<size_t>* values) {
  const size_t n = values->size();
  const auto blocks = static_cast<size_t>(pool->num_threads());
  if (n < 2 || blocks < 2) {
    size_t acc = 0;
    for (size_t& v : *values) {
      acc += v;
      v = acc;
    }
    return;
  }
  const size_t block_len = (n + blocks - 1) / blocks;
  std::vector<size_t> block_totals(blocks, 0);
  size_t* data = values->data();
  pool->ParallelFor(blocks, [&](size_t b) {
    const size_t lo = b * block_len;
    const size_t hi = std::min(n, lo + block_len);
    size_t acc = 0;
    for (size_t i = lo; i < hi; ++i) {
      acc += data[i];
      data[i] = acc;
    }
    block_totals[b] = acc;
  });
  // Exclusive scan of the per-block totals (a handful of elements).
  size_t carry = 0;
  for (size_t b = 0; b < blocks; ++b) {
    const size_t total = block_totals[b];
    block_totals[b] = carry;
    carry += total;
  }
  pool->ParallelFor(blocks, [&](size_t b) {
    const size_t offset = block_totals[b];
    if (offset == 0) return;
    const size_t lo = b * block_len;
    const size_t hi = std::min(n, lo + block_len);
    for (size_t i = lo; i < hi; ++i) data[i] += offset;
  });
}

}  // namespace trilist
