#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// guarding every section of the `.tlg` binary graph container (see
/// src/graph/binfmt.h). Table-driven, incremental, no dependencies.

namespace trilist {

/// Extends a running CRC-32 with `len` bytes. Start from `crc = 0`;
/// the pre/post inversion is handled internally, so
/// Crc32Update(Crc32Update(0, a), b) == Crc32(a ++ b).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// One-shot CRC-32 of a byte range.
inline uint32_t Crc32(std::span<const std::byte> bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace trilist
