#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/run/run_report.h"
#include "src/run/run_spec.h"
#include "src/util/rng.h"
#include "src/util/status.h"

/// \file runner.h
/// The single instrumented executor of the paper pipeline. Every front
/// end — `trilist_cli`, the benches, the examples, the Section 7
/// simulation loop — describes its run as a RunSpec and calls
/// RunPipeline, which:
///
///   1. acquires the graph (generate / text edge list / `.tlg`, reusing a
///      cached orientation embedded in a container when one matches),
///   2. computes the global order theta and the label map   ["order"],
///   3. relabels + orients into the CSR                      ["orient"],
///   4. builds the directed-arc set when a vertex iterator
///      needs it                                             ["arcs"],
///   5. runs every requested method through the registry
///      (serial or parallel engine per ExecPolicy, identical
///      results either way)                                  ["list"],
///
/// and returns a RunReport with per-stage wall clocks, per-method
/// operation counters and process resource gauges. The graph-acquisition
/// helpers are exposed separately so callers with bespoke loops (the
/// simulation harness shares degree sequences across graphs) reuse the
/// same sampling/realization code path.

namespace trilist {

/// Uniform `--threads` semantics for all front ends: values <= 0 mean
/// "all hardware threads", anything else is taken literally.
int ResolveThreads(int threads);

/// Samples an i.i.d. degree sequence from the spec's truncated Pareto and
/// makes it graphic — the first half of every synthetic-graph experiment.
/// Consumes `rng` exactly like the historical Section 7 loop, so existing
/// seeds reproduce bit-identically.
std::vector<int64_t> SampleGraphicDegrees(const GenerateSpec& spec,
                                          Rng* rng);

/// Realizes `degrees` as a simple graph with the spec's generator
/// (kGnp ignores the degrees and draws an Erdos-Renyi control instead).
Result<Graph> RealizeGraph(const GenerateSpec& spec,
                           const std::vector<int64_t>& degrees, Rng* rng);

/// Sample + realize in one step (the common case).
Result<Graph> GenerateGraph(const GenerateSpec& spec, Rng* rng);

/// One-line human-readable description of a source, as used in reports:
/// "pareto(n=..., alpha=..., root, residual)", a file path, "in-memory".
std::string DescribeSource(const GraphSource& source);

/// Steps 2-3 of the pipeline: computes the global order theta and builds
/// the oriented CSR, accounting the two phases to the "order" and
/// "orient" stages of `stages` (which may be null). Bit-identical to the
/// fused OrientWithSpec call — same RNG construction, same label
/// pipeline — and shared by RunPipeline and the serving catalog
/// (src/serve/catalog.h), so a cached orientation can stand in for this
/// call byte for byte.
OrientedGraph OrientStages(const Graph& graph, const OrientSpec& orient,
                           int threads, StageClock* stages);

/// Steps 4-5 of the pipeline: builds the directed-arc set when a vertex
/// iterator needs it ("arcs" stage) and runs every requested method
/// ("list" stage), appending one MethodReport per method to `report`.
/// `exec.threads` must already be resolved (see ResolveThreads). This is
/// the single listing loop behind both RunPipeline and the serve worker
/// pool, which is what makes served triangle counts bit-identical to
/// `trilist_cli run` on the same spec.
///
/// A positive `mem_budget_bytes` switches E1/E2 to the partitioned
/// out-of-core executors (src/xm) under that budget — counts and CPU
/// counters are identical; the report additionally carries the I/O
/// ledger — and rejects any other method with InvalidArgument.
Status ListOnOriented(const OrientedGraph& oriented,
                      const std::vector<Method>& methods,
                      const ExecPolicy& exec, int repeats, SinkKind sink,
                      RunReport* report, int64_t mem_budget_bytes = 0);

/// Orients `g` under `spec` and counts its triangles with method `m` —
/// the one-call from-scratch baseline shared by the dynamic-graph replay
/// verifier (src/dyn/replay.h) and `bench_dynamic_mix`, so "recount the
/// final graph" runs the exact listing path queries run.
Result<uint64_t> CountTrianglesWithMethod(const Graph& g, Method m,
                                          const OrientSpec& spec,
                                          int threads);

/// Executes `spec` end to end and reports where the time went. Expected
/// failures (unreadable file, generation stuck, corrupt container) come
/// back as a Status error.
Result<RunReport> RunPipeline(const RunSpec& spec);

}  // namespace trilist
