#include "src/run/run_report.h"

#include <ostream>

#include "src/util/json_writer.h"
#include "src/util/table_printer.h"

namespace trilist {

std::string RunReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", "trilist.run_report");
  w.Field("schema_version", kRunReportSchemaVersion);

  w.Key("build");
  w.BeginObject();
  w.Field("version", build_version);
  w.Field("git_hash", build_git_hash);
  w.Field("compiler", build_compiler);
  w.Field("build_type", build_type);
  w.EndObject();

  w.Key("graph");
  w.BeginObject();
  w.Field("source", source);
  w.Field("nodes", num_nodes);
  w.Field("edges", num_edges);
  w.EndObject();

  w.Key("orientation");
  w.BeginObject();
  w.Field("order", order);
  w.Field("seed", orient_seed);
  w.Field("cached", cached_orientation);
  w.EndObject();

  w.Key("exec");
  w.BeginObject();
  w.Field("threads", threads);
  w.Field("requested_threads", requested_threads);
  w.Field("repeats", repeats);
  w.Field("intersect", intersect_backend);
  w.Field("simd_level", simd_level);
  w.EndObject();

  w.Key("plan");
  w.BeginObject();
  w.Field("planned", plan.planned);
  w.Field("auto_method", plan.auto_method);
  w.Field("auto_order", plan.auto_order);
  w.Field("auto_intersect", plan.auto_intersect);
  w.Key("methods");
  w.BeginArray();
  for (const std::string& m : plan.methods) w.String(m);
  w.EndArray();
  w.Field("order", plan.order);
  w.Field("intersect", plan.intersect);
  w.FieldDouble("predicted_ops", plan.predicted_ops, 1);
  w.FieldDouble("predicted_cost", plan.predicted_cost, 1);
  w.FieldDouble("measured_ops", plan.measured_ops, 1);
  w.FieldDouble("measured_cost", plan.measured_cost, 1);
  w.Field("candidates", plan.candidates);
  w.EndObject();

  w.Key("io");
  w.BeginObject();
  w.Field("partitioned", partitioned);
  w.Field("mem_budget_bytes", mem_budget_bytes);
  w.Field("partitions", io_partitions);
  w.Field("passes", io.passes);
  w.Field("bytes_loaded", io.bytes_loaded);
  w.Field("bytes_streamed", io.bytes_streamed);
  w.Field("total_bytes", io.TotalBytes());
  w.EndObject();

  w.Key("stages");
  w.BeginArray();
  for (const StageSample& s : stages.stages()) {
    w.BeginObject();
    w.Field("name", s.name);
    w.FieldDouble("wall_s", s.wall_s);
    w.Field("calls", s.calls);
    w.EndObject();
  }
  w.EndArray();

  w.Key("methods");
  w.BeginArray();
  for (const MethodReport& m : methods) {
    w.BeginObject();
    w.Field("method", MethodName(m.method));
    w.Field("triangles", m.triangles);
    w.Field("paper_cost", m.ops.PaperCost());
    w.FieldDouble("formula_cost", m.formula_cost, 1);
    w.Key("ops");
    w.BeginObject();
    w.Field("candidate_checks", m.ops.candidate_checks);
    w.Field("local_scans", m.ops.local_scans);
    w.Field("remote_scans", m.ops.remote_scans);
    w.Field("merge_comparisons", m.ops.merge_comparisons);
    w.Field("hash_inserts", m.ops.hash_inserts);
    w.Field("lookups", m.ops.lookups);
    w.Field("binary_searches", m.ops.binary_searches);
    w.EndObject();
    w.FieldDouble("wall_s", m.wall_s);
    w.FieldDouble("wall_total_s", m.wall_total_s);
    w.Field("parallel", m.parallel);
    w.Field("intersect_backend", m.intersect_backend);
    w.EndObject();
  }
  w.EndArray();

  w.Key("degree_profiles");
  w.BeginArray();
  for (const obs::DegreeProfile& p : degree_profiles) {
    obs::AppendDegreeProfileJson(p, &w);
  }
  w.EndArray();

  w.Key("resources");
  w.BeginObject();
  w.Field("peak_rss_bytes", peak_rss_bytes);
  w.FieldDouble("cpu_s", cpu_s);
  w.FieldDouble("utilization", utilization, 4);
  w.EndObject();

  w.EndObject();
  return std::move(w).Finish();
}

void RunReport::PrintTable(std::ostream& out) const {
  out << source << ": n=" << FormatCount(num_nodes)
      << " m=" << FormatCount(num_edges) << ", order " << order;
  if (cached_orientation) out << " (cached orientation)";
  out << ", " << threads << (threads == 1 ? " thread" : " threads");
  if (repeats > 1) out << ", best of " << repeats;
  out << "\n";

  if (plan.planned) {
    out << "plan: ";
    for (size_t i = 0; i < plan.methods.size(); ++i) {
      out << (i > 0 ? "+" : "") << plan.methods[i];
    }
    out << " on " << plan.order << " / " << plan.intersect
        << " (predicted cost " << FormatNumber(plan.predicted_cost, 0)
        << ", " << plan.candidates << " candidates)\n";
  }

  TablePrinter stage_table({"stage", "wall", "calls"});
  for (const StageSample& s : stages.stages()) {
    stage_table.AddRow({s.name, FormatNumber(s.wall_s, 3) + "s",
                        FormatCount(static_cast<uint64_t>(s.calls))});
  }
  stage_table.AddRow({"total", FormatNumber(stages.Total(), 3) + "s", ""});
  stage_table.Print(out);

  if (!methods.empty()) {
    TablePrinter method_table(
        {"method", "triangles", "paper-metric ops", "wall", "engine",
         "intersect"});
    for (const MethodReport& m : methods) {
      method_table.AddRow(
          {MethodName(m.method), FormatCount(m.triangles),
           FormatCount(static_cast<uint64_t>(m.ops.PaperCost())),
           FormatNumber(m.wall_s, 3) + "s",
           m.parallel ? "parallel" : "serial", m.intersect_backend});
    }
    method_table.Print(out);
  }

  for (const obs::DegreeProfile& p : degree_profiles) {
    out << obs::DegreeProfileTable(p);
  }

  if (partitioned) {
    out << "out-of-core: budget "
        << FormatBytes(static_cast<double>(mem_budget_bytes)) << ", "
        << io_partitions << (io_partitions == 1 ? " partition, "
                                                : " partitions, ")
        << FormatBytes(static_cast<double>(io.bytes_loaded))
        << " loaded + "
        << FormatBytes(static_cast<double>(io.bytes_streamed))
        << " streamed\n";
  }
  out << "peak RSS " << FormatBytes(static_cast<double>(peak_rss_bytes))
      << ", CPU " << FormatNumber(cpu_s, 2) << "s, utilization "
      << FormatNumber(utilization * 100.0, 0) << "%\n";
}

}  // namespace trilist
