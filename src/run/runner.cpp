#include "src/run/runner.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "src/algo/cost.h"
#include "src/algo/parallel_engine.h"
#include "src/algo/registry.h"
#include "src/algo/simd/intersect_engine.h"
#include "src/cost/cost_model.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/degree_stats.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/gen/configuration_model.h"
#include "src/gen/erdos_renyi.h"
#include "src/gen/residual_generator.h"
#include "src/graph/binfmt.h"
#include "src/graph/edge_set.h"
#include "src/graph/io.h"
#include "src/obs/degree_profile.h"
#include "src/obs/trace.h"
#include "src/order/pipeline.h"
#include "src/order/registry.h"
#include "src/run/planner.h"
#include "src/util/build_info.h"
#include "src/util/cpu_features.h"
#include "src/util/metrics.h"
#include "src/util/parallel_for.h"
#include "src/util/timer.h"
#include "src/xm/partitioned.h"

namespace trilist {

const char* GeneratorKindName(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kResidual: return "residual";
    case GeneratorKind::kConfiguration: return "configuration";
    case GeneratorKind::kGnp: return "gnp";
  }
  return "?";
}

int ResolveThreads(int threads) {
  return threads <= 0 ? HardwareThreads() : threads;
}

std::vector<int64_t> SampleGraphicDegrees(const GenerateSpec& spec,
                                          Rng* rng) {
  const DiscretePareto base(spec.alpha, spec.ResolvedBeta());
  const int64_t t_n =
      TruncationPoint(spec.truncation, static_cast<int64_t>(spec.n));
  const TruncatedDistribution fn(base, t_n);
  std::vector<int64_t> degrees =
      DegreeSequence::SampleIid(fn, spec.n, rng).degrees();
  MakeGraphic(&degrees);
  return degrees;
}

Result<Graph> RealizeGraph(const GenerateSpec& spec,
                           const std::vector<int64_t>& degrees, Rng* rng) {
  switch (spec.generator) {
    case GeneratorKind::kResidual: {
      ResidualGenOptions options;
      options.strict = spec.strict;
      return GenerateExactDegree(degrees, rng, nullptr, options);
    }
    case GeneratorKind::kConfiguration:
      return ConfigurationModel(degrees, rng);
    case GeneratorKind::kGnp: {
      double p = spec.gnp_p;
      if (p < 0) {
        // Match the Pareto family's density: p = mean degree / (n - 1).
        const DiscretePareto base(spec.alpha, spec.ResolvedBeta());
        const TruncatedDistribution fn(
            base,
            TruncationPoint(spec.truncation, static_cast<int64_t>(spec.n)));
        p = spec.n > 1
                ? fn.Mean() / static_cast<double>(spec.n - 1)
                : 0.0;
      }
      return GenerateGnp(spec.n, std::min(1.0, std::max(0.0, p)), rng);
    }
  }
  return Status::InvalidArgument("unknown generator kind");
}

Result<Graph> GenerateGraph(const GenerateSpec& spec, Rng* rng) {
  if (spec.generator == GeneratorKind::kGnp) {
    return RealizeGraph(spec, {}, rng);
  }
  const std::vector<int64_t> degrees = SampleGraphicDegrees(spec, rng);
  return RealizeGraph(spec, degrees, rng);
}

std::string DescribeSource(const GraphSource& source) {
  switch (source.kind) {
    case GraphSourceKind::kGenerate: {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "pareto(n=%zu, alpha=%.3g, %s, %s)",
                    source.gen.n, source.gen.alpha,
                    TruncationKindName(source.gen.truncation),
                    GeneratorKindName(source.gen.generator));
      return buf;
    }
    case GraphSourceKind::kFile:
      return source.path;
    case GraphSourceKind::kInMemory:
      return "in-memory";
  }
  return "?";
}

namespace {

/// Acquired input graph plus the container that may carry cached
/// orientations (null for non-`.tlg` sources).
struct AcquiredGraph {
  Graph graph;
  std::shared_ptr<TlgFile> tlg;
};

Result<AcquiredGraph> AcquireGraph(const RunSpec& spec, RunReport* report) {
  AcquiredGraph acquired;
  switch (spec.source.kind) {
    case GraphSourceKind::kGenerate: {
      obs::TraceSpan span("generate");
      span.Arg("n", static_cast<int64_t>(spec.source.gen.n));
      Rng rng(spec.seed);
      Timer timer;
      Result<Graph> g = GenerateGraph(spec.source.gen, &rng);
      if (!g.ok()) return g.status();
      report->stages.Add("generate", timer.ElapsedSeconds());
      acquired.graph = std::move(g).ValueOrDie();
      span.Arg("edges", static_cast<int64_t>(acquired.graph.num_edges()));
      return acquired;
    }
    case GraphSourceKind::kFile: {
      obs::TraceSpan span("load");
      Timer timer;
      if (LooksLikeTlgFile(spec.source.path)) {
        // A budgeted run must not fault the whole container in at load
        // time — open demand-paged and let listing drive page residency.
        TlgLoadOptions lopts;
        lopts.paged = spec.mem_budget_bytes > 0;
        Result<TlgFile> t = TlgFile::Open(spec.source.path, lopts);
        if (!t.ok()) return t.status();
        acquired.tlg =
            std::make_shared<TlgFile>(std::move(t).ValueOrDie());
        acquired.graph = acquired.tlg->graph();
      } else {
        Result<Graph> g = ReadEdgeListFile(spec.source.path);
        if (!g.ok()) return g.status();
        acquired.graph = std::move(g).ValueOrDie();
      }
      report->stages.Add("load", timer.ElapsedSeconds());
      span.Arg("edges", static_cast<int64_t>(acquired.graph.num_edges()));
      return acquired;
    }
    case GraphSourceKind::kInMemory:
      acquired.graph = spec.source.graph;
      report->stages.Add("load", 0.0);
      return acquired;
  }
  return Status::InvalidArgument("unknown graph source kind");
}

}  // namespace

OrientedGraph OrientStages(const Graph& graph, const OrientSpec& orient,
                           int threads, StageClock* stages) {
  StageClock local;
  StageClock* clock = stages != nullptr ? stages : &local;
  // Split of OrientWithSpec: theta + label map is "order", the CSR
  // build is "orient". Bit-identical to the fused call: same RNG
  // construction, same label pipeline (both route through the registry).
  std::vector<NodeId> labels;
  clock->Time("order", [&] {
    TRILIST_TRACE_SPAN("order");
    labels = OrderingLabels(graph, orient);
  });
  return clock->Time("orient", [&] {
    obs::TraceSpan span("orient");
    span.Arg("threads", static_cast<int64_t>(threads));
    return OrientedGraph::FromLabels(graph, labels, threads);
  });
}

Status ListOnOriented(const OrientedGraph& oriented,
                      const std::vector<Method>& methods,
                      const ExecPolicy& exec_in, int repeats, SinkKind sink,
                      RunReport* report, int64_t mem_budget_bytes) {
  // Out-of-core mode: only the scanning edge iterators with partitioned
  // realizations run under a budget.
  std::optional<Partitioning> parts;
  if (mem_budget_bytes > 0) {
    for (Method m : methods) {
      if (m != Method::kE1 && m != Method::kE2) {
        return Status::InvalidArgument(
            std::string("partitioned execution supports E1/E2 only, "
                        "got ") +
            MethodName(m));
      }
    }
    parts.emplace(
        Partitioning::ForMemoryBudget(oriented, mem_budget_bytes));
    report->partitioned = true;
    report->mem_budget_bytes = mem_budget_bytes;
    report->io_partitions =
        static_cast<int64_t>(parts->num_partitions());
  }

  // Directed-arc set, shared by all vertex-iterator methods.
  const bool needs_arcs =
      std::any_of(methods.begin(), methods.end(), [](Method m) {
        return MethodFamily(m) == Family::kVertexIterator;
      });
  std::optional<DirectedEdgeSet> arcs;
  if (needs_arcs) {
    report->stages.Time("arcs", [&] {
      TRILIST_TRACE_SPAN("arcs");
      arcs.emplace(oriented);
    });
  }

  // Bitmap backend: build the hub index once up front (its own stage,
  // like "arcs") and share it across every SEI method and repeat.
  ExecPolicy exec = exec_in;
  const bool needs_bitmap =
      exec.intersect == IntersectBackend::kBitmap &&
      exec.bitmap_index == nullptr &&
      std::any_of(methods.begin(), methods.end(), [](Method m) {
        return MethodFamily(m) == Family::kScanningEdgeIterator;
      });
  if (needs_bitmap) {
    report->stages.Time("bitmap", [&] {
      TRILIST_TRACE_SPAN("bitmap");
      exec.bitmap_index = simd::EnsureBitmapIndex(exec, oriented);
    });
  }

  double list_wall = 0;
  for (Method m : methods) {
    MethodReport mr;
    mr.method = m;
    mr.formula_cost = MethodCostTotal(oriented, m);
    mr.parallel = exec.threads > 1 && SupportsParallel(m);
    if (MethodFamily(m) == Family::kScanningEdgeIterator) {
      mr.intersect_backend = IntersectBackendName(exec.intersect);
    }
    if (parts.has_value()) {
      // The partitioned executors are serial and always merge-intersect.
      mr.parallel = false;
      mr.intersect_backend = "merge";
    }
    bool first = true;
    for (int rep = 0; rep < repeats; ++rep) {
      CountingSink counting;
      CollectingSink collecting;
      TriangleSink* triangle_sink =
          sink == SinkKind::kCollect
              ? static_cast<TriangleSink*>(&collecting)
              : &counting;
      obs::TraceSpan span(MethodName(m));
      span.Arg("stage", "list");
      span.Arg("repeat", static_cast<int64_t>(rep));
      Timer timer;
      OpCounts ops;
      if (parts.has_value()) {
        IoStats io;
        ops = m == Method::kE1
                  ? RunPartitionedE1(oriented, *parts, triangle_sink, &io)
                  : RunPartitionedE2(oriented, *parts, triangle_sink, &io);
        if (rep == 0) {
          report->io.passes += io.passes;
          report->io.bytes_loaded += io.bytes_loaded;
          report->io.bytes_streamed += io.bytes_streamed;
        }
      } else {
        ops = MethodFamily(m) == Family::kVertexIterator
                  ? RunMethod(m, oriented, *arcs, triangle_sink, exec)
                  : RunMethod(m, oriented, triangle_sink, exec);
      }
      const double wall = timer.ElapsedSeconds();
      span.Arg("ops", ops.PaperCost());
      const uint64_t triangles =
          sink == SinkKind::kCollect
              ? collecting.triangles().size()
              : counting.count();
      span.Arg("triangles", static_cast<int64_t>(triangles));
      mr.wall_total_s += wall;
      if (first || wall < mr.wall_s) mr.wall_s = wall;
      if (first) {
        mr.triangles = triangles;
        mr.ops = ops;
        if (sink == SinkKind::kCollect) {
          mr.listed = collecting.triangles();
        }
      } else if (mr.triangles != triangles) {
        return Status::Internal(
            std::string("triangle count diverged across repeats for ") +
            MethodName(m));
      }
      first = false;
    }
    list_wall += mr.wall_total_s;
    report->methods.push_back(std::move(mr));
  }
  report->stages.Add("list", list_wall);
  return Status::OK();
}

Result<uint64_t> CountTrianglesWithMethod(const Graph& g, Method m,
                                          const OrientSpec& spec,
                                          int threads) {
  const int resolved = ResolveThreads(threads);
  const OrientedGraph oriented = OrientStages(g, spec, resolved, nullptr);
  ExecPolicy exec;
  exec.threads = resolved;
  RunReport report;
  TRILIST_RETURN_NOT_OK(
      ListOnOriented(oriented, {m}, exec, 1, SinkKind::kCount, &report));
  return report.methods.front().triangles;
}

Result<RunReport> RunPipeline(const RunSpec& spec) {
  RunReport report;
  CpuGauge gauge;
  // Resolve "auto" (<= 0) to the hardware width once, up front: dispatch,
  // the utilization denominator and the report all see the same count.
  const int threads = ResolveThreads(spec.exec.threads);
  ExecPolicy exec = spec.exec;
  exec.threads = threads;
  const int repeats = std::max(1, spec.repeats);
  report.source = DescribeSource(spec.source);
  report.order = PermutationKindName(spec.orient.kind);
  report.orient_seed = spec.orient.seed;
  report.threads = threads;
  report.requested_threads = spec.exec.threads;
  report.repeats = repeats;
  report.intersect_backend = IntersectBackendName(exec.intersect);
  report.simd_level = SimdLevelName(ActiveSimdLevel());
  const BuildInfo& build = GetBuildInfo();
  report.build_version = build.version;
  report.build_git_hash = build.git_hash;
  report.build_compiler = build.compiler;
  report.build_type = build.build_type;

  // 1. Acquire the graph ("generate" or "load").
  Result<AcquiredGraph> acquired = AcquireGraph(spec, &report);
  if (!acquired.ok()) return acquired.status();
  const Graph& graph = acquired->graph;
  report.num_nodes = graph.num_nodes();
  report.num_edges = graph.num_edges();

  // 1b. Resolve any free plan axes against the realized degree sequence
  // ("plan" stage): the planner overrides orient/methods/backend with
  // the minimum-predicted-cost choice, and the model stays alive so the
  // measured run can be priced in the same currency afterwards.
  OrientSpec orient = spec.orient;
  std::vector<Method> methods = spec.methods;
  std::optional<cost::CostModel> cost_model;
  if (spec.plan.Any()) {
    report.stages.Time("plan", [&] {
      TRILIST_TRACE_SPAN("plan");
      cost_model.emplace(AscendingDegrees(graph));
      PlannerRequest request;
      request.auto_method = spec.plan.method;
      request.auto_order = spec.plan.order;
      request.auto_intersect = spec.plan.intersect;
      request.methods = spec.methods;
      request.orient = spec.orient;
      request.intersect = exec.intersect;
      const PlanResult plan = ResolvePlan(*cost_model, request);
      orient = plan.chosen.orient;
      methods = plan.chosen.methods;
      exec.intersect = plan.chosen.intersect;
      report.plan.planned = true;
      report.plan.auto_method = spec.plan.method;
      report.plan.auto_order = spec.plan.order;
      report.plan.auto_intersect = spec.plan.intersect;
      for (const Method m : methods) {
        report.plan.methods.push_back(MethodName(m));
      }
      report.plan.order = orient.Key();
      report.plan.intersect = IntersectBackendName(exec.intersect);
      report.plan.predicted_ops = plan.chosen.predicted_ops;
      report.plan.predicted_cost = plan.chosen.predicted_cost;
      report.plan.candidates =
          static_cast<int>(plan.candidates.size());
    });
    report.order = PermutationKindName(orient.kind);
    report.orient_seed = orient.seed;
    report.intersect_backend = IntersectBackendName(exec.intersect);
  }

  // 2-3. Order + orient, reusing a container-cached (O, theta) when one
  // matches — in which case both stages are already paid for on disk.
  const OrientedGraph* cached =
      acquired->tlg != nullptr
          ? acquired->tlg->FindOrientation(orient)
          : nullptr;
  OrientedGraph oriented;
  if (cached != nullptr) {
    report.cached_orientation = true;
    oriented = *cached;  // cheap span-backed copy, pins the mapping
    report.stages.Add("order", 0.0);
    report.stages.Add("orient", 0.0);
  } else {
    oriented = OrientStages(graph, orient, threads, &report.stages);
  }

  // 4-5. Arc-set build + listing with every requested method.
  const Status listed =
      ListOnOriented(oriented, methods, exec, repeats, spec.sink,
                     &report, spec.mem_budget_bytes);
  if (!listed.ok()) return listed;

  // Close the planner's audit loop: the measured operation counters,
  // weighted exactly as the prediction was, so predicted vs measured
  // (and regret vs an oracle) are plain ratios on the report.
  if (report.plan.planned) {
    for (const MethodReport& mr : report.methods) {
      report.plan.measured_ops += mr.ops.PaperCost();
      report.plan.measured_cost += cost_model->WeightedCost(
          mr.ops.PaperCost(), mr.method, exec.intersect);
    }
  }

  // 6. Optional model-residual pass: re-run each method serially with the
  // per-node op hook attached and bucket measured work against the
  // closed-form g(d)h(q). Separate pass so the timed listing above stays
  // on the hook-free instantiations.
  if (spec.degree_profile) {
    // The profile pass owns its arc set (the listing one lives inside
    // ListOnOriented); its build time is accounted to "profile".
    const bool needs_arcs = std::any_of(
        methods.begin(), methods.end(), [](Method m) {
          return MethodFamily(m) == Family::kVertexIterator;
        });
    std::optional<DirectedEdgeSet> arcs;
    const DirectedEdgeSet empty_arcs{OrientedGraph()};
    report.stages.Time("profile", [&] {
      if (needs_arcs) arcs.emplace(oriented);
      for (Method m : methods) {
        obs::TraceSpan span(MethodName(m));
        span.Arg("stage", "profile");
        obs::NodeOpsRecorder recorder(oriented.num_nodes());
        CountingSink counting;
        RunMethodProfiled(m, oriented,
                          arcs.has_value() ? *arcs : empty_arcs, &counting,
                          &recorder, exec);
        span.Arg("ops", recorder.Total());
        report.degree_profiles.push_back(
            obs::BuildDegreeProfile(m, oriented, recorder.ops()));
      }
    });
  }

  report.peak_rss_bytes = PeakRssBytes();
  report.cpu_s = gauge.CpuSecondsElapsed();
  report.utilization =
      gauge.UtilizationOver(report.TotalWallSeconds(), threads);
  return report;
}

}  // namespace trilist
