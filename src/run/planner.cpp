#include "src/run/planner.h"

#include <algorithm>

namespace trilist {

const std::vector<PermutationKind>& PlannerOrderCandidates() {
  static const std::vector<PermutationKind> kinds{
      PermutationKind::kAscending,
      PermutationKind::kDescending,
      PermutationKind::kRoundRobin,
      PermutationKind::kComplementaryRoundRobin,
      PermutationKind::kSplit,
  };
  return kinds;
}

const std::vector<IntersectBackend>& PlannerBackendCandidates() {
  static const std::vector<IntersectBackend> backends{
      IntersectBackend::kMerge,
      IntersectBackend::kSimd,
      IntersectBackend::kBitmap,
  };
  return backends;
}

namespace {

bool AnySei(const std::vector<Method>& methods) {
  return std::any_of(methods.begin(), methods.end(), [](Method m) {
    return MethodFamily(m) == Family::kScanningEdgeIterator;
  });
}

}  // namespace

PlanResult ResolvePlan(const cost::CostModel& model,
                       const PlannerRequest& req) {
  // Method axis: `auto` races the four fundamental representatives
  // (Section 2.4 — every other baseline is cost-isomorphic to one of
  // them) as single-method plans; pinned methods run together as one.
  std::vector<std::vector<Method>> method_sets;
  if (req.auto_method) {
    for (const Method m : FundamentalMethods()) method_sets.push_back({m});
  } else {
    method_sets.push_back(req.methods);
  }

  std::vector<OrientSpec> orients;
  if (req.auto_order) {
    for (const PermutationKind kind : PlannerOrderCandidates()) {
      orients.push_back(OrientSpec{kind, 0});
    }
  } else {
    orients.push_back(req.orient);
  }

  PlanResult result;
  for (const std::vector<Method>& methods : method_sets) {
    // The backend only prices into SEI intersection loops; without one
    // the axis is inert and enumerating it would create duplicate plans.
    std::vector<IntersectBackend> backends;
    if (req.auto_intersect && AnySei(methods)) {
      backends = PlannerBackendCandidates();
    } else {
      backends.push_back(req.auto_intersect ? IntersectBackend::kMerge
                                            : req.intersect);
    }
    for (const OrientSpec& orient : orients) {
      for (const IntersectBackend backend : backends) {
        PlanCandidate c;
        c.methods = methods;
        c.orient = orient;
        c.intersect = backend;
        for (const Method m : methods) {
          c.predicted_ops += model.PredictedOps(orient, m);
        }
        c.predicted_cost =
            model.PredictedTotalCost(orient, methods, backend);
        result.candidates.push_back(std::move(c));
      }
    }
  }

  // Ascending predicted cost; stable_sort keeps enumeration order on
  // ties, making the argmin deterministic across runs and platforms.
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     return a.predicted_cost < b.predicted_cost;
                   });
  result.chosen = result.candidates.front();
  return result;
}

}  // namespace trilist
