#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"
#include "src/obs/degree_profile.h"
#include "src/util/metrics.h"
#include "src/xm/partitioned.h"  // IoStats

/// \file run_report.h
/// Structured result of one Runner execution: where the time went (per
/// pipeline stage), what each method produced (triangles, paper-metric
/// operation counters, wall time), and what the process consumed (peak
/// RSS, CPU seconds, thread utilization). Exports as machine-readable
/// JSON (`trilist_cli run --report json`, golden-tested schema) or as an
/// aligned console table.

namespace trilist {

/// Version of the JSON schema emitted by RunReport::ToJson. Bump when
/// fields are renamed or removed (additions are compatible).
///
/// v2 (additive): "build" provenance object, "exec.requested_threads",
/// and the "degree_profiles" array (empty unless RunSpec::degree_profile).
///
/// v3 (additive): the "io" object — the out-of-core ledger of a
/// memory-budgeted run (RunSpec::mem_budget_bytes > 0): partition count
/// and the src/xm IoStats bytes. All-zero with "partitioned": false on
/// in-memory runs.
///
/// v4 (additive): the "plan" object — the query planner's audit trail
/// when any RunSpec::plan axis was free: which axes were auto, what was
/// chosen, the Section-3 predicted ops/cost of the choice, the measured
/// ops/cost of the actual run (same weighting, so regret is a plain
/// ratio), and the candidate count. "planned": false with empty/zero
/// fields on fully pinned runs.
inline constexpr int kRunReportSchemaVersion = 4;

/// \brief Result of one method's listing pass (best of RunSpec::repeats).
struct MethodReport {
  Method method = Method::kE1;
  uint64_t triangles = 0;    ///< triangles listed (identical across repeats).
  /// Intersection backend the method's kernels dispatched to ("merge",
  /// "simd", ...); "none" for families that never intersect (T*, L*).
  std::string intersect_backend = "none";
  OpCounts ops;              ///< operation counters of one pass.
  /// Closed-form cost of this method on the realized orientation (Tables
  /// 1-2 evaluated on the oriented degrees) — the prediction the measured
  /// paper-metric counters should match.
  double formula_cost = 0;
  double wall_s = 0;         ///< best listing wall time across repeats.
  double wall_total_s = 0;   ///< summed listing wall across repeats.
  bool parallel = false;     ///< ran on the parallel engine.
  /// Collected triangles when RunSpec::sink == kCollect (else empty).
  std::vector<Triangle> listed;
};

/// \brief The query planner's audit trail for one run (schema v4 "plan").
struct PlanReport {
  bool planned = false;    ///< any axis was resolved by the planner.
  bool auto_method = false;
  bool auto_order = false;
  bool auto_intersect = false;
  /// The chosen configuration (names, for the JSON document).
  std::vector<std::string> methods;
  std::string order;
  std::string intersect;
  /// Predicted price of the chosen plan (paper-metric ops and weighted
  /// comparable cost, summed over methods).
  double predicted_ops = 0;
  double predicted_cost = 0;
  /// The same two numbers measured from the run's operation counters,
  /// weighted identically — predicted vs measured is the model audit.
  double measured_ops = 0;
  double measured_cost = 0;
  int candidates = 0;      ///< configurations the planner priced.
};

/// \brief Everything the Runner measured about one pipeline execution.
struct RunReport {
  /// Human-readable description of the graph source ("pareto(n=...,
  /// alpha=...)", a file path, or "in-memory").
  std::string source;
  size_t num_nodes = 0;
  size_t num_edges = 0;

  /// Preprocessing configuration.
  std::string order;               ///< permutation name ("theta_D", ...).
  uint64_t orient_seed = 0;        ///< OrientSpec seed (kUniform only).
  bool cached_orientation = false; ///< reused a `.tlg`-embedded (O, theta).

  /// Execution configuration. `threads` is the *resolved* worker count
  /// the run actually used (a request of 0 = "auto" resolves to the
  /// hardware width before any dispatch or utilization math);
  /// `requested_threads` preserves what the spec asked for.
  int threads = 1;
  int requested_threads = 1;
  int repeats = 1;
  /// Requested intersection backend of the run (ExecPolicy::intersect).
  std::string intersect_backend = "merge";
  /// SIMD level the process dispatches to (cpu_features.h; reflects the
  /// TRILIST_FORCE_SCALAR / TRILIST_SIMD overrides), regardless of
  /// whether the chosen backend vectorizes.
  std::string simd_level = "scalar";

  /// Planner audit trail (PlanFlags runs only; planned = false otherwise).
  PlanReport plan;

  /// Per-stage wall clocks, in pipeline order: "load" or "generate",
  /// "order", "orient", plus "arcs" (directed-arc set build, vertex
  /// iterators only) and "list".
  StageClock stages;

  /// Per-method results, in RunSpec::methods order.
  std::vector<MethodReport> methods;

  /// Degree-bucketed model-residual histograms, one per method, in
  /// RunSpec::methods order; filled only when RunSpec::degree_profile.
  std::vector<obs::DegreeProfile> degree_profiles;

  /// Build provenance of the binary that produced the report (from
  /// GetBuildInfo(); tests substitute fixed values for goldens).
  std::string build_version;
  std::string build_git_hash;
  std::string build_compiler;
  std::string build_type;

  /// Out-of-core execution (RunSpec::mem_budget_bytes > 0): the budget
  /// the listing stage was held to, the partition count of the label
  /// space, and the I/O ledger summed across methods.
  bool partitioned = false;
  int64_t mem_budget_bytes = 0;
  int64_t io_partitions = 0;
  IoStats io;

  /// Process resource gauges, sampled across the whole run.
  size_t peak_rss_bytes = 0;
  double cpu_s = 0;
  /// CPU seconds / (listing wall * threads): ~1.0 = fully busy workers.
  double utilization = 0;

  /// Sum of stage walls (the run's accounted wall time).
  double TotalWallSeconds() const { return stages.Total(); }

  /// Triangle count of the first method (all methods agree on any valid
  /// run; convenience for single-method callers).
  uint64_t Triangles() const {
    return methods.empty() ? 0 : methods.front().triangles;
  }

  /// Machine-readable JSON document (schema kRunReportSchemaVersion;
  /// deterministic key order, golden-tested in run_report_test).
  std::string ToJson() const;

  /// Aligned human-readable tables (stages + per-method results).
  void PrintTable(std::ostream& out) const;
};

}  // namespace trilist
