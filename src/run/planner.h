#pragma once

#include <vector>

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/cost/cost_model.h"
#include "src/order/pipeline.h"

/// \file planner.h
/// The cost-model query planner: resolves `--method auto --order auto
/// --intersect auto` into the concrete (methods, ordering, backend)
/// triple with the minimum Section-3 predicted cost, at RunSpec
/// resolution time — before anything is oriented or listed. The same
/// enumeration backs `trilist_cli run/count` and the serving daemon's
/// admission pricing, so "what would the planner do" and "what does
/// admission charge" can never disagree.

namespace trilist {

/// One concrete executable configuration plus its predicted price.
struct PlanCandidate {
  std::vector<Method> methods;
  OrientSpec orient;
  IntersectBackend intersect = IntersectBackend::kMerge;
  /// Paper-metric operations (sum over methods).
  double predicted_ops = 0;
  /// Weighted comparable cost (sum over methods; the planner's argmin).
  double predicted_cost = 0;
};

/// What the caller pinned and what is free for the planner to choose.
struct PlannerRequest {
  bool auto_method = false;
  bool auto_order = false;
  bool auto_intersect = false;
  /// Pinned values, consulted when the matching auto_* flag is false.
  std::vector<Method> methods{Method::kE1};
  OrientSpec orient{PermutationKind::kDescending, 0};
  IntersectBackend intersect = IntersectBackend::kMerge;
};

/// A resolved plan: the argmin candidate plus the full ranking (ascending
/// predicted cost; ties keep enumeration order, which is deterministic).
struct PlanResult {
  PlanCandidate chosen;
  std::vector<PlanCandidate> candidates;
};

/// The ordering kinds the planner enumerates under `--order auto`: the
/// four closed-form positional families plus the degree-tailored split.
/// theta_U is excluded (never optimal — Corollary 3 territory); the
/// graph-dependent degen/aot orders are excluded because the model can
/// only price their theta_D proxy, which would tie theta_D exactly and
/// pick an order on proxy noise.
const std::vector<PermutationKind>& PlannerOrderCandidates();

/// The backends the planner enumerates under `--intersect auto`. Only
/// scanning edge iterators are affected; for method sets without an SEI
/// member the backend axis collapses to kMerge.
const std::vector<IntersectBackend>& PlannerBackendCandidates();

/// Enumerates every free axis of `req` against `model` and returns the
/// minimum-predicted-cost configuration. Deterministic: a fixed
/// enumeration order breaks ties.
PlanResult ResolvePlan(const cost::CostModel& model,
                       const PlannerRequest& req);

}  // namespace trilist
