#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/degree/truncated.h"
#include "src/graph/graph.h"
#include "src/order/pipeline.h"

/// \file run_spec.h
/// Declarative description of one end-to-end paper pipeline run:
///
///   acquire graph -> permutation theta -> relabel + orient (Section 2)
///   -> run method(s) -> account cost (Section 3)
///
/// Every front end (CLI subcommands, benches, examples, the simulation
/// harness) used to hand-roll this wiring with slightly different seeds
/// and timers; a RunSpec names the run once and the Runner
/// (src/run/runner.h) executes it uniformly, with per-stage telemetry.

namespace trilist {

/// Which random-graph generator realizes a sampled degree sequence.
enum class GeneratorKind {
  kResidual,       ///< exact realization (Section 7.2, the paper's choice).
  kConfiguration,  ///< classic stub matching (inexact for heavy tails).
  kGnp,            ///< Erdos-Renyi control; ignores the Pareto parameters.
};

/// Name of a generator kind ("residual", ...).
const char* GeneratorKindName(GeneratorKind kind);

/// \brief Parameters of a synthetic graph: the paper's truncated-Pareto
/// family realized by one of the generators.
struct GenerateSpec {
  size_t n = 100000;        ///< nodes.
  double alpha = 1.7;       ///< Pareto shape.
  double beta = -1.0;       ///< Pareto scale; < 0 = the 30(alpha-1) default.
  TruncationKind truncation = TruncationKind::kRoot;
  GeneratorKind generator = GeneratorKind::kResidual;
  /// For kGnp only: edge probability; < 0 derives p from the Pareto mean
  /// degree so the control graph matches the family's density.
  double gnp_p = -1.0;
  /// Residual generator: fail on shortfall beyond the odd-sum stub?
  bool strict = true;

  /// The effective beta (resolving the 30(alpha-1) convention).
  double ResolvedBeta() const {
    return beta > 0.0 ? beta : 30.0 * (alpha - 1.0);
  }
};

/// How the Runner obtains the input graph.
enum class GraphSourceKind {
  kGenerate,  ///< sample + realize a GenerateSpec (seeded by RunSpec::seed).
  kFile,      ///< read from disk; `.tlg` containers are detected by magic
              ///< and mmap-loaded, anything else parses as a text edge list.
  kInMemory,  ///< use a caller-provided Graph (cheap span-backed copy).
};

/// \brief One of the three ways to acquire the pipeline's input graph.
struct GraphSource {
  GraphSourceKind kind = GraphSourceKind::kGenerate;
  GenerateSpec gen;   ///< kGenerate parameters.
  std::string path;   ///< kFile path.
  Graph graph;        ///< kInMemory graph (copies share storage).

  /// Source from a synthetic-family description.
  static GraphSource FromGenerator(const GenerateSpec& spec) {
    GraphSource s;
    s.kind = GraphSourceKind::kGenerate;
    s.gen = spec;
    return s;
  }
  /// Source from a file path (text edge list or `.tlg`, sniffed at run
  /// time).
  static GraphSource FromFile(std::string path) {
    GraphSource s;
    s.kind = GraphSourceKind::kFile;
    s.path = std::move(path);
    return s;
  }
  /// Source from an already-loaded graph.
  static GraphSource FromGraph(Graph g) {
    GraphSource s;
    s.kind = GraphSourceKind::kInMemory;
    s.graph = std::move(g);
    return s;
  }
};

/// What the Runner does with listed triangles.
enum class SinkKind {
  kCount,    ///< count only (the default; no storage).
  kCollect,  ///< store every triangle in the report (small graphs only).
};

/// Which RunSpec axes the cost-model planner (src/run/planner.h) is free
/// to choose. With any flag set, the Runner inserts a "plan" stage that
/// prices the free axes against the realized degree sequence and
/// overrides the corresponding spec fields with the minimum-predicted-
/// cost choice; the pinned fields are honored as-is.
struct PlanFlags {
  bool method = false;     ///< `--method auto`
  bool order = false;      ///< `--order auto`
  bool intersect = false;  ///< `--intersect auto` (planner mode)

  bool Any() const { return method || order || intersect; }
};

/// \brief Full declarative description of a pipeline run.
struct RunSpec {
  /// Input graph.
  GraphSource source;
  /// Preprocessing: the global order O and its seed (kUniform only).
  OrientSpec orient{PermutationKind::kDescending, 0};
  /// Axes the planner resolves at run time (all pinned by default).
  PlanFlags plan;
  /// Methods to run on the oriented graph, in order. Empty = listing is
  /// skipped (orientation-only run, e.g. preprocessing benches).
  std::vector<Method> methods{Method::kE1};
  /// Concurrency; exec.threads > 1 dispatches orientation and the
  /// fundamental methods through the parallel engine (bit-identical
  /// results).
  ExecPolicy exec;
  /// Listing repetitions per method; the report keeps the best wall time
  /// and verifies triangle counts agree across repeats.
  int repeats = 1;
  /// Triangle consumer.
  SinkKind sink = SinkKind::kCount;
  /// Seed of the generator RNG (kGenerate sources).
  uint64_t seed = 1;
  /// Run an extra serial profiling pass per method with the per-node op
  /// hook attached and attach degree-bucketed model-residual histograms
  /// (see src/obs/degree_profile.h) to the report. The timed listing
  /// passes above stay hook-free.
  bool degree_profile = false;
  /// Memory budget for the listing stage, in bytes; 0 (default) runs
  /// fully in memory. When positive, `.tlg` file sources are opened
  /// demand-paged and E1/E2 execute through the partitioned out-of-core
  /// executors (src/xm) under this budget — other methods are rejected —
  /// and the report carries the realized I/O ledger.
  int64_t mem_budget_bytes = 0;
};

}  // namespace trilist
