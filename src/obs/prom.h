#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/run/run_report.h"

/// \file prom.h
/// Prometheus text-exposition (version 0.0.4) writer, plus the canned
/// RunReport exporter behind `trilist_cli run --metrics out.prom`.
///
/// The writer emits the standard layout:
///
///   # HELP trilist_method_wall_seconds Best listing wall time per method
///   # TYPE trilist_method_wall_seconds gauge
///   trilist_method_wall_seconds{method="T1"} 0.123
///
/// Output is deterministic (metrics in declaration order, labels in the
/// order given), so .prom artifacts can be golden-tested like the JSON
/// reports. Label values are escaped per the exposition format (backslash,
/// double-quote, newline).

namespace trilist::obs {

/// One metric label, name="value" (value escaped on render).
using PromLabel = std::pair<std::string, std::string>;

/// \brief Streaming Prometheus text-format builder.
class PromWriter {
 public:
  /// Declares a gauge metric: emits its # HELP and # TYPE header lines.
  /// Must precede the metric's Sample calls.
  void Gauge(std::string_view name, std::string_view help);

  /// Declares a counter metric (monotone totals, *_total convention).
  void Counter(std::string_view name, std::string_view help);

  /// Declares a histogram metric. The caller emits the conventional
  /// `_bucket{le="..."}` (cumulative), `_sum` and `_count` samples.
  void Histogram(std::string_view name, std::string_view help);

  /// Emits one sample line for the most recently declared metric family
  /// or any previously declared one (callers keep samples grouped under
  /// their declaration for canonical output).
  void Sample(std::string_view name, const std::vector<PromLabel>& labels,
              double value);

  /// Unlabeled convenience.
  void Sample(std::string_view name, double value) {
    Sample(name, {}, value);
  }

  /// Returns the completed exposition text (trailing newline included).
  std::string Finish() &&;

 private:
  void Declare(std::string_view name, std::string_view help,
               std::string_view type);
  std::string out_;
};

/// Renders a RunReport (including any attached degree profiles) as
/// Prometheus exposition text. Build provenance is exported through the
/// conventional `trilist_build_info{...} 1` gauge.
std::string RunReportToPrometheus(const RunReport& report);

}  // namespace trilist::obs
