#include "src/obs/degree_profile.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "src/core/h_function.h"
#include "src/util/table_printer.h"

namespace trilist::obs {

int DegreeBucketIndex(int64_t d) {
  if (d <= 0) return 0;
  int bucket = 1;
  while (d > 1) {
    d >>= 1;
    ++bucket;
  }
  return bucket;
}

int64_t BucketMinDegree(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << (bucket - 1);
}

int64_t BucketMaxDegree(int bucket) {
  if (bucket <= 0) return 0;
  return (int64_t{1} << bucket) - 1;
}

int64_t NodeOpsRecorder::Total() const {
  return std::accumulate(ops_.begin(), ops_.end(), int64_t{0});
}

double DegreeBucket::Residual() const {
  if (predicted_ops <= 0) {
    return predicted_ops == 0 && measured_ops == 0
               ? 0.0
               : static_cast<double>(measured_ops);
  }
  return (static_cast<double>(measured_ops) - predicted_ops) / predicted_ops;
}

double DegreeProfile::TotalResidual() const {
  if (total_predicted <= 0) return 0.0;
  return (static_cast<double>(total_measured) - total_predicted) /
         total_predicted;
}

DegreeProfile BuildDegreeProfile(Method m, const OrientedGraph& g,
                                 const std::vector<int64_t>& node_ops) {
  DegreeProfile profile;
  profile.method = m;
  const size_t n = g.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    const auto v = static_cast<NodeId>(i);
    const int64_t d = g.TotalDegree(v);
    const int bucket = DegreeBucketIndex(d);
    if (static_cast<size_t>(bucket) >= profile.buckets.size()) {
      const size_t old = profile.buckets.size();
      profile.buckets.resize(static_cast<size_t>(bucket) + 1);
      for (size_t b = old; b < profile.buckets.size(); ++b) {
        profile.buckets[b].bucket = static_cast<int>(b);
        profile.buckets[b].d_min = BucketMinDegree(static_cast<int>(b));
        profile.buckets[b].d_max = BucketMaxDegree(static_cast<int>(b));
      }
    }
    DegreeBucket& slot = profile.buckets[static_cast<size_t>(bucket)];
    const int64_t measured = i < node_ops.size() ? node_ops[i] : 0;
    ++slot.nodes;
    slot.measured_ops += measured;
    profile.total_measured += measured;
    // The model's per-node cost: g(d) h_M(q) with the realized
    // q = X / d. Nodes with d < 2 have g(d) = 0 and never any work.
    if (d >= 2) {
      const double q =
          static_cast<double>(g.OutDegree(v)) / static_cast<double>(d);
      const double predicted =
          GFunction(static_cast<double>(d)) * EvalH(m, q);
      slot.predicted_ops += predicted;
      profile.total_predicted += predicted;
    }
  }
  return profile;
}

void AppendDegreeProfileJson(const DegreeProfile& profile, JsonWriter* w) {
  w->BeginObject();
  w->Field("method", MethodName(profile.method));
  w->Field("total_measured_ops", profile.total_measured);
  w->FieldDouble("total_predicted_ops", profile.total_predicted, 3);
  w->FieldDouble("total_residual", profile.TotalResidual(), 6);
  w->Key("buckets");
  w->BeginArray();
  for (const DegreeBucket& b : profile.buckets) {
    w->BeginObject();
    w->Field("bucket", b.bucket);
    w->Field("d_min", b.d_min);
    w->Field("d_max", b.d_max);
    w->Field("nodes", b.nodes);
    w->Field("measured_ops", b.measured_ops);
    w->FieldDouble("predicted_ops", b.predicted_ops, 3);
    w->FieldDouble("residual", b.Residual(), 6);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string DegreeProfileTable(const DegreeProfile& profile) {
  TablePrinter table({"bucket", "degrees", "nodes", "measured",
                      "g(d)h(q)", "residual"});
  for (const DegreeBucket& b : profile.buckets) {
    std::ostringstream range;
    if (b.bucket == 0) {
      range << "0";
    } else if (b.d_min == b.d_max) {
      range << b.d_min;
    } else {
      range << b.d_min << "-" << b.d_max;
    }
    table.AddRow({std::to_string(b.bucket), range.str(),
                  FormatCount(static_cast<uint64_t>(b.nodes)),
                  FormatCount(static_cast<uint64_t>(b.measured_ops)),
                  FormatNumber(b.predicted_ops, 1),
                  FormatPercent(100.0 * b.Residual(), 2)});
  }
  std::ostringstream out;
  out << "degree profile for " << MethodName(profile.method) << "\n"
      << table.ToString()
      << "total: measured="
      << FormatCount(static_cast<uint64_t>(profile.total_measured))
      << " predicted=" << FormatNumber(profile.total_predicted, 1)
      << " residual=" << FormatPercent(100.0 * profile.TotalResidual(), 2)
      << "\n";
  return out.str();
}

}  // namespace trilist::obs
