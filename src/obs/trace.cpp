#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/util/build_info.h"
#include "src/util/json_writer.h"

namespace trilist::obs {

namespace {

/// Fixed-capacity single-writer event buffer. The owning thread is the
/// only writer; flushers read the prefix [0, count) with an acquire load,
/// which the release store in Push makes safe without locks.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid_in) : tid(tid_in) {
    events.resize(Tracer::kEventsPerThread);
  }

  void Push(const TraceEvent& event) {
    const size_t idx = count.load(std::memory_order_relaxed);
    if (idx >= events.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events[idx] = event;
    count.store(idx + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> events;
  std::atomic<size_t> count{0};
  std::atomic<uint64_t> dropped{0};
  const uint32_t tid;
};

/// All thread buffers ever registered. Buffers are never destroyed while
/// the process runs (Clear resets them in place), so the thread_local
/// pointers below can never dangle, even across tracer sessions.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Epoch of the current session, in steady-clock nanoseconds.
std::atomic<uint64_t> g_epoch_ns{0};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadBuffer* LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    Registry& registry = GetRegistry();
    const std::lock_guard<std::mutex> lock(registry.mu);
    registry.buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<uint32_t>(registry.buffers.size())));
    buffer = registry.buffers.back().get();
  }
  return buffer;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

void Tracer::Enable() {
  g_epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::Clear() {
  Registry& registry = GetRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
  g_epoch_ns.store(SteadyNowNs(), std::memory_order_relaxed);
}

size_t Tracer::EventCount() {
  Registry& registry = GetRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  size_t total = 0;
  for (const auto& buffer : registry.buffers) {
    total += buffer->count.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t Tracer::DroppedCount() {
  Registry& registry = GetRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  uint64_t total = 0;
  for (const auto& buffer : registry.buffers) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Tracer::NowNs() {
  return SteadyNowNs() - g_epoch_ns.load(std::memory_order_relaxed);
}

void Tracer::Commit(const TraceEvent& event) { LocalBuffer()->Push(event); }

void Tracer::AppendForTest(const TraceEvent& event) {
  LocalBuffer()->Push(event);
}

std::string Tracer::ToChromeJson() {
  const BuildInfo& build = GetBuildInfo();
  JsonWriter w;
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");

  w.Key("otherData");
  w.BeginObject();
  w.Field("tool", "trilist");
  w.Field("version", build.version);
  w.Field("git_hash", build.git_hash);
  w.Field("compiler", build.compiler);
  w.Field("build_type", build.build_type);
  w.Field("dropped_events", DroppedCount());
  w.EndObject();

  w.Key("traceEvents");
  w.BeginArray();
  Registry& registry = GetRegistry();
  const std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& buffer : registry.buffers) {
    const size_t count = buffer->count.load(std::memory_order_acquire);
    for (size_t i = 0; i < count; ++i) {
      const TraceEvent& e = buffer->events[i];
      w.BeginObject();
      w.Field("name", e.name);
      w.Field("cat", "trilist");
      w.Field("ph", "X");
      w.Field("pid", 1);
      w.Field("tid", static_cast<int64_t>(buffer->tid));
      // Chrome expects microseconds; three decimals keep ns resolution.
      w.FieldDouble("ts", static_cast<double>(e.start_ns) / 1e3, 3);
      w.FieldDouble("dur", static_cast<double>(e.dur_ns) / 1e3, 3);
      if (e.num_args > 0) {
        w.Key("args");
        w.BeginObject();
        for (int a = 0; a < e.num_args; ++a) {
          const TraceArg& arg = e.args[a];
          if (arg.str != nullptr) {
            w.Field(arg.key, arg.str);
          } else {
            w.Field(arg.key, arg.num);
          }
        }
        w.EndObject();
      }
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).Finish();
}

Status Tracer::WriteChromeJson(const std::string& path) {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::Internal("short write: " + path);
  }
  return Status::OK();
}

}  // namespace trilist::obs
