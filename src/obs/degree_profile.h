#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/algo/op_hook.h"
#include "src/graph/oriented_graph.h"
#include "src/util/json_writer.h"

/// \file degree_profile.h
/// Degree-bucketed model-residual histograms: the observability bridge
/// between the paper's closed-form per-node cost g(d_i) h(q_i)
/// (Proposition 4) and the operations a kernel actually executed.
///
/// A profiling run attaches a NodeOpsRecorder to one of the 18 kernels
/// (see op_hook.h for the attribution rules), then BuildDegreeProfile
/// groups nodes into log2 degree buckets and accumulates, per bucket:
///
///   measured   sum of hook-recorded ops over nodes in the bucket
///   predicted  sum of g(d_i) h_M(q_i) with q_i = X_i / d_i realized
///
/// The relative residual (measured - predicted) / predicted per bucket is
/// the paper's model error localized by degree: a heavy-tailed graph whose
/// high-degree buckets drift exposes exactly where the asymptotic model
/// stops describing the finite-n workload.
///
/// Bucketing: bucket 0 holds d <= 0 (isolated nodes), bucket k >= 1 holds
/// d in [2^(k-1), 2^k - 1]. So d = 1 -> bucket 1, d = 2,3 -> bucket 2,
/// d = 4..7 -> bucket 3, and so on.

namespace trilist::obs {

/// Log2 bucket index of a total degree (see file comment for boundaries).
int DegreeBucketIndex(int64_t d);

/// Inclusive degree range [min, max] covered by a bucket index.
int64_t BucketMinDegree(int bucket);
int64_t BucketMaxDegree(int bucket);

/// \brief Hook that accumulates per-node measured operations.
///
/// Single-threaded by design: RunMethodProfiled always runs serial, so
/// Record needs no synchronization.
class NodeOpsRecorder final : public NodeOpsHook {
 public:
  explicit NodeOpsRecorder(size_t num_nodes) : ops_(num_nodes, 0) {}

  void Record(NodeId v, int64_t ops) override { ops_[v] += ops; }

  const std::vector<int64_t>& ops() const { return ops_; }
  int64_t Total() const;

 private:
  std::vector<int64_t> ops_;
};

/// One log2-degree bucket of the residual histogram.
struct DegreeBucket {
  int bucket = 0;            ///< log2 bucket index
  int64_t d_min = 0;         ///< smallest degree the bucket covers
  int64_t d_max = 0;         ///< largest degree the bucket covers
  int64_t nodes = 0;         ///< population of the bucket
  int64_t measured_ops = 0;  ///< hook-recorded operations
  double predicted_ops = 0;  ///< sum g(d_i) h_M(q_i)

  /// (measured - predicted) / predicted; 0 when both sides are ~0, and
  /// measured itself when only the prediction vanishes (g(0)=g(1)=0
  /// buckets always have measured 0 too, so this is a degenerate guard).
  double Residual() const;
};

/// Degree-bucketed measured-vs-model histogram for one method.
struct DegreeProfile {
  Method method = Method::kT1;
  std::vector<DegreeBucket> buckets;  ///< dense, index == bucket
  int64_t total_measured = 0;
  double total_predicted = 0;

  double TotalResidual() const;
};

/// Groups `node_ops` (indexed by label, as filled by NodeOpsRecorder) into
/// log2 total-degree buckets and pairs each with the closed-form
/// prediction g(d_i) h_M(q_i) evaluated on the realized orientation.
DegreeProfile BuildDegreeProfile(Method m, const OrientedGraph& g,
                                 const std::vector<int64_t>& node_ops);

/// Appends the profile as a JSON object on `w` (deterministic layout,
/// golden-testable; used by the run-report v2 exporter).
void AppendDegreeProfileJson(const DegreeProfile& profile, JsonWriter* w);

/// Renders the per-bucket table the CLI prints under --degree-profile.
std::string DegreeProfileTable(const DegreeProfile& profile);

}  // namespace trilist::obs
