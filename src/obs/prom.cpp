#include "src/obs/prom.h"

#include <cmath>
#include <cstdio>

#include "src/obs/degree_profile.h"

namespace trilist::obs {

namespace {

/// Prometheus sample values: integral doubles render without a fraction,
/// everything else with 9 significant digits — stable across platforms.
std::string FormatValue(double v) {
  if (!std::isfinite(v)) {
    if (std::isnan(v)) return "NaN";
    return v > 0 ? "+Inf" : "-Inf";
  }
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Escapes a label value per the exposition format.
void AppendEscaped(std::string* out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

}  // namespace

void PromWriter::Declare(std::string_view name, std::string_view help,
                         std::string_view type) {
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  out_ += help;
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PromWriter::Gauge(std::string_view name, std::string_view help) {
  Declare(name, help, "gauge");
}

void PromWriter::Counter(std::string_view name, std::string_view help) {
  Declare(name, help, "counter");
}

void PromWriter::Histogram(std::string_view name, std::string_view help) {
  Declare(name, help, "histogram");
}

void PromWriter::Sample(std::string_view name,
                        const std::vector<PromLabel>& labels, double value) {
  out_ += name;
  if (!labels.empty()) {
    out_ += '{';
    bool first = true;
    for (const PromLabel& label : labels) {
      if (!first) out_ += ',';
      first = false;
      out_ += label.first;
      out_ += "=\"";
      AppendEscaped(&out_, label.second);
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  out_ += FormatValue(value);
  out_ += '\n';
}

std::string PromWriter::Finish() && { return std::move(out_); }

std::string RunReportToPrometheus(const RunReport& report) {
  PromWriter w;

  w.Gauge("trilist_build_info",
          "Build provenance; value is always 1, identity is in the labels");
  w.Sample("trilist_build_info",
           {{"version", report.build_version},
            {"git_hash", report.build_git_hash},
            {"compiler", report.build_compiler},
            {"build_type", report.build_type}},
           1.0);

  w.Gauge("trilist_graph_nodes", "Nodes in the listed graph");
  w.Sample("trilist_graph_nodes", static_cast<double>(report.num_nodes));
  w.Gauge("trilist_graph_edges", "Undirected edges in the listed graph");
  w.Sample("trilist_graph_edges", static_cast<double>(report.num_edges));

  w.Gauge("trilist_run_threads", "Resolved worker thread count of the run");
  w.Sample("trilist_run_threads", static_cast<double>(report.threads));

  w.Gauge("trilist_stage_wall_seconds",
          "Accumulated wall seconds per pipeline stage");
  for (const StageSample& s : report.stages.stages()) {
    w.Sample("trilist_stage_wall_seconds", {{"stage", s.name}}, s.wall_s);
  }

  w.Counter("trilist_method_triangles_total", "Triangles listed per method");
  for (const MethodReport& m : report.methods) {
    w.Sample("trilist_method_triangles_total",
             {{"method", MethodName(m.method)}},
             static_cast<double>(m.triangles));
  }

  w.Counter("trilist_method_paper_cost_ops_total",
            "Measured paper-metric operations per method");
  for (const MethodReport& m : report.methods) {
    w.Sample("trilist_method_paper_cost_ops_total",
             {{"method", MethodName(m.method)}},
             static_cast<double>(m.ops.PaperCost()));
  }

  w.Gauge("trilist_method_formula_cost_ops",
          "Closed-form cost on the realized orientation per method");
  for (const MethodReport& m : report.methods) {
    w.Sample("trilist_method_formula_cost_ops",
             {{"method", MethodName(m.method)}}, m.formula_cost);
  }

  w.Gauge("trilist_method_wall_seconds",
          "Best listing wall time per method across repeats");
  for (const MethodReport& m : report.methods) {
    w.Sample("trilist_method_wall_seconds",
             {{"method", MethodName(m.method)}}, m.wall_s);
  }

  if (!report.degree_profiles.empty()) {
    w.Gauge("trilist_degree_bucket_measured_ops",
            "Hook-measured operations per log2-degree bucket");
    for (const DegreeProfile& p : report.degree_profiles) {
      for (const DegreeBucket& b : p.buckets) {
        w.Sample("trilist_degree_bucket_measured_ops",
                 {{"method", MethodName(p.method)},
                  {"bucket", std::to_string(b.bucket)}},
                 static_cast<double>(b.measured_ops));
      }
    }
    w.Gauge("trilist_degree_bucket_predicted_ops",
            "Model-predicted g(d)h(q) operations per log2-degree bucket");
    for (const DegreeProfile& p : report.degree_profiles) {
      for (const DegreeBucket& b : p.buckets) {
        w.Sample("trilist_degree_bucket_predicted_ops",
                 {{"method", MethodName(p.method)},
                  {"bucket", std::to_string(b.bucket)}},
                 b.predicted_ops);
      }
    }
    w.Gauge("trilist_degree_bucket_residual",
            "Relative model residual per log2-degree bucket");
    for (const DegreeProfile& p : report.degree_profiles) {
      for (const DegreeBucket& b : p.buckets) {
        w.Sample("trilist_degree_bucket_residual",
                 {{"method", MethodName(p.method)},
                  {"bucket", std::to_string(b.bucket)}},
                 b.Residual());
      }
    }
  }

  w.Gauge("trilist_peak_rss_bytes", "Peak resident set size of the process");
  w.Sample("trilist_peak_rss_bytes",
           static_cast<double>(report.peak_rss_bytes));
  w.Counter("trilist_cpu_seconds_total",
            "CPU seconds (user+system) consumed by the run");
  w.Sample("trilist_cpu_seconds_total", report.cpu_s);
  w.Gauge("trilist_utilization_ratio",
          "CPU seconds / (wall * threads) across the run");
  w.Sample("trilist_utilization_ratio", report.utilization);

  return std::move(w).Finish();
}

}  // namespace trilist::obs
