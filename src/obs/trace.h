#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/util/status.h"

/// \file trace.h
/// Low-overhead span tracer for the whole pipeline, flushed as Chrome
/// trace-event JSON (loadable in Perfetto or chrome://tracing).
///
/// ## Model
/// A span is one complete event `{name, tid, t_start, dur, args}` (Chrome
/// phase "X"). Spans are recorded by the RAII TraceSpan class — or the
/// TRILIST_TRACE_SPAN macro — at every interesting boundary: Runner
/// stages, each listing method, every parallel-engine chunk (shard id,
/// vertex range, measured ops), ingest parse chunks and the orientation
/// build. Span names must be string literals (or otherwise outlive the
/// tracer session): events store the pointer, not a copy, which is what
/// keeps recording allocation-free.
///
/// ## Overhead discipline
/// Tracing is off by default. A span site on the disabled path costs one
/// relaxed atomic load and a branch — measured at well under 1% of any
/// listing workload by bench_obs_overhead, which CI smoke-runs. When
/// enabled, each thread appends into its own fixed-capacity ring buffer
/// with no locks and no allocation (single-writer; the flusher reads
/// completed prefixes via acquire loads), so enabled-path overhead stays
/// under the 5% budget. When a buffer fills, further events on that
/// thread are counted as dropped rather than blocking the worker.
///
/// Defining TRILIST_TRACING=0 at compile time removes every span site
/// entirely (TraceSpan becomes an empty shell the optimizer deletes);
/// the default build keeps them compiled in and runtime-gated.

#ifndef TRILIST_TRACING
#define TRILIST_TRACING 1
#endif

namespace trilist::obs {

/// One span argument: a static-string key with either a numeric or a
/// static-string value (str == nullptr means numeric).
struct TraceArg {
  const char* key = nullptr;
  const char* str = nullptr;
  int64_t num = 0;
};

/// One completed span. Plain data; copied into the ring buffer whole.
struct TraceEvent {
  static constexpr int kMaxArgs = 4;
  const char* name = nullptr;  ///< static string; nullptr = not recording.
  uint64_t start_ns = 0;       ///< relative to the tracer epoch.
  uint64_t dur_ns = 0;
  int num_args = 0;
  TraceArg args[kMaxArgs];
};

/// \brief Process-wide trace collector: per-thread ring buffers behind a
/// single runtime switch.
///
/// All members are static — the tracer is inherently a process singleton
/// (threads are process-wide, and the Chrome JSON artifact describes one
/// process). Enable/Clear/ToChromeJson are not safe to race with each
/// other, but recording (TraceSpan on any thread) is always safe against
/// all of them.
class Tracer {
 public:
  /// Events each thread can hold per session; further spans are dropped
  /// (and counted) instead of blocking or reallocating.
  static constexpr size_t kEventsPerThread = 1 << 14;

  /// Turns recording on. Spans opened before Enable are not recorded.
  static void Enable();
  /// Turns recording off; already recorded events are kept for flushing.
  static void Disable();
  /// True when spans are being recorded (relaxed; the fast-path check).
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Discards all recorded events and drop counts and restarts the time
  /// epoch. Thread buffers stay registered (worker pools keep their ids).
  static void Clear();

  /// Number of recorded (not dropped) events across all threads.
  static size_t EventCount();
  /// Number of events dropped because a thread's buffer was full.
  static uint64_t DroppedCount();

  /// The complete Chrome trace-event document: {"displayTimeUnit",
  /// "otherData" (build provenance + drop counter), "traceEvents": [...]}.
  /// Timestamps are microseconds with nanosecond resolution, relative to
  /// the epoch of the last Enable/Clear.
  static std::string ToChromeJson();

  /// Writes ToChromeJson() to `path`.
  static Status WriteChromeJson(const std::string& path);

  /// Appends a fully specified event to the calling thread's buffer even
  /// when disabled — lets tests build deterministic traces.
  static void AppendForTest(const TraceEvent& event);

  /// Nanoseconds since the tracer epoch (steady clock).
  static uint64_t NowNs();

 private:
  friend class TraceSpan;
  /// Copies `event` into the calling thread's ring buffer.
  static void Commit(const TraceEvent& event);

  static std::atomic<bool> enabled_;
};

#if TRILIST_TRACING

/// \brief RAII span: captures the start time at construction (when the
/// tracer is enabled) and commits the completed event at destruction.
/// Args attached between the two are emitted into the event's "args"
/// object. All strings must be static.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Enabled()) {
      event_.name = name;
      event_.start_ns = Tracer::NowNs();
    }
  }
  ~TraceSpan() {
    if (event_.name != nullptr) {
      event_.dur_ns = Tracer::NowNs() - event_.start_ns;
      Tracer::Commit(event_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric argument (ignored when not recording or full).
  void Arg(const char* key, int64_t value) {
    if (event_.name != nullptr && event_.num_args < TraceEvent::kMaxArgs) {
      event_.args[event_.num_args++] = TraceArg{key, nullptr, value};
    }
  }
  /// Attaches a static-string argument.
  void Arg(const char* key, const char* value) {
    if (event_.name != nullptr && event_.num_args < TraceEvent::kMaxArgs) {
      event_.args[event_.num_args++] = TraceArg{key, value, 0};
    }
  }

 private:
  TraceEvent event_;
};

#else  // !TRILIST_TRACING: span sites compile to nothing.

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  void Arg(const char*, int64_t) {}
  void Arg(const char*, const char*) {}
};

#endif  // TRILIST_TRACING

#define TRILIST_OBS_CONCAT_INNER(a, b) a##b
#define TRILIST_OBS_CONCAT(a, b) TRILIST_OBS_CONCAT_INNER(a, b)

/// Anonymous scoped span: TRILIST_TRACE_SPAN("order"); traces the rest of
/// the enclosing scope. Use a named TraceSpan when attaching args.
#define TRILIST_TRACE_SPAN(name)                                      \
  ::trilist::obs::TraceSpan TRILIST_OBS_CONCAT(trilist_trace_span_,   \
                                               __LINE__)(name)

}  // namespace trilist::obs
