#include "src/gen/erdos_renyi.h"

#include <cmath>
#include <vector>

#include "src/util/flat_hash_set.h"
#include "src/util/status.h"

namespace trilist {

Graph GenerateGnp(size_t n, double p, Rng* rng) {
  TRILIST_DCHECK(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (p > 0.0 && n >= 2) {
    // Enumerate pairs (u, v), u < v, in lexicographic order and jump
    // geometrically between successes.
    const double log1mp = std::log1p(-p);
    uint64_t idx = 0;  // linear index into the C(n,2) pair space
    const uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
    if (p >= 1.0) {
      for (size_t u = 0; u < n; ++u) {
        for (size_t v = u + 1; v < n; ++v) {
          edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
        }
      }
      return Graph::FromEdges(n, edges).ValueOrDie();
    }
    while (true) {
      // Geometric gap between successive edges: floor(ln U / ln(1-p)).
      const double unif = 1.0 - rng->NextDouble();  // in (0, 1]
      const double skip = std::floor(std::log(unif) / log1mp);
      idx += static_cast<uint64_t>(skip) + 1;
      if (idx > total) break;
      // Convert linear index (1-based) back to the pair (u, v).
      const uint64_t k = idx - 1;
      // Row u satisfies offset(u) <= k < offset(u+1) where
      // offset(u) = u*n - u(u+3)/2 ... solve via the quadratic formula.
      const double nn = static_cast<double>(n);
      auto u = static_cast<uint64_t>(std::floor(
          nn - 0.5 - std::sqrt((nn - 0.5) * (nn - 0.5) - 2.0 *
                               static_cast<double>(k))));
      auto offset = [&](uint64_t row) {
        return row * n - row * (row + 1) / 2;
      };
      while (u > 0 && offset(u) > k) --u;
      while (offset(u + 1) <= k) ++u;
      const uint64_t v = u + 1 + (k - offset(u));
      edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return Graph::FromEdges(n, edges).ValueOrDie();
}

Graph GenerateGnm(size_t n, size_t m, Rng* rng) {
  [[maybe_unused]] const uint64_t total =
      n < 2 ? 0 : static_cast<uint64_t>(n) * (n - 1) / 2;
  TRILIST_DCHECK(m <= total);
  FlatHashSet64 seen(m);
  std::vector<Edge> edges;
  edges.reserve(m);
  while (edges.size() < m) {
    auto u = static_cast<NodeId>(rng->NextBounded(n));
    auto v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (seen.Insert(key)) edges.emplace_back(u, v);
  }
  return Graph::FromEdges(n, edges).ValueOrDie();
}

}  // namespace trilist
