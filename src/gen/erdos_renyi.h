#pragma once

#include <cstddef>

#include "src/graph/graph.h"
#include "src/util/rng.h"

/// \file erdos_renyi.h
/// Classical random graphs. Not a subject of the paper's analysis, but the
/// test suite and examples use them as neutral inputs with well-understood
/// triangle counts (E[#triangles] = C(n,3) p^3 in G(n,p)).

namespace trilist {

/// G(n, p): every pair independently connected with probability p.
/// Uses geometric skip sampling, O(n + m) expected time.
Graph GenerateGnp(size_t n, double p, Rng* rng);

/// G(n, m): m distinct edges uniformly at random. O(m) expected time.
/// Precondition: m <= C(n, 2).
Graph GenerateGnm(size_t n, size_t m, Rng* rng);

}  // namespace trilist
