#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

/// \file configuration_model.h
/// The traditional stub-matching generator (Bender-Canfield / Molloy-Reed;
/// Section 7.2). Place d_i stubs per node, match uniformly at random, then
/// delete self-loops and duplicate edges to obtain a simple graph.
///
/// The paper points out this simplification visibly *under-realizes* large
/// degrees when Pareto alpha < 2 with linear truncation, which is why the
/// evaluation uses the residual-degree generator (residual_generator.h)
/// instead. We keep the configuration model as the baseline so the
/// degree-shortfall effect itself can be measured (see
/// tests/gen and the EXPERIMENTS notes).

namespace trilist {

/// Statistics of one configuration-model run.
struct ConfigModelStats {
  int64_t self_loops_removed = 0;
  int64_t duplicates_removed = 0;
  int64_t odd_stub_dropped = 0;  ///< 1 if the degree sum was odd.

  /// Total stub shortfall: realized degree sum is
  /// sum(d_i) - 2*(self_loops + duplicates) - odd_stub.
  int64_t TotalDroppedStubs() const {
    return 2 * (self_loops_removed + duplicates_removed) + odd_stub_dropped;
  }
};

/// Runs the configuration model on `degrees`.
/// \param degrees desired degree of each node (>= 0); an odd total drops
///        one stub uniformly at random.
/// \param rng randomness source.
/// \param stats optional out-param for shortfall accounting.
/// \return a simple graph whose degrees are <= the requested ones.
Result<Graph> ConfigurationModel(const std::vector<int64_t>& degrees,
                                 Rng* rng,
                                 ConfigModelStats* stats = nullptr);

}  // namespace trilist
