#pragma once

#include <cstddef>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

/// \file preferential_attachment.h
/// Barabasi-Albert preferential attachment — the growth process behind
/// the power-law degree distributions the paper's analysis targets
/// (its introduction cites [Barabasi-Albert 99] as the reason natural
/// graphs are triangle-rich). Each arriving node attaches `m` edges to
/// existing nodes chosen proportional to their current degree, yielding a
/// degree tail with exponent ~3 (Pareto alpha ~ 2 in the paper's
/// convention). Useful as a structurally different heavy-tailed input:
/// unlike the configuration-style generators it has degree-degree
/// correlations, so model-vs-simulation gaps here illustrate what the
/// "graphs that realize D_n uniformly" assumption buys.

namespace trilist {

/// Generates a Barabasi-Albert graph.
/// \param n total nodes (>= m + 1).
/// \param m edges added per arriving node (>= 1).
/// \param rng randomness source.
/// \return simple graph with (n - m) * m edges at most (duplicate targets
///         are resampled, so exactly m distinct edges per arrival).
Result<Graph> GeneratePreferentialAttachment(size_t n, size_t m, Rng* rng);

}  // namespace trilist
