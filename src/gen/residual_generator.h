#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"
#include "src/util/status.h"

/// \file residual_generator.h
/// Exact degree-sequence realization (Section 7.2).
///
/// The configuration model under-realizes heavy-tailed sequences once
/// self-loops and duplicates are erased, so simulations would not match
/// models of E[X_i | D_n]. The paper instead uses "a variation of the
/// method from [Blitzstein-Diaconis] that picks neighbors in proportion to
/// their residual degree and excludes the already-attached neighbors",
/// implemented in n log n time with a tree recording residual probability
/// mass. This file is that generator:
///
///  * a Fenwick tree holds residual degrees; weighted sampling is O(log n);
///  * nodes are processed in descending degree order; while node i has
///    unplaced stubs, candidates are drawn proportional to residual degree
///    with i and its current neighbors temporarily zeroed out (lazily, only
///    when actually hit);
///  * if the candidate pool empties while stubs remain, an edge-rewiring
///    repair (remove (a,b) with a,b not adjacent to i; add (i,a), (i,b))
///    frees capacity without changing anyone's degree.
///
/// With the exception of possibly one stub (odd degree sum), the returned
/// graph realizes the requested sequence exactly — the property Tables 6-11
/// rely on.

namespace trilist {

/// Accounting for one generation run.
struct ResidualGenStats {
  int64_t edges_placed = 0;
  int64_t unplaced_stubs = 0;  ///< 1 for odd sums; >1 means repair gave up.
  int64_t repairs = 0;         ///< edge-rewiring operations performed.
  int64_t collisions = 0;      ///< samples rejected as already-adjacent.
};

/// Options for GenerateExactDegree.
struct ResidualGenOptions {
  /// Per-deficit cap on repair attempts before declaring the run stuck.
  int max_repair_attempts = 64;
  /// If true, a shortfall beyond the odd-sum stub is an error; if false,
  /// the (slightly deficient) graph is returned and reported in stats.
  bool strict = true;
};

/// Realizes `degrees` exactly (up to one stub when the sum is odd).
/// \param degrees desired degrees, each in [0, n-1]. Sequences should be
///        graphic (see MakeGraphic); non-graphic inputs either trigger
///        repair shortfall or a GenerationStuck error under strict mode.
/// \param rng randomness source.
/// \param stats optional accounting out-param.
/// \param options repair/strictness knobs.
Result<Graph> GenerateExactDegree(const std::vector<int64_t>& degrees,
                                  Rng* rng,
                                  ResidualGenStats* stats = nullptr,
                                  const ResidualGenOptions& options = {});

}  // namespace trilist
