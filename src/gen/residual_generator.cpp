#include "src/gen/residual_generator.h"
#ifdef TRILIST_AUG_PARANOIA
#include <cstdio>
#endif

#include <algorithm>
#include <numeric>

#include "src/util/fenwick_tree.h"
#include "src/util/flat_hash_set.h"

namespace trilist {

namespace {

uint64_t PackUndirected(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Mutable construction state shared by placement and repair.
struct BuildState {
  std::vector<int64_t> target;  // requested degrees (immutable)
  std::vector<int64_t> residual;
  FenwickTree pool;          // residual weights of eligible candidates
  FlatHashSet64 seen;        // undirected adjacency membership
  std::vector<Edge> edges;   // realized edges (order irrelevant)
  ResidualGenStats stats;

  bool Adjacent(NodeId u, NodeId v) const {
    return seen.Contains(PackUndirected(u, v));
  }

  void AddEdge(NodeId u, NodeId v) {
    seen.Insert(PackUndirected(u, v));
    edges.emplace_back(u, v);
    ++stats.edges_placed;
  }

  /// Removes the edge at `pos` by swap-with-back.
  void RemoveEdgeAt(size_t pos) {
    const Edge e = edges[pos];
    seen.Erase(PackUndirected(e.first, e.second));
    edges[pos] = edges.back();
    edges.pop_back();
    --stats.edges_placed;
  }
};

/// Attempts edge-rewiring so node i can place `want` (1 or 2) stubs even
/// though every non-neighbor's residual is zero. Returns stubs freed.
/// Applies one rewiring step using the edge at `pos` if legal; returns the
/// number of stubs freed for node i (0 if the edge does not qualify).
int64_t TryRewireAt(BuildState* st, NodeId i, int64_t want, size_t pos) {
  const Edge e = st->edges[pos];
  const NodeId a = e.first;
  const NodeId b = e.second;
  if (a == i || b == i) return 0;
  if (want >= 2) {
    // Replace (a,b) with (i,a) and (i,b): degrees of a, b unchanged,
    // i gains two.
    if (st->Adjacent(i, a) || st->Adjacent(i, b)) return 0;
    st->RemoveEdgeAt(pos);
    st->AddEdge(i, a);
    st->AddEdge(i, b);
    ++st->stats.repairs;
    return 2;
  }
  // want == 1: replace (a,b) with (i,a); b's freed stub re-enters the
  // pool for later consumers (or the cleanup pass).
  NodeId keep = a;
  NodeId release = b;
  if (st->Adjacent(i, keep)) {
    std::swap(keep, release);
    if (st->Adjacent(i, keep)) return 0;
  } else if (!st->Adjacent(i, release) &&
             st->target[release] > st->target[keep]) {
    // Both endpoints qualify: park the released stub on the less
    // saturated (lower-degree) node — deficits on nearly-complete hubs
    // are the hardest to repair later.
    std::swap(keep, release);
  }
  st->RemoveEdgeAt(pos);
  st->AddEdge(i, keep);
  ++st->residual[release];
  // `release` may currently be zeroed as a neighbor of i; only expose it
  // in the pool if it is not adjacent to i and is not i itself.
  if (release != i && !st->Adjacent(i, release)) {
    st->pool.Set(release, st->residual[release]);
  }
  ++st->stats.repairs;
  return 1;
}

int64_t Rewire(BuildState* st, NodeId i, int64_t want, Rng* rng,
               int max_attempts) {
  if (st->edges.empty()) return 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const size_t pos = rng->NextBounded(st->edges.size());
    const int64_t freed = TryRewireAt(st, i, want, pos);
    if (freed > 0) return freed;
  }
  // Random probing failed (node i may be adjacent to nearly everything):
  // deterministic sweep from a random start so a qualifying edge is found
  // whenever one exists.
  const size_t start = rng->NextBounded(st->edges.size());
  for (size_t off = 0; off < st->edges.size(); ++off) {
    const size_t pos = (start + off) % st->edges.size();
    const int64_t freed = TryRewireAt(st, i, want, pos);
    if (freed > 0) return freed;
  }
  // No edge qualifies for `want`; a 2-stub request may still be served by
  // two independent 1-stub moves, which the caller retries.
  if (want >= 2) return Rewire(st, i, 1, rng, max_attempts);
  return 0;
}

/// Places all remaining stubs of node i. The pool must exclude i on entry
/// (caller zeroes it); neighbors are zeroed lazily as they are hit and
/// restored before returning.
void PlaceNode(BuildState* st, NodeId i, Rng* rng,
               const ResidualGenOptions& options) {
  int64_t remaining = st->residual[i];
  if (remaining <= 0) return;
  std::vector<NodeId> zeroed;  // neighbors temporarily removed from pool
  auto exclude = [&](NodeId j) {
    st->pool.Set(j, 0);
    zeroed.push_back(j);
  };
  int stuck_rounds = 0;
  while (remaining > 0) {
    const int64_t total = st->pool.Total();
    if (total <= 0) {
      const int64_t freed =
          Rewire(st, i, remaining, rng, options.max_repair_attempts);
      if (freed == 0) {
        if (++stuck_rounds > 4) break;  // unplaceable; report shortfall
        continue;
      }
      stuck_rounds = 0;
      remaining -= freed;
      continue;
    }
    const auto j = static_cast<NodeId>(
        st->pool.SampleIndex(static_cast<int64_t>(
            rng->NextBounded(static_cast<uint64_t>(total)))));
    if (st->Adjacent(i, j)) {
      ++st->stats.collisions;
      exclude(j);
      continue;
    }
    st->AddEdge(i, j);
    --st->residual[j];
    --remaining;
    // j is now adjacent: keep it out of the pool for the rest of i.
    exclude(j);
  }
  st->residual[i] = remaining;
  // Restore true weights (exclusions apply only while i is active).
  for (NodeId j : zeroed) st->pool.Set(j, st->residual[j]);
}

/// General deficit repair via alternating-path augmentation.
///
/// To give one extra stub to a deficient node i, search (BFS) for a
/// vertex-disjoint alternating path
///   i ~ v1 (add), (v1, w1) remove, w1 ~ v2 (add), (v2, w2) remove, ...
/// ending either at another deficient node t (entered by an add edge) or,
/// when i itself still needs two stubs, back at i by closing the cycle
/// with a final add edge. Interior vertices keep their degree; i (and t)
/// gain one each. This is the textbook augmentation for the
/// degree-constrained subgraph problem and succeeds in cases where
/// single- or double-edge rewiring cannot (e.g. several mutually adjacent
/// hubs short of a few stubs each). One BFS costs O(n + m) amortized: the
/// unvisited pool is a linked list, so every alive-scan either consumes a
/// node for good or charges an adjacency test to the expanding endpoint.
class DeficitAugmenter {
 public:
  DeficitAugmenter(BuildState* st, std::vector<std::vector<NodeId>>* adj,
                   Rng* rng)
      : st_(st), adj_(adj), rng_(rng), n_(st->residual.size()) {}

  /// Attempts one augmentation rooted at deficient node i; true on
  /// success (total deficit decreased by exactly 2).
  ///
  /// Two-state BFS: a node may be reached once in the "add" role (it was
  /// connected by a new edge and must shed one of its edges) and once in
  /// the "endpoint" role (one of its edges was removed and it must gain a
  /// new one). Allowing both roles is what makes long augmentations
  /// through densely saturated hubs possible; the rare path that would
  /// touch the same *edge pair* twice is detected at reconstruction and
  /// rejected.
  bool AugmentFrom(NodeId i) {
    const auto n = static_cast<NodeId>(n_);
    std::vector<NodeId> pred_add(n_, n);   // v -> endpoint that added v
    std::vector<NodeId> pred_rem(n_, n);   // w -> add-node whose edge fell
    std::vector<bool> add_visited(n_, false);
    std::vector<bool> end_visited(n_, false);
    // Doubly linked list over add-unvisited nodes (add-edge expansion),
    // threaded in random order so that a failed (conflicting) search can
    // be retried along a different BFS tree.
    std::vector<NodeId> shuffled(n_);
    for (size_t v = 0; v < n_; ++v) shuffled[v] = static_cast<NodeId>(v);
    for (size_t v = n_; v > 1; --v) {
      std::swap(shuffled[v - 1], shuffled[rng_->NextBounded(v)]);
    }
    std::vector<NodeId> next(n_ + 1);
    std::vector<NodeId> prev(n_ + 1);
    NodeId cursor = n;  // sentinel
    for (const NodeId v : shuffled) {
      next[cursor] = v;
      prev[v] = cursor;
      cursor = v;
    }
    next[cursor] = n;
    prev[n] = cursor;
    auto drop = [&](NodeId v) {
      next[prev[v]] = next[v];
      prev[next[v]] = prev[v];
    };
    add_visited[i] = true;
    end_visited[i] = true;
    drop(i);

    const bool wants_two = st_->residual[i] >= 2;
    std::vector<NodeId> queue = {i};
    size_t head = 0;
    NodeId target = n;       // deficient node reached by an add edge
    NodeId cycle_end = n;    // endpoint closing a cycle back to i
    while (head < queue.size() && target == n && cycle_end == n) {
      const NodeId u = queue[head++];
      if (wants_two && u != i && !st_->Adjacent(i, u)) {
        cycle_end = u;
        break;
      }
      // Expand add edges u ~ v over the add-unvisited pool. Note u itself
      // may still be add-unvisited (the two roles are tracked
      // separately): skip it, a node cannot gain an edge to itself.
      for (NodeId v = next[n]; v != n && target == n;) {
        const NodeId following = next[v];
        if (v != u && !st_->Adjacent(u, v)) {
          add_visited[v] = true;
          drop(v);
          pred_add[v] = u;
          if (st_->residual[v] > 0) {
            target = v;
            break;
          }
          // v must shed one edge: every neighbor becomes an endpoint
          // candidate. Deficient nodes never serve as interior endpoints
          // (they must stay available as targets).
          for (const NodeId w : (*adj_)[v]) {
            if (end_visited[w] || st_->residual[w] > 0) continue;
            end_visited[w] = true;
            pred_rem[w] = v;
            queue.push_back(w);
          }
        }
        v = following;
      }
    }
    if (target == n && cycle_end == n) return false;

    // Reconstruct the op list and verify no edge pair is touched twice
    // (possible only when a node plays both roles in one path).
    std::vector<Edge> adds;
    std::vector<Edge> removes;
    NodeId endpoint;
    if (target != n) {
      adds.emplace_back(pred_add[target], target);
      endpoint = pred_add[target];
    } else {
      adds.emplace_back(cycle_end, i);
      endpoint = cycle_end;
    }
    while (endpoint != i) {
      const NodeId v = pred_rem[endpoint];
      removes.emplace_back(v, endpoint);
      const NodeId u = pred_add[v];
      adds.emplace_back(u, v);
      endpoint = u;
    }
    FlatHashSet64 touched(adds.size() + removes.size());
    for (const Edge& e : adds) {
      if (!touched.Insert(PackUndirected(e.first, e.second))) {
        return false;  // pair touched twice: reject, caller retries
      }
    }
    for (const Edge& e : removes) {
      if (!touched.Insert(PackUndirected(e.first, e.second))) {
        return false;  // pair touched twice: reject, caller retries
      }
    }

    for (const Edge& e : removes) RemoveEdge(e.first, e.second);
    for (const Edge& e : adds) AddEdge(e.first, e.second);
#ifdef TRILIST_AUG_PARANOIA
    {
      auto check = [&](NodeId x, const char* role) {
        // degree identity: adj degree + residual must equal target after
        // the residual updates below; here residuals not yet updated for
        // i/target, account for that.
        (void)role;
        int64_t expect = st_->target[x] - st_->residual[x];
        if (x == i) expect += 1;
        if (target != n && x == target) expect += 1;
        if (target == n && x == i) expect += 1;  // cycle: i gains 2
        if (static_cast<int64_t>((*adj_)[x].size()) != expect) {
          std::fprintf(stderr,
                       "PARANOIA %s node=%u adj=%zu expect=%ld adds=%zu\n",
                       role, x, (*adj_)[x].size(), expect, adds.size());
        }
      };
      for (const Edge& e : adds) { check(e.first, "add"); check(e.second, "add2"); }
      for (const Edge& e : removes) { check(e.first, "rem"); check(e.second, "rem2"); }
    }
#endif
    --st_->residual[i];
    if (target != n) {
      --st_->residual[target];
    } else {
      --st_->residual[i];  // the cycle gave i its second stub
    }
    st_->stats.repairs += 1;
    return true;
  }

 private:
  void AddEdge(NodeId u, NodeId v) {
    st_->seen.Insert(PackUndirected(u, v));
    (*adj_)[u].push_back(v);
    (*adj_)[v].push_back(u);
  }

  void RemoveEdge(NodeId u, NodeId v) {
    st_->seen.Erase(PackUndirected(u, v));
    auto& au = (*adj_)[u];
    au.erase(std::find(au.begin(), au.end(), v));
    auto& av = (*adj_)[v];
    av.erase(std::find(av.begin(), av.end(), u));
  }

  BuildState* st_;
  std::vector<std::vector<NodeId>>* adj_;
  Rng* rng_;
  size_t n_;
};

/// Final authoritative repair: while more than `allowed` stubs are
/// missing, run alternating-path augmentations from deficient nodes. Each
/// success reduces the total deficit by exactly 2; a full pass with no
/// success terminates (at that point no vertex-disjoint augmenting path
/// exists). The edge vector is rebuilt from adjacency lists afterwards.
void ResolveDeficits(BuildState* st, Rng* rng, int64_t allowed) {
  const size_t n = st->residual.size();
  auto total_deficit = [&]() {
    int64_t deficit = 0;
    for (size_t v = 0; v < n; ++v) deficit += st->residual[v];
    return deficit;
  };
  if (total_deficit() <= allowed) return;

  std::vector<std::vector<NodeId>> adj(n);
  for (const Edge& e : st->edges) {
    adj[e.first].push_back(e.second);
    adj[e.second].push_back(e.first);
  }
  DeficitAugmenter augmenter(st, &adj, rng);
  bool progress = true;
  while (progress && total_deficit() > allowed) {
    progress = false;
    for (size_t v = 0; v < n && total_deficit() > allowed; ++v) {
      while (st->residual[v] > 0) {
        // A rejected (conflicting) search may succeed along a different
        // random BFS tree; give each stub a few attempts.
        bool done = false;
        for (int attempt = 0; attempt < 4 && !done; ++attempt) {
          done = augmenter.AugmentFrom(static_cast<NodeId>(v));
        }
        if (!done) break;
        progress = true;
        if (total_deficit() <= allowed) break;
      }
    }
  }

  // Rebuild the edge vector from adjacency lists.
  st->edges.clear();
  for (size_t u = 0; u < n; ++u) {
    for (const NodeId v : adj[u]) {
      if (v > u) {
        st->edges.emplace_back(static_cast<NodeId>(u), v);
      }
    }
  }
  st->stats.edges_placed = static_cast<int64_t>(st->edges.size());
}

}  // namespace

Result<Graph> GenerateExactDegree(const std::vector<int64_t>& degrees,
                                  Rng* rng, ResidualGenStats* stats,
                                  const ResidualGenOptions& options) {
  const size_t n = degrees.size();
  int64_t sum = 0;
  for (int64_t d : degrees) {
    if (d < 0 || d > static_cast<int64_t>(n) - 1) {
      return Status::InvalidArgument(
          "degree out of range [0, n-1]: " + std::to_string(d));
    }
    sum += d;
  }

  BuildState st;
  st.target = degrees;
  st.residual = degrees;
  st.pool = FenwickTree(degrees);
  st.seen.Reserve(static_cast<size_t>(sum / 2 + 1));
  st.edges.reserve(static_cast<size_t>(sum / 2));

  // Descending-degree processing keeps hub-hub edges early, which both
  // matches the heavy-tail structure and minimizes repair work.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degrees[a] != degrees[b]) return degrees[a] > degrees[b];
    return a < b;
  });

  for (NodeId i : order) {
    if (st.residual[i] <= 0) continue;
    st.pool.Set(i, 0);  // a node never connects to itself
    PlaceNode(&st, i, rng, options);
    st.pool.Set(i, st.residual[i]);
  }

  // Cleanup rounds: 1-stub rewires can push deficits onto nodes that were
  // already processed; sweep until the total deficit stops shrinking.
  const int64_t allowed_shortfall = (sum % 2 == 0) ? 0 : 1;
  auto total_deficit = [&]() {
    int64_t deficit = 0;
    for (size_t v = 0; v < n; ++v) deficit += st.residual[v];
    return deficit;
  };
  for (int round = 0; round < 8; ++round) {
    const int64_t before = total_deficit();
    if (before <= allowed_shortfall) break;
    for (NodeId i : order) {
      if (st.residual[i] <= 0) continue;
      st.pool.Set(i, 0);
      PlaceNode(&st, i, rng, options);
      st.pool.Set(i, st.residual[i]);
    }
    if (total_deficit() >= before) break;  // no progress
  }
  if (total_deficit() > allowed_shortfall) {
    ResolveDeficits(&st, rng, allowed_shortfall);
  }

  const int64_t unplaced = total_deficit();
  st.stats.unplaced_stubs = unplaced;
  if (options.strict && unplaced > allowed_shortfall) {
    return Status::GenerationStuck(
        "could not realize degree sequence; unplaced stubs = " +
        std::to_string(unplaced));
  }
  if (stats != nullptr) *stats = st.stats;
  return Graph::FromEdges(n, st.edges);
}

}  // namespace trilist
