#include "src/gen/preferential_attachment.h"

#include <vector>

#include "src/util/flat_hash_set.h"

namespace trilist {

Result<Graph> GeneratePreferentialAttachment(size_t n, size_t m, Rng* rng) {
  if (m < 1) return Status::InvalidArgument("m must be >= 1");
  if (n < m + 1) {
    return Status::InvalidArgument("need n >= m + 1 nodes");
  }
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge contributes both endpoints to `stubs`, so a uniform draw from it
  // is a draw proportional to degree.
  std::vector<NodeId> stubs;
  stubs.reserve(2 * n * m);
  std::vector<Edge> edges;
  edges.reserve(n * m);
  auto add_edge = [&](NodeId u, NodeId v) {
    edges.emplace_back(u, v);
    stubs.push_back(u);
    stubs.push_back(v);
  };
  // Seed: a star over the first m + 1 nodes (every node needs degree > 0
  // before it can attract attachments).
  for (size_t v = 1; v <= m; ++v) {
    add_edge(static_cast<NodeId>(0), static_cast<NodeId>(v));
  }
  FlatHashSet64 picked;  // targets already chosen by the current arrival
  for (size_t v = m + 1; v < n; ++v) {
    picked.Clear();
    size_t placed = 0;
    while (placed < m) {
      const NodeId target = stubs[rng->NextBounded(stubs.size())];
      if (target == v) continue;
      if (!picked.Insert(target)) continue;  // duplicate target
      add_edge(static_cast<NodeId>(v), target);
      ++placed;
    }
  }
  return Graph::FromEdges(n, edges);
}

}  // namespace trilist
