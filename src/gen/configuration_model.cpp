#include "src/gen/configuration_model.h"

#include <algorithm>

#include "src/util/flat_hash_set.h"

namespace trilist {

Result<Graph> ConfigurationModel(const std::vector<int64_t>& degrees,
                                 Rng* rng, ConfigModelStats* stats) {
  const size_t n = degrees.size();
  int64_t sum = 0;
  for (size_t v = 0; v < n; ++v) {
    if (degrees[v] < 0) {
      return Status::InvalidArgument("negative degree");
    }
    if (degrees[v] > static_cast<int64_t>(n) - 1) {
      return Status::InvalidArgument("degree exceeds n - 1");
    }
    sum += degrees[v];
  }

  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<size_t>(sum));
  for (size_t v = 0; v < n; ++v) {
    for (int64_t k = 0; k < degrees[v]; ++k) {
      stubs.push_back(static_cast<NodeId>(v));
    }
  }

  ConfigModelStats local;
  if (stubs.size() % 2 != 0) {
    // Drop one stub uniformly at random (the paper's one-edge allowance).
    const size_t victim = rng->NextBounded(stubs.size());
    std::swap(stubs[victim], stubs.back());
    stubs.pop_back();
    local.odd_stub_dropped = 1;
  }

  // Fisher-Yates over the stub array IS uniform random matching: pair
  // consecutive entries after the shuffle.
  for (size_t i = stubs.size(); i > 1; --i) {
    const size_t j = rng->NextBounded(i);
    std::swap(stubs[i - 1], stubs[j]);
  }

  FlatHashSet64 seen(stubs.size() / 2);
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    NodeId u = stubs[i];
    NodeId v = stubs[i + 1];
    if (u == v) {
      ++local.self_loops_removed;
      continue;
    }
    if (u > v) std::swap(u, v);
    const uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.Insert(key)) {
      ++local.duplicates_removed;
      continue;
    }
    edges.emplace_back(u, v);
  }
  if (stats != nullptr) *stats = local;
  return Graph::FromEdges(n, edges);
}

}  // namespace trilist
