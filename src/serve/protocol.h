#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/algo/cost.h"
#include "src/dyn/mutation_log.h"
#include "src/order/pipeline.h"
#include "src/util/status.h"

/// \file protocol.h
/// The `trilistd` wire protocol: version-stamped, length-prefixed binary
/// frames over a byte stream (TCP or Unix-domain socket).
///
/// Frame layout on the wire:
///
///   u32  payload length L (little-endian, <= kMaxFramePayload)
///   L bytes of payload:
///     u32  magic  "TLQ1" (0x31514c54 LE) — stateless resync guard
///     u16  protocol version (kProtocolVersion)
///     u16  message type (MsgType)
///     ...  message body (see the per-message structs below)
///
/// Every request frame gets exactly one response frame. Responses are
/// written in execution-completion order, which under a multi-worker or
/// shortest-job-first server may differ from request order — a client
/// keeps at most one request outstanding per connection (as ServeClient
/// does) or must tolerate reordering. Malformed frames produce a
/// kError response when the header parses, and a dropped connection when
/// it does not — a peer speaking a different protocol version is told so
/// before the socket closes.
///
/// The body codec is src/serve/wire.h: little-endian integers, IEEE-754
/// doubles, u32-length-prefixed strings, all bounds-checked on decode.

namespace trilist::serve {

inline constexpr uint32_t kFrameMagic = 0x31514c54;  // "TLQ1" LE
inline constexpr uint16_t kProtocolVersion = 1;
/// Payload cap: a forged length header may not force a large allocation.
inline constexpr uint32_t kMaxFramePayload = 64u * 1024 * 1024;

/// Message types. Requests are odd-ball grouped: kQuery/kStats/kPing/
/// kMutate come from clients; kQueryOk/kStatsOk/kPong/kMutateOk/kError
/// come from the server.
enum class MsgType : uint16_t {
  kQuery = 1,
  kQueryOk = 2,
  kError = 3,
  kStats = 4,
  kStatsOk = 5,
  kPing = 6,
  kPong = 7,
  kMutate = 8,
  kMutateOk = 9,
};

/// Error classes a server can reply with (ErrorReply::code).
enum class ErrorCode : uint16_t {
  kBadRequest = 1,  ///< malformed body, unknown method/order, bad name.
  kNotFound = 2,    ///< graph name not resolvable by the catalog.
  kOverloaded = 3,  ///< admission queue full — explicit backpressure.
  kDraining = 4,    ///< server is shutting down, no new work accepted.
  kInternal = 5,    ///< execution failed (corrupt file, engine error).
};

/// Human-readable error-code name ("overloaded", ...).
const char* ErrorCodeName(ErrorCode code);

/// \brief One triangle-listing request against a cataloged graph.
struct QueryRequest {
  std::string graph;   ///< catalog name (resolved by the server).
  OrientSpec orient{PermutationKind::kDescending, 0};
  std::vector<Method> methods{Method::kE1};
  int32_t threads = 1;  ///< per-query workers; server caps and resolves.
  int32_t repeats = 1;
};

/// \brief Per-stage wall clock echoed in a response ("load", "order",
/// "orient", "arcs", "list"). Zero wall on "load"/"order"/"orient" is
/// the observable proof that the catalog served a warm entry.
struct StageWall {
  std::string name;
  double wall_s = 0;
};

/// \brief One method's result inside a QueryResponse.
struct MethodResult {
  Method method = Method::kE1;
  uint64_t triangles = 0;
  double paper_ops = 0;     ///< measured paper-metric operation count.
  double formula_cost = 0;  ///< closed-form cost on the realized orientation.
  double wall_s = 0;        ///< best listing wall across repeats.
  bool parallel = false;
};

/// \brief Successful query result: the RunReport's serving surface.
struct QueryResponse {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  bool catalog_hit = false;         ///< graph was already resident.
  bool orientation_cached = false;  ///< (O, theta) reused, not rebuilt.
  double predicted_cost = 0;  ///< Section-3 admission estimate (ops).
  double queue_wait_s = 0;    ///< time spent queued before a worker.
  std::vector<StageWall> stages;
  std::vector<MethodResult> methods;
  std::string report_json;  ///< full RunReport JSON document.
};

/// Mutation-count cap per kMutate frame: 9 bytes per op on the wire, so
/// the cap keeps a full batch well under kMaxFramePayload while still
/// amortizing the per-frame round trip over a million edges.
inline constexpr uint32_t kMaxMutationsPerFrame = 1u << 20;

/// \brief One batched edge insert/delete request against a cataloged
/// graph. The batch is applied atomically with respect to queries: every
/// query sees either the epoch before the whole batch or the epoch after
/// it, never a prefix.
struct MutateRequest {
  std::string graph;  ///< catalog name (resolved by the server).
  std::vector<dyn::EdgeMutation> ops;
};

/// \brief Successful mutation result: the new epoch's identity plus the
/// exact maintained triangle count after the batch.
struct MutateReply {
  uint64_t epoch = 0;      ///< published-view counter after this batch.
  uint64_t seq = 0;        ///< total mutations ever applied to the graph.
  uint64_t applied_inserts = 0;
  uint64_t applied_deletes = 0;
  uint64_t noops = 0;      ///< already-present inserts / absent deletes.
  uint64_t triangles = 0;  ///< exact running count after the batch.
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t overlay_arcs = 0;  ///< delta arcs still outside the base CSR.
  uint8_t compacted = 0;      ///< this batch tripped a compaction.
  double predicted_ops = 0;   ///< Section-3 price of the batch.
  double wall_s = 0;          ///< server-side apply wall time.
};

/// \brief Error response body.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// \brief Stats response body: Prometheus text exposition of the server's
/// counters, gauges and latency histograms (see server.h).
struct StatsReply {
  std::string prometheus_text;
};

/// Builds a complete frame payload (header + body) for a bodyless
/// message (kStats, kPing, kPong).
std::string EncodeEmpty(MsgType type);
/// Frame payloads for each message kind.
std::string EncodeQueryRequest(const QueryRequest& request);
std::string EncodeQueryResponse(const QueryResponse& response);
std::string EncodeError(const ErrorReply& error);
std::string EncodeStatsReply(const StatsReply& stats);
std::string EncodeMutateRequest(const MutateRequest& request);
std::string EncodeMutateReply(const MutateReply& reply);

/// Parses a payload's frame header, verifying magic and version, and
/// leaves `*body` holding the body bytes that follow the header.
Status DecodeHeader(const std::string& payload, MsgType* type,
                    std::string* body);
/// Body decoders (input: the `body` from DecodeHeader). Each rejects
/// truncation, trailing bytes, out-of-range enums and oversized lists.
Status DecodeQueryRequest(const std::string& body, QueryRequest* request);
Status DecodeQueryResponse(const std::string& body, QueryResponse* response);
Status DecodeError(const std::string& body, ErrorReply* error);
Status DecodeStatsReply(const std::string& body, StatsReply* stats);
Status DecodeMutateRequest(const std::string& body, MutateRequest* request);
Status DecodeMutateReply(const std::string& body, MutateReply* reply);

/// Writes one frame (u32 length + payload) to `fd`.
Status SendFrame(int fd, const std::string& payload);
/// Reads one frame from `fd`. A clean EOF at a frame boundary sets
/// `*clean_eof` and returns OK with an empty payload.
Status RecvFrame(int fd, std::string* payload, bool* clean_eof);

}  // namespace trilist::serve
