#pragma once

#include <cstdint>
#include <string>

#include "src/serve/protocol.h"
#include "src/util/status.h"

/// \file client.h
/// Synchronous client for the `trilistd` protocol, shared by
/// `trilist_cli query`, the serve tests and `bench_serve_throughput`.
/// One connection, one outstanding request at a time (the protocol
/// allows pipelining; this client does not need it).

namespace trilist::serve {

/// \brief One connection to a triangle server.
class ServeClient {
 public:
  /// Connects over TCP.
  static Result<ServeClient> ConnectTcp(const std::string& host,
                                        uint16_t port);
  /// Connects over a Unix-domain socket.
  static Result<ServeClient> ConnectUnix(const std::string& path);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  /// Runs one query. A kError reply surfaces as a non-OK Status whose
  /// message carries the server's text; the structured reply (code
  /// included) is kept in last_error() for callers that branch on it
  /// (backpressure handling in the load generator).
  Result<QueryResponse> Query(const QueryRequest& request);

  /// Applies one batched edge insert/delete request. Same error
  /// conventions as Query.
  Result<MutateReply> Mutate(const MutateRequest& request);

  /// Fetches the server's Prometheus stats text.
  Result<std::string> Stats();

  /// Round-trips a ping frame.
  Status Ping();

  /// The last kError reply received by Query/Stats/Ping (valid after a
  /// non-OK return whose failure was a server-side error reply).
  const ErrorReply& last_error() const { return last_error_; }
  /// True when the last non-OK Query/Stats/Ping failure was a server
  /// error reply (as opposed to a transport error).
  bool last_failure_was_reply() const { return last_failure_was_reply_; }

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  /// Sends `payload` and reads one response frame, expecting `expected`;
  /// decodes kError replies into last_error_.
  Status RoundTrip(const std::string& payload, MsgType expected,
                   std::string* response_body);

  int fd_ = -1;
  ErrorReply last_error_;
  bool last_failure_was_reply_ = false;
};

}  // namespace trilist::serve
