#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

/// \file latency_histogram.h
/// Fixed-bucket exponential latency histogram for the serving stats
/// (Prometheus histogram convention: cumulative buckets, _sum, _count).
/// Buckets double from 100 microseconds to ~105 seconds, which covers
/// everything from a warm cache hit to a cold multi-gigabyte load; the
/// last bucket is +Inf. Not internally synchronized — the server updates
/// it under its stats mutex.

namespace trilist::serve {

/// \brief Exponential (base-2) histogram of durations in seconds.
class LatencyHistogram {
 public:
  /// Finite bucket upper bounds: 1e-4 * 2^k seconds, k = 0..19.
  static constexpr size_t kNumFiniteBuckets = 20;

  /// Upper bound of finite bucket `i` in seconds.
  static double UpperBound(size_t i);

  /// Records one observation (negative durations clamp to 0).
  void Observe(double seconds);

  /// Count of observations <= UpperBound(i) — cumulative, the
  /// Prometheus `le` convention. i == kNumFiniteBuckets is +Inf (total).
  uint64_t CumulativeCount(size_t i) const;

  uint64_t TotalCount() const { return total_; }
  double Sum() const { return sum_; }

  /// Smallest finite upper bound with cumulative count >= q * total
  /// (a conservative quantile estimate; +Inf observations return the
  /// largest finite bound). Returns 0 when empty.
  double QuantileUpperBound(double q) const;

 private:
  std::array<uint64_t, kNumFiniteBuckets + 1> counts_{};  // last = +Inf
  uint64_t total_ = 0;
  double sum_ = 0;
};

}  // namespace trilist::serve
