#include "src/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <utility>

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/obs/prom.h"
#include "src/order/named_orders.h"
#include "src/run/runner.h"
#include "src/serve/net.h"
#include "src/util/build_info.h"
#include "src/util/metrics.h"

namespace trilist::serve {

namespace {

/// Renders a histogram in the Prometheus exposition convention:
/// cumulative `_bucket{le=...}` samples, `_sum`, `_count`.
void ExportHistogram(obs::PromWriter* w, const std::string& name,
                     const std::vector<obs::PromLabel>& labels,
                     const LatencyHistogram& h) {
  for (size_t i = 0; i < LatencyHistogram::kNumFiniteBuckets; ++i) {
    char bound[32];
    std::snprintf(bound, sizeof bound, "%g", LatencyHistogram::UpperBound(i));
    std::vector<obs::PromLabel> with_le = labels;
    with_le.emplace_back("le", bound);
    w->Sample(name + "_bucket", with_le,
              static_cast<double>(h.CumulativeCount(i)));
  }
  std::vector<obs::PromLabel> inf = labels;
  inf.emplace_back("le", "+Inf");
  w->Sample(name + "_bucket", inf, static_cast<double>(h.TotalCount()));
  w->Sample(name + "_sum", labels, h.Sum());
  w->Sample(name + "_count", labels, static_cast<double>(h.TotalCount()));
}

}  // namespace

TriangleServer::TriangleServer(const ServerOptions& options)
    : options_(options) {
  CatalogOptions catalog_options;
  catalog_options.capacity = options.catalog_capacity;
  catalog_options.root = options.graph_root;
  catalog_options.named = options.named_graphs;
  catalog_options.paged = options.paged_catalog;
  catalog_options.compact_overlay_fraction =
      options.compact_overlay_fraction;
  catalog_options.compact_min_arcs = options.compact_min_arcs;
  catalog_ = std::make_unique<GraphCatalog>(std::move(catalog_options));
  resolved_workers_ = ResolveThreads(options.workers);
  max_query_threads_ = ResolveThreads(options.max_query_threads);
}

Result<std::unique_ptr<TriangleServer>> TriangleServer::Start(
    const ServerOptions& options) {
  if (!options.tcp && options.unix_path.empty()) {
    return Status::InvalidArgument(
        "serve: enable TCP and/or a unix socket path");
  }
  std::unique_ptr<TriangleServer> server(new TriangleServer(options));
  if (::pipe(server->drain_pipe_) != 0) {
    return Status::Internal("pipe failed");
  }
  if (options.tcp) {
    Result<Listener> l = ListenTcp(options.host, options.port);
    if (!l.ok()) return l.status();
    server->listen_tcp_fd_ = l->fd;
    server->tcp_port_ = l->port;
  }
  if (!options.unix_path.empty()) {
    Result<Listener> l = ListenUnix(options.unix_path);
    if (!l.ok()) return l.status();
    server->listen_unix_fd_ = l->fd;
  }
  for (int i = 0; i < server->resolved_workers_; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

TriangleServer::~TriangleServer() {
  BeginDrain();
  Wait();
  CloseFd(drain_pipe_[0]);
  CloseFd(drain_pipe_[1]);
}

void TriangleServer::BeginDrain() {
  if (!draining_.exchange(true)) {
    if (drain_pipe_[1] >= 0) {
      const char byte = 'd';
      // Best-effort wake; the accept loop also polls draining_.
      [[maybe_unused]] const ssize_t n =
          ::write(drain_pipe_[1], &byte, 1);
    }
  }
  queue_cv_.notify_all();
}

void TriangleServer::Wait() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
  }
  // Order matters: the accept loop exits on drain, then the workers
  // finish every queued + executing request, and only then are the
  // connections shut down and their readers joined — no response is
  // ever dropped by the shutdown path itself.
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  CloseAllConnections();
  // Readers still blocked in recv were unblocked by the shutdown above;
  // extract the live set under the lock, join outside it (each reader's
  // epilogue also takes mu_ to prune itself from the registry).
  std::vector<std::thread> live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, thread] : readers_) live.push_back(std::move(thread));
    readers_.clear();
  }
  for (std::thread& r : live) {
    if (r.joinable()) r.join();
  }
  ReapFinishedReaders();
  // Every reader has exited and every worker is joined, so each fd was
  // reclaimed by MaybeCloseConnection; this sweep is belt-and-braces.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, conn] : connections_) {
      std::lock_guard<std::mutex> conn_lock(conn->write_mu);
      CloseFd(conn->fd);
      conn->fd = -1;
    }
    connections_.clear();
  }
  if (!options_.unix_path.empty()) {
    ::unlink(options_.unix_path.c_str());
  }
}

void TriangleServer::AcceptLoop() {
  while (!draining_.load()) {
    pollfd fds[3];
    nfds_t count = 0;
    int tcp_index = -1, unix_index = -1;
    if (listen_tcp_fd_ >= 0) {
      tcp_index = static_cast<int>(count);
      fds[count++] = {listen_tcp_fd_, POLLIN, 0};
    }
    if (listen_unix_fd_ >= 0) {
      unix_index = static_cast<int>(count);
      fds[count++] = {listen_unix_fd_, POLLIN, 0};
    }
    const int drain_index = static_cast<int>(count);
    fds[count++] = {drain_pipe_[0], POLLIN, 0};

    const int ready = ::poll(fds, count, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[drain_index].revents != 0) break;
    for (const int index : {tcp_index, unix_index}) {
      if (index < 0 || (fds[index].revents & POLLIN) == 0) continue;
      const int fd = ::accept(fds[index].fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED) {
          continue;
        }
        // Persistent failures (EMFILE/ENFILE/ENOMEM) leave the listener
        // readable, so an immediate re-poll would spin at 100% CPU.
        // Back off briefly — on the drain pipe, so SIGTERM still wakes
        // us instantly.
        pollfd backoff = {drain_pipe_[0], POLLIN, 0};
        ::poll(&backoff, 1, 100);
        continue;
      }
      SetSendTimeout(fd, options_.send_timeout_s);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      std::lock_guard<std::mutex> lock(mu_);
      conn->id = next_conn_id_++;
      ++stats_.accepted_connections;
      connections_[conn->id] = conn;
      readers_[conn->id] = std::thread([this, conn] { ReaderLoop(conn); });
    }
    ReapFinishedReaders();
  }
  BeginDrain();  // idempotent: covers poll-error exits
  CloseFd(listen_tcp_fd_);
  CloseFd(listen_unix_fd_);
  listen_tcp_fd_ = -1;
  listen_unix_fd_ = -1;
}

void TriangleServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  while (!conn->dead.load()) {
    std::string payload;
    bool eof = false;
    Status st = RecvFrame(conn->fd, &payload, &eof);
    if (!st.ok() || eof) break;
    MsgType type;
    std::string body;
    st = DecodeHeader(payload, &type, &body);
    if (!st.ok()) {
      // Tell the peer why (version mismatch, garbage) and hang up: a
      // stream that failed header parsing cannot be resynced.
      ReplyError(conn, ErrorCode::kBadRequest, st.message());
      break;
    }
    switch (type) {
      case MsgType::kPing:
        Reply(conn, EncodeEmpty(MsgType::kPong));
        break;
      case MsgType::kStats:
        Reply(conn, EncodeStatsReply({StatsPrometheus()}));
        break;
      case MsgType::kQuery:
        HandleQuery(conn, body);
        break;
      case MsgType::kMutate:
        HandleMutate(conn, body);
        break;
      default:
        ReplyError(conn, ErrorCode::kBadRequest,
                   "unexpected message type from a client");
        break;
    }
  }
  // Reclaim: close the fd unless a worker still owes this connection a
  // response (then the worker that sends the last one closes), and
  // prune the registry so churn never accumulates dead entries. The
  // thread handle moves to finished_readers_ for the accept loop (or
  // Wait) to join — a thread cannot join itself.
  conn->reader_done.store(true);
  MaybeCloseConnection(conn);
  std::lock_guard<std::mutex> lock(mu_);
  connections_.erase(conn->id);
  const auto it = readers_.find(conn->id);
  if (it != readers_.end()) {
    finished_readers_.push_back(std::move(it->second));
    readers_.erase(it);
  }
}

void TriangleServer::MaybeCloseConnection(
    const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd >= 0 && conn->reader_done.load() &&
      conn->in_flight.load() == 0) {
    CloseFd(conn->fd);
    conn->fd = -1;
  }
}

void TriangleServer::ReapFinishedReaders() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_readers_);
  }
  for (std::thread& r : finished) {
    if (r.joinable()) r.join();
  }
}

void TriangleServer::HandleQuery(const std::shared_ptr<Connection>& conn,
                                 const std::string& body) {
  QueryRequest request;
  Status st = DecodeQueryRequest(body, &request);
  if (!st.ok()) {
    ReplyError(conn, ErrorCode::kBadRequest, st.message());
    return;
  }
  if (request.repeats < 1 || request.repeats > options_.max_repeats) {
    ReplyError(conn, ErrorCode::kBadRequest,
               "repeats out of range [1, " +
                   std::to_string(options_.max_repeats) + "]");
    return;
  }

  // Admission step 1: make the graph resident (cold-loads happen here on
  // the reader thread, so the catalog's degree sequence is available for
  // the cost estimate before anything is queued).
  ErrorCode code;
  Result<GraphCatalog::Acquired> acquired =
      catalog_->Acquire(request.graph, &code);
  if (!acquired.ok()) {
    ReplyError(conn, code, acquired.status().message());
    return;
  }

  Pending pending;
  pending.conn = conn;
  pending.request = request;
  pending.entry = acquired->entry;
  // Capture the current epoch on the reader thread: this query runs
  // against exactly this graph no matter what mutations land while it
  // waits in the queue.
  pending.view = pending.entry->View();
  pending.catalog_hit = acquired->hit;
  pending.load_wall_s = acquired->load_wall_s;
  // Admission step 2: the Section-3 a-priori cost of this request from
  // the entry's shared pricing layer (the same model the query planner
  // uses) — what the shortest-job-first queue orders by. Weighted at the
  // merge backend: relative order across queued requests is what matters
  // here, and the server does not know the backend until execution.
  pending.predicted_cost = pending.entry->cost_model().PredictedTotalCost(
      request.orient, request.methods, IntersectBackend::kMerge);
  Admit(std::move(pending));
}

void TriangleServer::HandleMutate(const std::shared_ptr<Connection>& conn,
                                  const std::string& body) {
  MutateRequest request;
  const Status st = DecodeMutateRequest(body, &request);
  if (!st.ok()) {
    ReplyError(conn, ErrorCode::kBadRequest, st.message());
    return;
  }
  ErrorCode code;
  Result<GraphCatalog::Acquired> acquired =
      catalog_->Acquire(request.graph, &code);
  if (!acquired.ok()) {
    ReplyError(conn, code, acquired.status().message());
    return;
  }
  Pending pending;
  pending.conn = conn;
  pending.is_mutation = true;
  pending.entry = acquired->entry;
  pending.catalog_hit = acquired->hit;
  pending.load_wall_s = acquired->load_wall_s;
  // Price the batch for the SJF queue: Σ g(d_u) + g(d_v) over the
  // current view's degrees (the merge-scan bound of each incremental
  // intersection). Out-of-range endpoints contribute 0 — a node the
  // graph has never seen has degree 0.
  const std::shared_ptr<const EpochView> view = pending.entry->View();
  const size_t n = view->graph.num_nodes();
  double ops = 0;
  for (const dyn::EdgeMutation& m : request.ops) {
    const int64_t du = m.u < n ? view->graph.Degree(m.u) : 0;
    const int64_t dv = m.v < n ? view->graph.Degree(m.v) : 0;
    ops += cost::PredictedMutationOps(du, dv);
  }
  pending.predicted_cost = ops;
  pending.mutate_request = std::move(request);
  Admit(std::move(pending));
}

void TriangleServer::Admit(Pending pending) {
  // Admission step 3: bounded enqueue with explicit backpressure. The
  // reject reply happens after the lock drops — a slow client's socket
  // must never stall the queue.
  const std::shared_ptr<Connection> conn = pending.conn;
  bool rejected = false;
  ErrorCode reject_code = ErrorCode::kInternal;
  std::string reject_message;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_.load()) {
      ++stats_.rejected_draining;
      rejected = true;
      reject_code = ErrorCode::kDraining;
      reject_message = "server is draining";
    } else if (queue_.size() >= options_.max_queue) {
      ++stats_.rejected_overload;
      rejected = true;
      reject_code = ErrorCode::kOverloaded;
      reject_message = "admission queue full (" +
                       std::to_string(options_.max_queue) +
                       " requests queued)";
    } else {
      pending.seq = next_seq_++;
      pending.admitted.Start();
      if (pending.is_mutation) {
        ++stats_.mutations_total;
      } else {
        ++stats_.requests_total;
      }
      // Pin the fd open for the worker that will send this response;
      // the reader increments (it is the only thread that can), the
      // replying worker decrements.
      conn->in_flight.fetch_add(1);
      queue_.push_back(std::move(pending));
      stats_.queue_depth = queue_.size();
    }
  }
  if (rejected) {
    ReplyError(conn, reject_code, reject_message);
    return;
  }
  queue_cv_.notify_one();
}

void TriangleServer::WorkerLoop() {
  while (true) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load();
      });
      if (queue_.empty()) {
        if (draining_.load()) return;
        continue;
      }
      auto it = queue_.begin();
      if (options_.shortest_job_first) {
        it = std::min_element(
            queue_.begin(), queue_.end(),
            [](const Pending& a, const Pending& b) {
              return a.predicted_cost != b.predicted_cost
                         ? a.predicted_cost < b.predicted_cost
                         : a.seq < b.seq;
            });
      }
      pending = std::move(*it);
      queue_.erase(it);
      stats_.queue_depth = queue_.size();
      ++stats_.in_flight;
      pending.queue_wait_s = pending.admitted.ElapsedSeconds();
    }
    const std::shared_ptr<Connection> conn = pending.conn;
    if (pending.is_mutation) {
      ExecuteMutation(std::move(pending));
    } else {
      Execute(std::move(pending));
    }
    conn->in_flight.fetch_sub(1);
    MaybeCloseConnection(conn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.in_flight;
    }
    idle_cv_.notify_all();
  }
}

void TriangleServer::Execute(Pending pending) {
  if (options_.debug_exec_delay_s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.debug_exec_delay_s));
  }
  const QueryRequest& request = pending.request;
  const int threads =
      request.threads <= 0
          ? max_query_threads_
          : std::min<int>(request.threads, max_query_threads_);

  RunReport report;
  report.source = "catalog:" + pending.entry->name();
  report.order = PermutationKindName(request.orient.kind);
  report.orient_seed = request.orient.seed;
  report.threads = threads;
  report.requested_threads = request.threads;
  report.repeats = request.repeats;
  const BuildInfo& build = GetBuildInfo();
  report.build_version = build.version;
  report.build_git_hash = build.git_hash;
  report.build_compiler = build.compiler;
  report.build_type = build.build_type;
  report.num_nodes = pending.view->graph.num_nodes();
  report.num_edges = pending.view->graph.num_edges();

  // Stage walls carry the catalog's amortization story: a warm graph
  // reports load = 0, a reused (O, theta) reports order = orient = 0.
  report.stages.Add("load", pending.load_wall_s);
  const GraphCatalog::Oriented oriented =
      catalog_->Orient(pending.entry, pending.view, request.orient,
                       threads);
  report.cached_orientation = oriented.cached;
  report.stages.Add("order", oriented.order_wall_s);
  report.stages.Add("orient", oriented.orient_wall_s);

  ExecPolicy exec;
  exec.threads = threads;
  const Status listed =
      ListOnOriented(oriented.oriented, request.methods, exec,
                     request.repeats, SinkKind::kCount, &report);
  if (!listed.ok()) {
    ReplyError(pending.conn, ErrorCode::kInternal, listed.message());
    return;
  }
  report.peak_rss_bytes = PeakRssBytes();
  // cpu_s / utilization stay 0: process-wide CPU time cannot be
  // attributed to one request when the pool runs several.

  const QueryResponse response = BuildResponse(pending, report);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.responses_ok;
    request_latency_.Observe(pending.admitted.ElapsedSeconds());
    queue_wait_.Observe(pending.queue_wait_s);
    for (const MethodReport& mr : report.methods) {
      method_wall_[mr.method].Observe(mr.wall_s);
    }
  }
  Reply(pending.conn, EncodeQueryResponse(response));
}

void TriangleServer::ExecuteMutation(Pending pending) {
  if (options_.debug_exec_delay_s > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.debug_exec_delay_s));
  }
  Timer apply_timer;
  Result<GraphCatalog::MutationOutcome> outcome =
      catalog_->Mutate(pending.entry, pending.mutate_request.ops);
  if (!outcome.ok()) {
    const ErrorCode code =
        outcome.status().code() == StatusCode::kInvalidArgument
            ? ErrorCode::kBadRequest
            : ErrorCode::kInternal;
    ReplyError(pending.conn, code, outcome.status().message());
    return;
  }
  MutateReply reply;
  reply.epoch = outcome->epoch;
  reply.seq = outcome->seq;
  reply.applied_inserts = outcome->applied_inserts;
  reply.applied_deletes = outcome->applied_deletes;
  reply.noops = outcome->noops;
  reply.triangles = outcome->triangles;
  reply.num_nodes = outcome->num_nodes;
  reply.num_edges = outcome->num_edges;
  reply.overlay_arcs = outcome->overlay_arcs;
  reply.compacted = outcome->compacted ? 1 : 0;
  reply.predicted_ops = outcome->predicted_ops;
  reply.wall_s = apply_timer.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.mutate_ok;
    mutation_latency_.Observe(pending.admitted.ElapsedSeconds());
    queue_wait_.Observe(pending.queue_wait_s);
  }
  Reply(pending.conn, EncodeMutateReply(reply));
}

QueryResponse TriangleServer::BuildResponse(const Pending& pending,
                                            const RunReport& report) const {
  QueryResponse response;
  response.num_nodes = report.num_nodes;
  response.num_edges = report.num_edges;
  response.catalog_hit = pending.catalog_hit;
  response.orientation_cached = report.cached_orientation;
  response.predicted_cost = pending.predicted_cost;
  response.queue_wait_s = pending.queue_wait_s;
  for (const StageSample& s : report.stages.stages()) {
    response.stages.push_back({s.name, s.wall_s});
  }
  for (const MethodReport& mr : report.methods) {
    MethodResult m;
    m.method = mr.method;
    m.triangles = mr.triangles;
    m.paper_ops = static_cast<double>(mr.ops.PaperCost());
    m.formula_cost = mr.formula_cost;
    m.wall_s = mr.wall_s;
    m.parallel = mr.parallel;
    response.methods.push_back(m);
  }
  response.report_json = report.ToJson();
  return response;
}

void TriangleServer::Reply(const std::shared_ptr<Connection>& conn,
                           const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->dead.load() || conn->fd < 0) return;
  const Status st = SendFrame(conn->fd, payload);
  if (!st.ok()) {
    // Broken pipe or SO_SNDTIMEO expiry (peer not reading). Mark the
    // connection dead and kick its reader out of recv so the fd is
    // reclaimed instead of lingering until shutdown.
    conn->dead.store(true);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void TriangleServer::ReplyError(const std::shared_ptr<Connection>& conn,
                                ErrorCode code,
                                const std::string& message) {
  if (code != ErrorCode::kOverloaded && code != ErrorCode::kDraining) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.errors;
  }
  ErrorReply error;
  error.code = code;
  error.message = message;
  Reply(conn, EncodeError(error));
}

void TriangleServer::CloseAllConnections() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) conns.push_back(conn);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    conn->dead.store(true);
    // Under write_mu: a reader may be reclaiming (closing) this fd
    // concurrently, and shutdown on a reused descriptor would hit an
    // unrelated connection.
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
}

ServerStats TriangleServer::StatsSnapshot() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    out.open_connections = connections_.size();
  }
  out.catalog = catalog_->StatsSnapshot();
  return out;
}

std::string TriangleServer::StatsPrometheus() const {
  const ServerStats stats = StatsSnapshot();
  obs::PromWriter w;

  w.Gauge("trilist_serve_queue_depth", "Requests queued for a worker");
  w.Sample("trilist_serve_queue_depth",
           static_cast<double>(stats.queue_depth));
  w.Gauge("trilist_serve_queue_capacity", "Admission queue bound");
  w.Sample("trilist_serve_queue_capacity",
           static_cast<double>(options_.max_queue));
  w.Gauge("trilist_serve_in_flight", "Requests currently executing");
  w.Sample("trilist_serve_in_flight", static_cast<double>(stats.in_flight));
  w.Gauge("trilist_serve_workers", "Worker pool width");
  w.Sample("trilist_serve_workers", static_cast<double>(resolved_workers_));

  w.Counter("trilist_serve_connections_total", "Accepted connections");
  w.Sample("trilist_serve_connections_total",
           static_cast<double>(stats.accepted_connections));
  w.Gauge("trilist_serve_connections_open",
          "Connections accepted and not yet reclaimed");
  w.Sample("trilist_serve_connections_open",
           static_cast<double>(stats.open_connections));
  w.Counter("trilist_serve_requests_total",
            "Query requests admitted to the queue");
  w.Sample("trilist_serve_requests_total",
           static_cast<double>(stats.requests_total));
  w.Counter("trilist_serve_responses_ok_total", "Successful responses");
  w.Sample("trilist_serve_responses_ok_total",
           static_cast<double>(stats.responses_ok));
  w.Counter("trilist_serve_rejected_total",
            "Requests rejected before execution, by reason");
  w.Sample("trilist_serve_rejected_total", {{"reason", "overload"}},
           static_cast<double>(stats.rejected_overload));
  w.Sample("trilist_serve_rejected_total", {{"reason", "draining"}},
           static_cast<double>(stats.rejected_draining));
  w.Counter("trilist_serve_errors_total", "Error responses (non-reject)");
  w.Sample("trilist_serve_errors_total", static_cast<double>(stats.errors));

  w.Gauge("trilist_serve_catalog_resident", "Graphs currently resident");
  w.Sample("trilist_serve_catalog_resident",
           static_cast<double>(stats.catalog.resident));
  w.Counter("trilist_serve_catalog_hits_total",
            "Acquire calls served from residency");
  w.Sample("trilist_serve_catalog_hits_total",
           static_cast<double>(stats.catalog.hits));
  w.Counter("trilist_serve_catalog_loads_total", "Cold graph loads");
  w.Sample("trilist_serve_catalog_loads_total",
           static_cast<double>(stats.catalog.loads));
  w.Counter("trilist_serve_catalog_load_failures_total",
            "Failed name resolutions or loads");
  w.Sample("trilist_serve_catalog_load_failures_total",
           static_cast<double>(stats.catalog.load_failures));
  w.Counter("trilist_serve_catalog_evictions_total",
            "Entries evicted by the LRU bound");
  w.Sample("trilist_serve_catalog_evictions_total",
           static_cast<double>(stats.catalog.evictions));
  w.Counter("trilist_serve_orientation_hits_total",
            "Orientations reused (embedded or previously built)");
  w.Sample("trilist_serve_orientation_hits_total",
           static_cast<double>(stats.catalog.orientation_hits));
  w.Counter("trilist_serve_orientations_built_total",
            "Orientations built at serve time");
  w.Sample("trilist_serve_orientations_built_total",
           static_cast<double>(stats.catalog.orientations_built));

  w.Counter("trilist_serve_mutations_total",
            "Mutation batches admitted to the queue");
  w.Sample("trilist_serve_mutations_total",
           static_cast<double>(stats.mutations_total));
  w.Counter("trilist_serve_mutate_ok_total",
            "Successful mutation replies");
  w.Sample("trilist_serve_mutate_ok_total",
           static_cast<double>(stats.mutate_ok));
  w.Counter("trilist_serve_mutations_applied_total",
            "Non-noop edge inserts and deletes applied");
  w.Sample("trilist_serve_mutations_applied_total",
           static_cast<double>(stats.catalog.mutations_applied));
  w.Counter("trilist_serve_mutation_noops_total",
            "Redundant inserts / deletes skipped");
  w.Sample("trilist_serve_mutation_noops_total",
           static_cast<double>(stats.catalog.mutation_noops));
  w.Counter("trilist_serve_compactions_total",
            "Overlay compactions into the base CSR");
  w.Sample("trilist_serve_compactions_total",
           static_cast<double>(stats.catalog.compactions));

  // Per-graph dynamic state: epoch/seq/overlay gauges let an operator
  // watch churn and compaction pressure per resident graph.
  const std::vector<GraphCatalog::DynRow> rows = catalog_->DynRows();
  w.Gauge("trilist_serve_graph_epoch", "Published epoch per graph");
  for (const auto& row : rows) {
    w.Sample("trilist_serve_graph_epoch", {{"graph", row.name}},
             static_cast<double>(row.epoch));
  }
  w.Gauge("trilist_serve_graph_seq", "Total mutations applied per graph");
  for (const auto& row : rows) {
    w.Sample("trilist_serve_graph_seq", {{"graph", row.name}},
             static_cast<double>(row.seq));
  }
  w.Gauge("trilist_serve_graph_overlay_arcs",
          "Delta arcs outside the base CSR per graph");
  for (const auto& row : rows) {
    w.Sample("trilist_serve_graph_overlay_arcs", {{"graph", row.name}},
             static_cast<double>(row.overlay_arcs));
  }
  w.Gauge("trilist_serve_graph_triangles",
          "Maintained exact triangle count per mutated graph");
  for (const auto& row : rows) {
    if (!row.triangles_known) continue;
    w.Sample("trilist_serve_graph_triangles", {{"graph", row.name}},
             static_cast<double>(row.triangles));
  }

  std::lock_guard<std::mutex> lock(mu_);
  w.Histogram("trilist_serve_request_latency_seconds",
              "Admission-to-response latency");
  ExportHistogram(&w, "trilist_serve_request_latency_seconds", {},
                  request_latency_);
  w.Histogram("trilist_serve_queue_wait_seconds",
              "Time spent queued before a worker");
  ExportHistogram(&w, "trilist_serve_queue_wait_seconds", {}, queue_wait_);
  w.Histogram("trilist_serve_mutation_latency_seconds",
              "Admission-to-reply latency of mutation batches");
  ExportHistogram(&w, "trilist_serve_mutation_latency_seconds", {},
                  mutation_latency_);
  w.Histogram("trilist_serve_method_wall_seconds",
              "Best listing wall per served method");
  for (const auto& [method, histogram] : method_wall_) {
    ExportHistogram(&w, "trilist_serve_method_wall_seconds",
                    {{"method", MethodName(method)}}, histogram);
  }
  return std::move(w).Finish();
}

}  // namespace trilist::serve
