#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/run/run_report.h"
#include "src/serve/catalog.h"
#include "src/serve/latency_histogram.h"
#include "src/serve/protocol.h"
#include "src/util/status.h"
#include "src/util/timer.h"

/// \file server.h
/// `trilistd`: the long-running triangle-query daemon behind
/// `trilist_cli serve`.
///
/// Architecture (one box per thread group):
///
///   accept loop ──> reader thread per connection ──> admission ──┐
///        │                    │                                  │
///        │            (parse frame, resolve                 bounded
///        │             catalog entry, predict                 queue
///        │             Section-3 cost)                          │
///        │                    │                                 v
///   drain pipe <── SIGTERM    └── reject kOverloaded      worker pool
///                                 when the queue is full       │
///                                                              v
///                                              catalog orientation +
///                                              ListOnOriented (the same
///                                              listing loop as
///                                              `trilist_cli run`)
///
/// Admission control happens on the reader thread: the graph is resolved
/// (and cold-loaded) there, the Section-3 formula cost of the request is
/// computed from the catalog's degree sequence, and the request either
/// enters the bounded queue or is rejected immediately with an explicit
/// kOverloaded error — the daemon never buffers unbounded work and a
/// client always learns its fate. With `shortest_job_first` the queue
/// orders by predicted cost instead of FIFO, which minimizes mean wait
/// when job sizes are heavy-tailed (exactly the regime the paper's
/// Pareto families model).
///
/// Lifecycle: BeginDrain() (idempotent, and signal-safe via
/// DrainNotifyFd) stops the accept loop, refuses new queries with
/// kDraining, lets queued + executing requests finish, then closes every
/// connection. Wait() joins all threads; after it returns the process
/// can exit 0 with no request dropped mid-flight.

namespace trilist::serve {

/// Configuration of a TriangleServer.
struct ServerOptions {
  /// TCP endpoint; enabled when `tcp` is true. Port 0 binds an
  /// ephemeral port (resolved value in TriangleServer::tcp_port()).
  bool tcp = false;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Unix-domain socket path; enabled when non-empty. Unlinked on
  /// shutdown.
  std::string unix_path;

  /// Worker pool width; <= 0 resolves to the hardware thread count.
  int workers = 1;
  /// Admission queue bound: requests beyond this many queued (not yet
  /// executing) are rejected with kOverloaded.
  size_t max_queue = 64;
  /// Order the queue by the Section-3 predicted cost (shortest first,
  /// FIFO tie-break) instead of pure FIFO.
  bool shortest_job_first = false;
  /// Cap on per-query `threads` requests (<= 0: the hardware width).
  int max_query_threads = 0;
  /// Cap on per-query `repeats` (a hostile client must not buy
  /// unbounded CPU with one cheap frame).
  int max_repeats = 1000;
  /// SO_SNDTIMEO applied to accepted sockets: a client that sends
  /// queries but never drains its responses fails the send after this
  /// long instead of wedging a worker forever (<= 0 disables).
  double send_timeout_s = 30;

  /// Graph registry (see CatalogOptions).
  size_t catalog_capacity = 8;
  std::string graph_root;
  std::map<std::string, std::string> named_graphs;
  /// Open `.tlg` graphs demand-paged (CatalogOptions::paged).
  bool paged_catalog = false;
  /// Mutation compaction trigger (CatalogOptions equivalents).
  double compact_overlay_fraction = 0.25;
  size_t compact_min_arcs = 4096;

  /// Test-only: every worker sleeps this long before executing a
  /// request, making queue states reproducible in the backpressure and
  /// drain tests. Never set in production.
  double debug_exec_delay_s = 0;
};

/// Point-in-time serving counters for /metrics and the drain summary.
struct ServerStats {
  uint64_t accepted_connections = 0;
  uint64_t requests_total = 0;   ///< query frames admitted to the queue.
  uint64_t responses_ok = 0;
  uint64_t rejected_overload = 0;
  uint64_t rejected_draining = 0;
  uint64_t errors = 0;           ///< non-backpressure error replies.
  uint64_t mutations_total = 0;  ///< mutate frames admitted to the queue.
  uint64_t mutate_ok = 0;        ///< successful mutation replies.
  size_t queue_depth = 0;
  size_t in_flight = 0;          ///< requests currently executing.
  size_t open_connections = 0;   ///< connections not yet reclaimed.
  CatalogStats catalog;
};

/// \brief The daemon. Construct via Start(); destruction drains.
class TriangleServer {
 public:
  /// Binds the requested endpoints, spawns the worker pool and the
  /// accept loop. At least one of options.tcp / options.unix_path must
  /// be enabled.
  static Result<std::unique_ptr<TriangleServer>> Start(
      const ServerOptions& options);

  ~TriangleServer();
  TriangleServer(const TriangleServer&) = delete;
  TriangleServer& operator=(const TriangleServer&) = delete;

  /// Resolved TCP port (0 when TCP is disabled).
  uint16_t tcp_port() const { return tcp_port_; }
  /// Unix-domain socket path ("" when disabled).
  const std::string& unix_path() const { return options_.unix_path; }

  /// Initiates graceful drain: stop accepting, finish queued and
  /// in-flight requests, refuse new ones with kDraining. Idempotent and
  /// callable from any thread.
  void BeginDrain();

  /// An fd a signal handler can write one byte to (async-signal-safe)
  /// to trigger BeginDrain from SIGTERM/SIGINT.
  int DrainNotifyFd() const { return drain_pipe_[1]; }

  /// Blocks until the drain completes and every thread is joined.
  void Wait();

  /// Snapshot of the serving counters.
  ServerStats StatsSnapshot() const;

  /// Prometheus text exposition of the serving counters, queue gauges,
  /// catalog stats and latency histograms.
  std::string StatsPrometheus() const;

 private:
  /// One accepted connection; readers and workers share it by
  /// shared_ptr so a response can outlive the reader.
  ///
  /// Reclamation protocol: the fd is closed by whoever observes the
  /// connection quiescent — the reader when it exits with no queries in
  /// flight, or the worker that sends the last in-flight response after
  /// the reader has exited. The close itself runs under `write_mu`, so a
  /// worker mid-SendFrame can never race a close onto a reused fd.
  struct Connection {
    uint64_t id = 0;      ///< registry key in connections_ / readers_.
    int fd = -1;          ///< -1 once reclaimed; guarded by write_mu.
    std::mutex write_mu;  ///< responses from workers may interleave.
    std::atomic<bool> dead{false};
    std::atomic<int> in_flight{0};  ///< admitted queries not yet replied.
    std::atomic<bool> reader_done{false};
  };

  /// One admitted request (query or mutation) waiting for (or holding)
  /// a worker.
  struct Pending {
    std::shared_ptr<Connection> conn;
    QueryRequest request;
    std::shared_ptr<CatalogEntry> entry;
    /// The epoch captured at admission: the query runs against exactly
    /// this graph even if mutations land while it waits or executes.
    /// Null for mutations (the writer works on live state, not a view).
    std::shared_ptr<const EpochView> view;
    bool is_mutation = false;
    MutateRequest mutate_request;  ///< valid iff is_mutation.
    bool catalog_hit = false;
    double load_wall_s = 0;
    double predicted_cost = 0;
    uint64_t seq = 0;  ///< admission order (FIFO + SJF tie-break).
    Timer admitted;    ///< running since admission (queue wait + exec).
    double queue_wait_s = 0;  ///< filled when a worker dequeues.
  };

  explicit TriangleServer(const ServerOptions& options);

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void HandleQuery(const std::shared_ptr<Connection>& conn,
                   const std::string& body);
  void HandleMutate(const std::shared_ptr<Connection>& conn,
                    const std::string& body);
  /// Admission steps 1-3 shared by queries and mutations: acquire is
  /// done by the caller; this prices, bounds and enqueues.
  void Admit(Pending pending);
  void Execute(Pending pending);
  void ExecuteMutation(Pending pending);
  QueryResponse BuildResponse(const Pending& pending,
                              const RunReport& report) const;
  void Reply(const std::shared_ptr<Connection>& conn,
             const std::string& payload);
  void ReplyError(const std::shared_ptr<Connection>& conn, ErrorCode code,
                  const std::string& message);
  void CloseAllConnections();
  /// Closes conn->fd iff the reader has exited and no query is in
  /// flight; safe to call from any thread, any number of times.
  void MaybeCloseConnection(const std::shared_ptr<Connection>& conn);
  /// Joins reader threads that have already finished (cheap; called from
  /// the accept loop so churn never accumulates unjoined threads).
  void ReapFinishedReaders();

  ServerOptions options_;
  std::unique_ptr<GraphCatalog> catalog_;
  int resolved_workers_ = 1;
  int max_query_threads_ = 1;

  int listen_tcp_fd_ = -1;
  int listen_unix_fd_ = -1;
  uint16_t tcp_port_ = 0;
  int drain_pipe_[2] = {-1, -1};

  std::atomic<bool> draining_{false};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<Pending> queue_;
  uint64_t next_seq_ = 0;
  ServerStats stats_;
  LatencyHistogram request_latency_;
  LatencyHistogram queue_wait_;
  LatencyHistogram mutation_latency_;  ///< admission-to-reply, mutations.
  std::map<Method, LatencyHistogram> method_wall_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  /// Live connection registry, pruned by each reader on exit so a
  /// long-running daemon under connection churn holds only live entries
  /// (all guarded by mu_).
  std::map<uint64_t, std::shared_ptr<Connection>> connections_;
  std::map<uint64_t, std::thread> readers_;
  std::vector<std::thread> finished_readers_;  ///< awaiting a join.
  uint64_t next_conn_id_ = 0;
  bool joined_ = false;
};

}  // namespace trilist::serve
