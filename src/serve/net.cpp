#include "src/serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace trilist::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

int NewSocket(int domain) {
  return ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

Result<Listener> ListenTcp(const std::string& host, uint16_t port) {
  const int fd = NewSocket(AF_INET);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Errno("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  Listener out;
  out.fd = fd;
  // Report the resolved port (the kernel's pick when port 0 was asked).
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    out.port = ntohs(bound.sin_port);
  }
  return out;
}

Result<Listener> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // A socket file surviving a crash/SIGKILL would make every restart
  // fail with EADDRINUSE. Probe it: if nothing accepts (ECONNREFUSED)
  // the file is stale and safe to unlink; a live listener is left alone
  // so two daemons can never fight over one path.
  if (::access(path.c_str(), F_OK) == 0) {
    const int probe = NewSocket(AF_UNIX);
    if (probe >= 0) {
      const int rc =
          ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
      const bool stale = rc != 0 && errno == ECONNREFUSED;
      CloseFd(probe);
      if (rc == 0) {
        return Status::InvalidArgument(
            "unix socket in use by a live server: " + path);
      }
      if (stale) ::unlink(path.c_str());
    }
  }

  const int fd = NewSocket(AF_UNIX);
  if (fd < 0) return Errno("socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Errno("bind " + path);
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Errno("listen " + path);
    CloseFd(fd);
    return st;
  }
  Listener out;
  out.fd = fd;
  return out;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = NewSocket(AF_INET);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st =
        Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = NewSocket(AF_UNIX);
  if (fd < 0) return Errno("socket");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Errno("connect " + path);
    CloseFd(fd);
    return st;
  }
  return fd;
}

Status SendAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t sent = ::send(fd, p + done, size - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer is not draining its socket.
        return Status::Internal("send timed out (peer not reading)");
      }
      return Errno("send");
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

void SetSendTimeout(int fd, double seconds) {
  if (seconds <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Status RecvAll(int fd, void* data, size_t size, bool* clean_eof) {
  *clean_eof = false;
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(fd, p + done, size - done, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (got == 0) {
      if (done == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::InvalidArgument("connection closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace trilist::serve
