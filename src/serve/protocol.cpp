#include "src/serve/protocol.h"

#include "src/serve/net.h"
#include "src/serve/wire.h"

namespace trilist::serve {

namespace {

/// List-size caps: a response echoes one stage per pipeline phase and a
/// request carries at most every method once per sweep repetition;
/// anything larger is malformed, not ambitious.
constexpr uint32_t kMaxMethods = 64;
constexpr uint32_t kMaxStages = 32;

void AppendHeader(WireWriter* w, MsgType type) {
  w->U32(kFrameMagic);
  w->U16(kProtocolVersion);
  w->U16(static_cast<uint16_t>(type));
}

Status DecodeMethod(uint8_t code, Method* out) {
  if (code >= AllMethods().size()) {
    return Status::InvalidArgument("unknown method code " +
                                   std::to_string(code));
  }
  *out = AllMethods()[code];
  return Status::OK();
}

Status DecodeOrder(uint8_t code, PermutationKind* out) {
  if (code > static_cast<uint8_t>(PermutationKind::kSplit)) {
    return Status::InvalidArgument("unknown permutation code " +
                                   std::to_string(code));
  }
  *out = static_cast<PermutationKind>(code);
  return Status::OK();
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::string EncodeEmpty(MsgType type) {
  WireWriter w;
  AppendHeader(&w, type);
  return std::move(w).Take();
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  WireWriter w;
  AppendHeader(&w, MsgType::kQuery);
  w.Str(request.graph);
  w.U8(static_cast<uint8_t>(request.orient.kind));
  w.U64(request.orient.seed);
  w.U32(static_cast<uint32_t>(request.methods.size()));
  for (Method m : request.methods) w.U8(static_cast<uint8_t>(m));
  w.I64(request.threads);
  w.I64(request.repeats);
  return std::move(w).Take();
}

std::string EncodeQueryResponse(const QueryResponse& response) {
  WireWriter w;
  AppendHeader(&w, MsgType::kQueryOk);
  w.U64(response.num_nodes);
  w.U64(response.num_edges);
  w.U8(response.catalog_hit ? 1 : 0);
  w.U8(response.orientation_cached ? 1 : 0);
  w.F64(response.predicted_cost);
  w.F64(response.queue_wait_s);
  w.U32(static_cast<uint32_t>(response.stages.size()));
  for (const StageWall& s : response.stages) {
    w.Str(s.name);
    w.F64(s.wall_s);
  }
  w.U32(static_cast<uint32_t>(response.methods.size()));
  for (const MethodResult& m : response.methods) {
    w.U8(static_cast<uint8_t>(m.method));
    w.U64(m.triangles);
    w.F64(m.paper_ops);
    w.F64(m.formula_cost);
    w.F64(m.wall_s);
    w.U8(m.parallel ? 1 : 0);
  }
  w.Str(response.report_json);
  return std::move(w).Take();
}

std::string EncodeError(const ErrorReply& error) {
  WireWriter w;
  AppendHeader(&w, MsgType::kError);
  w.U16(static_cast<uint16_t>(error.code));
  w.Str(error.message);
  return std::move(w).Take();
}

std::string EncodeStatsReply(const StatsReply& stats) {
  WireWriter w;
  AppendHeader(&w, MsgType::kStatsOk);
  w.Str(stats.prometheus_text);
  return std::move(w).Take();
}

std::string EncodeMutateRequest(const MutateRequest& request) {
  WireWriter w;
  AppendHeader(&w, MsgType::kMutate);
  w.Str(request.graph);
  w.U32(static_cast<uint32_t>(request.ops.size()));
  for (const dyn::EdgeMutation& m : request.ops) {
    w.U8(m.insert ? 1 : 0);
    w.U32(m.u);
    w.U32(m.v);
  }
  return std::move(w).Take();
}

std::string EncodeMutateReply(const MutateReply& reply) {
  WireWriter w;
  AppendHeader(&w, MsgType::kMutateOk);
  w.U64(reply.epoch);
  w.U64(reply.seq);
  w.U64(reply.applied_inserts);
  w.U64(reply.applied_deletes);
  w.U64(reply.noops);
  w.U64(reply.triangles);
  w.U64(reply.num_nodes);
  w.U64(reply.num_edges);
  w.U64(reply.overlay_arcs);
  w.U8(reply.compacted);
  w.F64(reply.predicted_ops);
  w.F64(reply.wall_s);
  return std::move(w).Take();
}

Status DecodeHeader(const std::string& payload, MsgType* type,
                    std::string* body) {
  WireReader r(payload);
  uint32_t magic;
  uint16_t version;
  uint16_t raw_type;
  Status st = r.U32(&magic);
  if (st.ok()) st = r.U16(&version);
  if (st.ok()) st = r.U16(&raw_type);
  if (!st.ok()) return st;
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: peer speaks v" +
        std::to_string(version) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  }
  if (raw_type < static_cast<uint16_t>(MsgType::kQuery) ||
      raw_type > static_cast<uint16_t>(MsgType::kMutateOk)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type));
  }
  *type = static_cast<MsgType>(raw_type);
  body->assign(payload, 8, payload.size() - 8);
  return Status::OK();
}

Status DecodeQueryRequest(const std::string& body, QueryRequest* request) {
  WireReader r(body);
  Status st = r.Str(&request->graph);
  uint8_t order_code = 0;
  if (st.ok()) st = r.U8(&order_code);
  if (st.ok()) st = DecodeOrder(order_code, &request->orient.kind);
  if (st.ok()) st = r.U64(&request->orient.seed);
  uint32_t method_count = 0;
  if (st.ok()) st = r.U32(&method_count);
  if (!st.ok()) return st;
  if (method_count == 0 || method_count > kMaxMethods) {
    return Status::InvalidArgument("method count " +
                                   std::to_string(method_count) +
                                   " out of range [1, " +
                                   std::to_string(kMaxMethods) + "]");
  }
  request->methods.clear();
  for (uint32_t i = 0; i < method_count; ++i) {
    uint8_t code;
    st = r.U8(&code);
    Method m;
    if (st.ok()) st = DecodeMethod(code, &m);
    if (!st.ok()) return st;
    request->methods.push_back(m);
  }
  int64_t threads = 0, repeats = 0;
  st = r.I64(&threads);
  if (st.ok()) st = r.I64(&repeats);
  if (!st.ok()) return st;
  request->threads = static_cast<int32_t>(threads);
  request->repeats = static_cast<int32_t>(repeats);
  return r.ExpectEnd();
}

Status DecodeQueryResponse(const std::string& body,
                           QueryResponse* response) {
  WireReader r(body);
  Status st = r.U64(&response->num_nodes);
  if (st.ok()) st = r.U64(&response->num_edges);
  uint8_t hit = 0, cached = 0;
  if (st.ok()) st = r.U8(&hit);
  if (st.ok()) st = r.U8(&cached);
  if (st.ok()) st = r.F64(&response->predicted_cost);
  if (st.ok()) st = r.F64(&response->queue_wait_s);
  uint32_t stage_count = 0;
  if (st.ok()) st = r.U32(&stage_count);
  if (!st.ok()) return st;
  response->catalog_hit = hit != 0;
  response->orientation_cached = cached != 0;
  if (stage_count > kMaxStages) {
    return Status::InvalidArgument("stage count out of range");
  }
  response->stages.clear();
  for (uint32_t i = 0; i < stage_count; ++i) {
    StageWall s;
    st = r.Str(&s.name);
    if (st.ok()) st = r.F64(&s.wall_s);
    if (!st.ok()) return st;
    response->stages.push_back(std::move(s));
  }
  uint32_t method_count = 0;
  st = r.U32(&method_count);
  if (!st.ok()) return st;
  if (method_count > kMaxMethods) {
    return Status::InvalidArgument("method count out of range");
  }
  response->methods.clear();
  for (uint32_t i = 0; i < method_count; ++i) {
    MethodResult m;
    uint8_t code = 0, parallel = 0;
    st = r.U8(&code);
    if (st.ok()) st = DecodeMethod(code, &m.method);
    if (st.ok()) st = r.U64(&m.triangles);
    if (st.ok()) st = r.F64(&m.paper_ops);
    if (st.ok()) st = r.F64(&m.formula_cost);
    if (st.ok()) st = r.F64(&m.wall_s);
    if (st.ok()) st = r.U8(&parallel);
    if (!st.ok()) return st;
    m.parallel = parallel != 0;
    response->methods.push_back(m);
  }
  st = r.Str(&response->report_json);
  if (!st.ok()) return st;
  return r.ExpectEnd();
}

Status DecodeError(const std::string& body, ErrorReply* error) {
  WireReader r(body);
  uint16_t code = 0;
  Status st = r.U16(&code);
  if (st.ok()) st = r.Str(&error->message);
  if (!st.ok()) return st;
  if (code < static_cast<uint16_t>(ErrorCode::kBadRequest) ||
      code > static_cast<uint16_t>(ErrorCode::kInternal)) {
    return Status::InvalidArgument("unknown error code " +
                                   std::to_string(code));
  }
  error->code = static_cast<ErrorCode>(code);
  return r.ExpectEnd();
}

Status DecodeStatsReply(const std::string& body, StatsReply* stats) {
  WireReader r(body);
  const Status st = r.Str(&stats->prometheus_text);
  if (!st.ok()) return st;
  return r.ExpectEnd();
}

Status DecodeMutateRequest(const std::string& body,
                           MutateRequest* request) {
  WireReader r(body);
  Status st = r.Str(&request->graph);
  if (!st.ok()) return st;
  if (request->graph.empty()) {
    return Status::InvalidArgument("empty graph name");
  }
  uint32_t count = 0;
  st = r.U32(&count);
  if (!st.ok()) return st;
  if (count == 0 || count > kMaxMutationsPerFrame) {
    return Status::InvalidArgument(
        "mutation count " + std::to_string(count) + " out of range [1, " +
        std::to_string(kMaxMutationsPerFrame) + "]");
  }
  // 9 wire bytes per op: reject a forged count before reserving anything
  // proportional to it.
  if (static_cast<uint64_t>(count) * 9 > r.Remaining()) {
    return Status::InvalidArgument("mutation count exceeds frame body");
  }
  request->ops.clear();
  request->ops.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t op = 0;
    dyn::EdgeMutation m;
    st = r.U8(&op);
    if (st.ok()) st = r.U32(&m.u);
    if (st.ok()) st = r.U32(&m.v);
    if (!st.ok()) return st;
    if (op > 1) {
      return Status::InvalidArgument("unknown mutation op " +
                                     std::to_string(op));
    }
    if (m.u == m.v) {
      return Status::InvalidArgument("self-loop mutation on node " +
                                     std::to_string(m.u));
    }
    m.insert = op != 0;
    request->ops.push_back(m);
  }
  return r.ExpectEnd();
}

Status DecodeMutateReply(const std::string& body, MutateReply* reply) {
  WireReader r(body);
  Status st = r.U64(&reply->epoch);
  if (st.ok()) st = r.U64(&reply->seq);
  if (st.ok()) st = r.U64(&reply->applied_inserts);
  if (st.ok()) st = r.U64(&reply->applied_deletes);
  if (st.ok()) st = r.U64(&reply->noops);
  if (st.ok()) st = r.U64(&reply->triangles);
  if (st.ok()) st = r.U64(&reply->num_nodes);
  if (st.ok()) st = r.U64(&reply->num_edges);
  if (st.ok()) st = r.U64(&reply->overlay_arcs);
  if (st.ok()) st = r.U8(&reply->compacted);
  if (st.ok()) st = r.F64(&reply->predicted_ops);
  if (st.ok()) st = r.F64(&reply->wall_s);
  if (!st.ok()) return st;
  return r.ExpectEnd();
}

Status SendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds cap");
  }
  unsigned char header[4];
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<unsigned char>((len >> (8 * i)) & 0xff);
  }
  const Status st = SendAll(fd, header, sizeof header);
  if (!st.ok()) return st;
  return SendAll(fd, payload.data(), payload.size());
}

Status RecvFrame(int fd, std::string* payload, bool* clean_eof) {
  unsigned char header[4];
  Status st = RecvAll(fd, header, sizeof header, clean_eof);
  if (!st.ok() || *clean_eof) return st;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds cap");
  }
  payload->resize(len);
  if (len == 0) return Status::OK();
  bool mid_eof = false;
  st = RecvAll(fd, payload->data(), len, &mid_eof);
  if (!st.ok()) return st;
  if (mid_eof) {
    return Status::InvalidArgument("connection closed mid-frame");
  }
  return Status::OK();
}

}  // namespace trilist::serve
