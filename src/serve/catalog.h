#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/algo/cost.h"
#include "src/cost/cost_model.h"
#include "src/dyn/dyn_graph.h"
#include "src/graph/binfmt.h"
#include "src/graph/graph.h"
#include "src/order/pipeline.h"
#include "src/serve/protocol.h"
#include "src/util/status.h"

/// \file catalog.h
/// The serving daemon's graph catalog: an LRU-bounded registry of
/// resident graphs (mmapped `.tlg` containers or parsed text edge lists)
/// and their cached orientations keyed by OrientSpec.
///
/// Residency and eviction are refcount-safe by construction: Acquire
/// hands out `shared_ptr<CatalogEntry>`, and eviction merely drops the
/// catalog's own reference — a worker mid-run keeps the entry (and the
/// mmap pinned underneath it) alive until its last reference dies, so an
/// eviction can never unmap memory an in-flight listing is reading.
///
/// Each entry carries a shared cost::CostModel over its degree sequence
/// (src/cost/cost_model.h) — the same Section-3 pricing layer the query
/// planner uses — which is what the admission controller consults before
/// a request is ever queued: the degree sequence is known the moment the
/// graph is resident, so the expected CPU cost of any (order, method)
/// pair is computable without running anything (Proposition 4 / the
/// Berry et al. observation that degree sequences predict triangle
/// work).

namespace trilist::serve {

/// Configuration of a GraphCatalog.
struct CatalogOptions {
  /// Maximum resident graphs; the least-recently-acquired entry beyond
  /// this is evicted (its memory lives on until in-flight users finish).
  size_t capacity = 8;
  /// Directory against which bare graph names resolve: "web" tries
  /// `<root>/web`, `<root>/web.tlg`, `<root>/web.txt` in that order.
  /// Names may not contain path separators or dot-dot segments.
  std::string root;
  /// Explicit name -> path registrations (checked before `root`).
  std::map<std::string, std::string> named;
  /// Open `.tlg` containers demand-paged (TlgLoadOptions::paged): pages
  /// fault in as queries touch them instead of being prefaulted and
  /// checksummed up front. Serving a catalog much larger than RAM trades
  /// the one-time CRC sweep for lazy residency.
  bool paged = false;
  /// Mutation compaction trigger: fold the delta overlay back into the
  /// base CSR once it holds at least `compact_overlay_fraction` of the
  /// base arc count and at least `compact_min_arcs` arcs (the floor keeps
  /// tiny graphs from compacting on every batch).
  double compact_overlay_fraction = 0.25;
  size_t compact_min_arcs = 4096;
};

/// Monotone counters + gauges of catalog behavior, for /metrics.
struct CatalogStats {
  uint64_t hits = 0;            ///< Acquire found the graph resident.
  uint64_t loads = 0;           ///< cold loads performed.
  uint64_t load_failures = 0;   ///< resolution or load errors.
  uint64_t evictions = 0;       ///< entries dropped by the LRU bound.
  uint64_t orientation_hits = 0;    ///< (O, theta) served from cache.
  uint64_t orientations_built = 0;  ///< (O, theta) built on demand.
  size_t resident = 0;          ///< entries currently in the registry.
  uint64_t mutation_batches = 0;    ///< Mutate calls applied.
  uint64_t mutations_applied = 0;   ///< non-noop inserts + deletes.
  uint64_t mutation_noops = 0;      ///< redundant inserts / deletes.
  uint64_t compactions = 0;         ///< overlay folds into the base CSR.
};

/// \brief One immutable published state of a (possibly mutated) graph.
/// Queries capture the current view at admission and run against it to
/// completion, so a mutation landing mid-query can never change what
/// that query reads — the epoch swap is copy-on-write, and the
/// shared_ptr keeps superseded views alive until their last reader
/// finishes. Epoch 0 is the as-loaded graph; every mutation batch
/// publishes epoch + 1.
struct EpochView {
  Graph graph;             ///< span-backed; pins its backing storage.
  uint64_t epoch = 0;      ///< number of mutation batches published.
  uint64_t seq = 0;        ///< total mutations ever applied.
  uint64_t triangles = 0;  ///< exact count (valid iff triangles_known).
  bool triangles_known = false;  ///< false until the first mutation.
  uint64_t overlay_arcs = 0;     ///< delta arcs outside the base CSR.
};

/// \brief One resident graph: the Graph view, its container (when
/// `.tlg`-backed), the ascending degree sequence for the cost model, and
/// every orientation built so far.
class CatalogEntry {
 public:
  /// Serve-time orientations cached per entry (LRU beyond this). Each
  /// one is O(n + m) memory, so the cache must be bounded: a client
  /// sweeping uniform seeds (every seed is a distinct OrientSpec) would
  /// otherwise grow resident memory without limit.
  static constexpr size_t kMaxCachedOrientations = 8;

  const std::string& name() const { return name_; }
  const Graph& graph() const { return graph_; }
  /// True when the entry is backed by an mmapped `.tlg` container.
  bool tlg_backed() const { return tlg_ != nullptr; }
  /// Degree sequence sorted ascending (the paper's A_n vector).
  const std::vector<int64_t>& ascending_degrees() const {
    return cost_model_->ascending_degrees();
  }

  /// The entry's Section-3 pricing layer (built at load time; thread-safe
  /// and internally memoized). Admission pricing and SJF scheduling both
  /// read through here, so the daemon and the planner can never disagree
  /// on what a request costs. Deliberately NOT refreshed by mutations:
  /// admission readers price concurrently with the mutator, and the
  /// as-loaded degree sequence is an adequate estimate until the graph
  /// is reloaded (documented drift, not a race).
  const cost::CostModel& cost_model() const { return *cost_model_; }

  /// The current published view. Capture once per request and use it for
  /// everything — graph, epoch, reported sizes — so one request never
  /// straddles an epoch swap.
  std::shared_ptr<const EpochView> View() const {
    std::lock_guard<std::mutex> lock(view_mu_);
    return view_;
  }

 private:
  friend class GraphCatalog;

  std::string name_;
  std::string path_;  ///< resolved source path (for error messages).
  std::shared_ptr<TlgFile> tlg_;  ///< null for text-backed entries.
  Graph graph_;  ///< the as-loaded (epoch 0) graph; never mutated.
  std::unique_ptr<cost::CostModel> cost_model_;

  /// Published-view pointer (copy-on-write epoch swap).
  mutable std::mutex view_mu_;
  std::shared_ptr<const EpochView> view_;

  /// Mutation state: one writer at a time per entry. Lazily constructed
  /// on the first Mutate — the initial from-scratch triangle count is
  /// paid once, there.
  std::mutex dyn_mu_;
  std::unique_ptr<dyn::DynGraph> dyn_;

  /// Lazy-load latch (set by GraphCatalog under load_mu_).
  std::mutex load_mu_;
  bool loaded_ = false;
  Status load_status_ = Status::OK();
  double load_wall_s_ = 0;

  /// Orientations built at serve time (beyond any embedded in the
  /// container). Kept in LRU order (front = coldest) and capped at
  /// kMaxCachedOrientations. Valid only for `built_epoch_`; a mutation
  /// publishing a new epoch invalidates the lot (cleared lazily on the
  /// next Orient).
  std::mutex orient_mu_;
  std::vector<std::pair<OrientSpec, OrientedGraph>> built_;
  uint64_t built_epoch_ = 0;  ///< guarded by orient_mu_.

  uint64_t last_used_tick_ = 0;  ///< guarded by the catalog mutex.
};

/// \brief Thread-safe LRU registry of resident graphs.
class GraphCatalog {
 public:
  explicit GraphCatalog(CatalogOptions options)
      : options_(std::move(options)) {}

  /// Result of one Acquire: the (loaded) entry, whether it was already
  /// resident, and the load wall the *triggering* request should report
  /// (0 on a hit — the observable "warm catalog skips the load stage").
  struct Acquired {
    std::shared_ptr<CatalogEntry> entry;
    bool hit = false;
    double load_wall_s = 0;
  };

  /// Resolves `name`, loading it on first use (concurrent first
  /// acquires of the same graph serialize on the entry latch; different
  /// graphs load concurrently). On failure `*error_code` distinguishes
  /// an unresolvable name (kNotFound) from a broken file (kInternal).
  Result<Acquired> Acquire(const std::string& name, ErrorCode* error_code);

  /// Result of one orientation lookup/build against an entry.
  struct Oriented {
    OrientedGraph oriented;  ///< span-backed copy, safe past eviction.
    bool cached = false;     ///< reused (embedded or previously built).
    double order_wall_s = 0;
    double orient_wall_s = 0;
  };

  /// Returns `view`'s orientation under `spec`, building and caching it
  /// on first use (stats-counted). Embedded `.tlg` orientations are
  /// reusable only at epoch 0 (they describe the as-loaded CSR); a view
  /// from a newer epoch builds from its own graph, and the build cache
  /// is invalidated whenever the epoch moves. `threads` is the build
  /// concurrency; the result is identical for any value.
  Oriented Orient(const std::shared_ptr<CatalogEntry>& entry,
                  const std::shared_ptr<const EpochView>& view,
                  const OrientSpec& spec, int threads);

  /// Convenience overload against the entry's current view.
  Oriented Orient(const std::shared_ptr<CatalogEntry>& entry,
                  const OrientSpec& spec, int threads);

  /// Result of one mutation batch (the MutateReply's source of truth).
  struct MutationOutcome {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    uint64_t applied_inserts = 0;
    uint64_t applied_deletes = 0;
    uint64_t noops = 0;
    uint64_t triangles = 0;
    uint64_t num_nodes = 0;
    uint64_t num_edges = 0;
    uint64_t overlay_arcs = 0;
    bool compacted = false;
    double predicted_ops = 0;
    int64_t comparisons = 0;
  };

  /// Applies `ops` to the entry as one atomic batch: the incremental
  /// maintenance runs under the entry's writer lock, a fresh immutable
  /// EpochView is published at the end, and in-flight queries holding
  /// the previous view are untouched. Triggers a compaction when the
  /// overlay crosses the configured threshold. InvalidArgument (bad
  /// mutation) leaves the graph exactly as it was.
  Result<MutationOutcome> Mutate(const std::shared_ptr<CatalogEntry>& entry,
                                 std::span<const dyn::EdgeMutation> ops);

  /// Point-in-time stats snapshot.
  CatalogStats StatsSnapshot() const;

  /// Per-graph dynamic state of every resident entry, for /metrics
  /// gauges (epoch, seq, overlay size, maintained count).
  struct DynRow {
    std::string name;
    uint64_t epoch = 0;
    uint64_t seq = 0;
    uint64_t overlay_arcs = 0;
    uint64_t triangles = 0;
    bool triangles_known = false;
  };
  std::vector<DynRow> DynRows() const;

 private:
  Status ResolvePath(const std::string& name, std::string* path) const;
  Status LoadEntry(CatalogEntry* entry, const std::string& path) const;
  void EvictIfOverCapacity();

  CatalogOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<CatalogEntry>> entries_;
  uint64_t tick_ = 0;
  CatalogStats stats_;
};

}  // namespace trilist::serve
