#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/algo/cost.h"
#include "src/cost/cost_model.h"
#include "src/graph/binfmt.h"
#include "src/graph/graph.h"
#include "src/order/pipeline.h"
#include "src/serve/protocol.h"
#include "src/util/status.h"

/// \file catalog.h
/// The serving daemon's graph catalog: an LRU-bounded registry of
/// resident graphs (mmapped `.tlg` containers or parsed text edge lists)
/// and their cached orientations keyed by OrientSpec.
///
/// Residency and eviction are refcount-safe by construction: Acquire
/// hands out `shared_ptr<CatalogEntry>`, and eviction merely drops the
/// catalog's own reference — a worker mid-run keeps the entry (and the
/// mmap pinned underneath it) alive until its last reference dies, so an
/// eviction can never unmap memory an in-flight listing is reading.
///
/// Each entry carries a shared cost::CostModel over its degree sequence
/// (src/cost/cost_model.h) — the same Section-3 pricing layer the query
/// planner uses — which is what the admission controller consults before
/// a request is ever queued: the degree sequence is known the moment the
/// graph is resident, so the expected CPU cost of any (order, method)
/// pair is computable without running anything (Proposition 4 / the
/// Berry et al. observation that degree sequences predict triangle
/// work).

namespace trilist::serve {

/// Configuration of a GraphCatalog.
struct CatalogOptions {
  /// Maximum resident graphs; the least-recently-acquired entry beyond
  /// this is evicted (its memory lives on until in-flight users finish).
  size_t capacity = 8;
  /// Directory against which bare graph names resolve: "web" tries
  /// `<root>/web`, `<root>/web.tlg`, `<root>/web.txt` in that order.
  /// Names may not contain path separators or dot-dot segments.
  std::string root;
  /// Explicit name -> path registrations (checked before `root`).
  std::map<std::string, std::string> named;
  /// Open `.tlg` containers demand-paged (TlgLoadOptions::paged): pages
  /// fault in as queries touch them instead of being prefaulted and
  /// checksummed up front. Serving a catalog much larger than RAM trades
  /// the one-time CRC sweep for lazy residency.
  bool paged = false;
};

/// Monotone counters + gauges of catalog behavior, for /metrics.
struct CatalogStats {
  uint64_t hits = 0;            ///< Acquire found the graph resident.
  uint64_t loads = 0;           ///< cold loads performed.
  uint64_t load_failures = 0;   ///< resolution or load errors.
  uint64_t evictions = 0;       ///< entries dropped by the LRU bound.
  uint64_t orientation_hits = 0;    ///< (O, theta) served from cache.
  uint64_t orientations_built = 0;  ///< (O, theta) built on demand.
  size_t resident = 0;          ///< entries currently in the registry.
};

/// \brief One resident graph: the Graph view, its container (when
/// `.tlg`-backed), the ascending degree sequence for the cost model, and
/// every orientation built so far.
class CatalogEntry {
 public:
  /// Serve-time orientations cached per entry (LRU beyond this). Each
  /// one is O(n + m) memory, so the cache must be bounded: a client
  /// sweeping uniform seeds (every seed is a distinct OrientSpec) would
  /// otherwise grow resident memory without limit.
  static constexpr size_t kMaxCachedOrientations = 8;

  const std::string& name() const { return name_; }
  const Graph& graph() const { return graph_; }
  /// True when the entry is backed by an mmapped `.tlg` container.
  bool tlg_backed() const { return tlg_ != nullptr; }
  /// Degree sequence sorted ascending (the paper's A_n vector).
  const std::vector<int64_t>& ascending_degrees() const {
    return cost_model_->ascending_degrees();
  }

  /// The entry's Section-3 pricing layer (built at load time; thread-safe
  /// and internally memoized). Admission pricing and SJF scheduling both
  /// read through here, so the daemon and the planner can never disagree
  /// on what a request costs.
  const cost::CostModel& cost_model() const { return *cost_model_; }

 private:
  friend class GraphCatalog;

  std::string name_;
  std::string path_;  ///< resolved source path (for error messages).
  std::shared_ptr<TlgFile> tlg_;  ///< null for text-backed entries.
  Graph graph_;
  std::unique_ptr<cost::CostModel> cost_model_;

  /// Lazy-load latch (set by GraphCatalog under load_mu_).
  std::mutex load_mu_;
  bool loaded_ = false;
  Status load_status_ = Status::OK();
  double load_wall_s_ = 0;

  /// Orientations built at serve time (beyond any embedded in the
  /// container). Kept in LRU order (front = coldest) and capped at
  /// kMaxCachedOrientations.
  std::mutex orient_mu_;
  std::vector<std::pair<OrientSpec, OrientedGraph>> built_;

  uint64_t last_used_tick_ = 0;  ///< guarded by the catalog mutex.
};

/// \brief Thread-safe LRU registry of resident graphs.
class GraphCatalog {
 public:
  explicit GraphCatalog(CatalogOptions options)
      : options_(std::move(options)) {}

  /// Result of one Acquire: the (loaded) entry, whether it was already
  /// resident, and the load wall the *triggering* request should report
  /// (0 on a hit — the observable "warm catalog skips the load stage").
  struct Acquired {
    std::shared_ptr<CatalogEntry> entry;
    bool hit = false;
    double load_wall_s = 0;
  };

  /// Resolves `name`, loading it on first use (concurrent first
  /// acquires of the same graph serialize on the entry latch; different
  /// graphs load concurrently). On failure `*error_code` distinguishes
  /// an unresolvable name (kNotFound) from a broken file (kInternal).
  Result<Acquired> Acquire(const std::string& name, ErrorCode* error_code);

  /// Result of one orientation lookup/build against an entry.
  struct Oriented {
    OrientedGraph oriented;  ///< span-backed copy, safe past eviction.
    bool cached = false;     ///< reused (embedded or previously built).
    double order_wall_s = 0;
    double orient_wall_s = 0;
  };

  /// Returns the entry's orientation under `spec`, building and caching
  /// it on first use (stats-counted). `threads` is the build concurrency;
  /// the result is identical for any value.
  Oriented Orient(const std::shared_ptr<CatalogEntry>& entry,
                  const OrientSpec& spec, int threads);

  /// Point-in-time stats snapshot.
  CatalogStats StatsSnapshot() const;

 private:
  Status ResolvePath(const std::string& name, std::string* path) const;
  Status LoadEntry(CatalogEntry* entry, const std::string& path) const;
  void EvictIfOverCapacity();

  CatalogOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<CatalogEntry>> entries_;
  uint64_t tick_ = 0;
  CatalogStats stats_;
};

}  // namespace trilist::serve
