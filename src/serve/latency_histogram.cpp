#include "src/serve/latency_histogram.h"

namespace trilist::serve {

double LatencyHistogram::UpperBound(size_t i) {
  double bound = 1e-4;
  for (size_t k = 0; k < i; ++k) bound *= 2;
  return bound;
}

void LatencyHistogram::Observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = 0;
  double bound = 1e-4;
  while (bucket < kNumFiniteBuckets && seconds > bound) {
    bound *= 2;
    ++bucket;
  }
  ++counts_[bucket];
  ++total_;
  sum_ += seconds;
}

uint64_t LatencyHistogram::CumulativeCount(size_t i) const {
  uint64_t sum = 0;
  for (size_t k = 0; k <= i && k < counts_.size(); ++k) sum += counts_[k];
  return sum;
}

double LatencyHistogram::QuantileUpperBound(double q) const {
  if (total_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double target = q * static_cast<double>(total_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumFiniteBuckets; ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) return UpperBound(i);
  }
  return UpperBound(kNumFiniteBuckets - 1);
}

}  // namespace trilist::serve
