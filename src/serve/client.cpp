#include "src/serve/client.h"

#include <utility>

#include "src/serve/net.h"

namespace trilist::serve {

Result<ServeClient> ServeClient::ConnectTcp(const std::string& host,
                                            uint16_t port) {
  Result<int> fd = trilist::serve::ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return ServeClient(*fd);
}

Result<ServeClient> ServeClient::ConnectUnix(const std::string& path) {
  Result<int> fd = trilist::serve::ConnectUnix(path);
  if (!fd.ok()) return fd.status();
  return ServeClient(*fd);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      last_error_(std::move(other.last_error_)),
      last_failure_was_reply_(other.last_failure_was_reply_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    CloseFd(fd_);
    fd_ = std::exchange(other.fd_, -1);
    last_error_ = std::move(other.last_error_);
    last_failure_was_reply_ = other.last_failure_was_reply_;
  }
  return *this;
}

ServeClient::~ServeClient() { CloseFd(fd_); }

Status ServeClient::RoundTrip(const std::string& payload, MsgType expected,
                              std::string* response_body) {
  last_failure_was_reply_ = false;
  if (fd_ < 0) return Status::Internal("client is not connected");
  Status st = SendFrame(fd_, payload);
  if (!st.ok()) return st;

  std::string response;
  bool eof = false;
  st = RecvFrame(fd_, &response, &eof);
  if (!st.ok()) return st;
  if (eof) return Status::Internal("server closed the connection");

  MsgType type;
  st = DecodeHeader(response, &type, response_body);
  if (!st.ok()) return st;
  if (type == MsgType::kError) {
    st = DecodeError(*response_body, &last_error_);
    if (!st.ok()) return st;
    last_failure_was_reply_ = true;
    return Status::Internal(std::string(ErrorCodeName(last_error_.code)) +
                            ": " + last_error_.message);
  }
  if (type != expected) {
    return Status::Internal("unexpected response message type");
  }
  return Status::OK();
}

Result<QueryResponse> ServeClient::Query(const QueryRequest& request) {
  std::string body;
  Status st = RoundTrip(EncodeQueryRequest(request), MsgType::kQueryOk, &body);
  if (!st.ok()) return st;
  QueryResponse response;
  st = DecodeQueryResponse(body, &response);
  if (!st.ok()) return st;
  return response;
}

Result<MutateReply> ServeClient::Mutate(const MutateRequest& request) {
  std::string body;
  Status st =
      RoundTrip(EncodeMutateRequest(request), MsgType::kMutateOk, &body);
  if (!st.ok()) return st;
  MutateReply reply;
  st = DecodeMutateReply(body, &reply);
  if (!st.ok()) return st;
  return reply;
}

Result<std::string> ServeClient::Stats() {
  std::string body;
  Status st = RoundTrip(EncodeEmpty(MsgType::kStats), MsgType::kStatsOk, &body);
  if (!st.ok()) return st;
  StatsReply stats;
  st = DecodeStatsReply(body, &stats);
  if (!st.ok()) return st;
  return stats.prometheus_text;
}

Status ServeClient::Ping() {
  std::string body;
  return RoundTrip(EncodeEmpty(MsgType::kPing), MsgType::kPong, &body);
}

}  // namespace trilist::serve
