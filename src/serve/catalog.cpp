#include "src/serve/catalog.h"

#include <unistd.h>

#include <algorithm>

#include "src/degree/degree_stats.h"
#include "src/graph/io.h"
#include "src/obs/trace.h"
#include "src/run/runner.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace trilist::serve {

namespace {

/// A catalog name is an opaque identifier, never a path: no separators,
/// no dot-dot, no hidden-file prefix. This is what lets the daemon serve
/// a directory without exposing the rest of the filesystem.
bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  if (name.front() == '.') return false;
  for (const char c : name) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return name.find("..") == std::string::npos;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

Status GraphCatalog::ResolvePath(const std::string& name,
                                 std::string* path) const {
  const auto it = options_.named.find(name);
  if (it != options_.named.end()) {
    *path = it->second;
    return Status::OK();
  }
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid graph name: '" + name + "'");
  }
  if (options_.root.empty()) {
    return Status::InvalidArgument("unknown graph: '" + name + "'");
  }
  for (const char* suffix : {"", ".tlg", ".txt"}) {
    const std::string candidate = options_.root + "/" + name + suffix;
    if (FileExists(candidate)) {
      *path = candidate;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown graph: '" + name +
                                 "' (not in " + options_.root + ")");
}

Status GraphCatalog::LoadEntry(CatalogEntry* entry,
                               const std::string& path) const {
  if (LooksLikeTlgFile(path)) {
    TlgLoadOptions lopts;
    lopts.paged = options_.paged;
    Result<TlgFile> t = TlgFile::Open(path, lopts);
    if (!t.ok()) return t.status();
    entry->tlg_ = std::make_shared<TlgFile>(std::move(t).ValueOrDie());
    entry->graph_ = entry->tlg_->graph();
  } else {
    Result<Graph> g = ReadEdgeListFile(path);
    if (!g.ok()) return g.status();
    entry->graph_ = std::move(g).ValueOrDie();
  }
  entry->cost_model_ =
      std::make_unique<cost::CostModel>(AscendingDegrees(entry->graph_));
  // Publish the as-loaded state as epoch 0 (the Graph copy is a cheap
  // span view sharing the entry's backing storage).
  auto view = std::make_shared<EpochView>();
  view->graph = entry->graph_;
  {
    std::lock_guard<std::mutex> lock(entry->view_mu_);
    entry->view_ = std::move(view);
  }
  return Status::OK();
}

void GraphCatalog::EvictIfOverCapacity() {
  const size_t capacity = std::max<size_t>(1, options_.capacity);
  while (entries_.size() > capacity) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second->last_used_tick_ < victim->second->last_used_tick_) {
        victim = it;
      }
    }
    // Dropping the map's reference is all eviction does; an in-flight
    // run's shared_ptr keeps the entry (and its mmap) alive.
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.resident = entries_.size();
}

Result<GraphCatalog::Acquired> GraphCatalog::Acquire(
    const std::string& name, ErrorCode* error_code) {
  *error_code = ErrorCode::kInternal;
  std::shared_ptr<CatalogEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      entry = it->second;
      entry->last_used_tick_ = ++tick_;
    } else {
      std::string path;
      const Status st = ResolvePath(name, &path);
      if (!st.ok()) {
        ++stats_.load_failures;
        *error_code = ErrorCode::kNotFound;
        return st;
      }
      entry = std::make_shared<CatalogEntry>();
      entry->name_ = name;
      entry->path_ = path;
      entry->last_used_tick_ = ++tick_;
      entries_[name] = entry;
      EvictIfOverCapacity();
    }
  }

  // Load outside the registry lock: different graphs load concurrently;
  // concurrent first-acquires of the same graph serialize on the latch.
  bool loaded_here = false;
  {
    std::lock_guard<std::mutex> lock(entry->load_mu_);
    if (!entry->loaded_) {
      Timer timer;
      entry->load_status_ = LoadEntry(entry.get(), entry->path_);
      entry->load_wall_s_ = timer.ElapsedSeconds();
      entry->loaded_ = true;
      loaded_here = true;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!entry->load_status_.ok()) {
    ++stats_.load_failures;
    const auto it = entries_.find(name);
    if (it != entries_.end() && it->second == entry) {
      entries_.erase(it);
      stats_.resident = entries_.size();
    }
    return entry->load_status_;
  }
  if (loaded_here) {
    ++stats_.loads;
  } else {
    ++stats_.hits;
  }
  Acquired out;
  out.entry = std::move(entry);
  out.hit = !loaded_here;
  out.load_wall_s = loaded_here ? out.entry->load_wall_s_ : 0;
  return out;
}

GraphCatalog::Oriented GraphCatalog::Orient(
    const std::shared_ptr<CatalogEntry>& entry,
    const std::shared_ptr<const EpochView>& view, const OrientSpec& spec,
    int threads) {
  Oriented out;
  // Embedded container orientations describe the as-loaded CSR, so they
  // are only valid for epoch-0 views.
  if (entry->tlg_ != nullptr && view->epoch == 0) {
    const OrientedGraph* embedded = entry->tlg_->FindOrientation(spec);
    if (embedded != nullptr) {
      out.oriented = *embedded;  // span-backed copy, pins the mapping
      out.cached = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.orientation_hits;
      return out;
    }
  }
  {
    std::lock_guard<std::mutex> lock(entry->orient_mu_);
    auto& built = entry->built_;
    // A mutation moved the epoch since these were built: every cached
    // orientation describes a stale graph. Drop the lot.
    if (entry->built_epoch_ != view->epoch) {
      built.clear();
      entry->built_epoch_ = view->epoch;
    }
    for (auto it = built.begin(); it != built.end(); ++it) {
      if (it->first == spec) {
        out.oriented = it->second;
        out.cached = true;
        // LRU order: a hit moves to the back (warmest position).
        std::rotate(it, it + 1, built.end());
        std::lock_guard<std::mutex> stats_lock(mu_);
        ++stats_.orientation_hits;
        return out;
      }
    }
    StageClock clock;
    out.oriented = OrientStages(view->graph, spec, threads, &clock);
    out.order_wall_s = clock.WallOf("order");
    out.orient_wall_s = clock.WallOf("orient");
    // Each cached orientation is O(n + m); evict the coldest beyond the
    // cap so a seed-sweeping client cannot inflate resident memory.
    if (built.size() >= CatalogEntry::kMaxCachedOrientations) {
      built.erase(built.begin());
    }
    built.emplace_back(spec, out.oriented);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.orientations_built;
  return out;
}

GraphCatalog::Oriented GraphCatalog::Orient(
    const std::shared_ptr<CatalogEntry>& entry, const OrientSpec& spec,
    int threads) {
  return Orient(entry, entry->View(), spec, threads);
}

Result<GraphCatalog::MutationOutcome> GraphCatalog::Mutate(
    const std::shared_ptr<CatalogEntry>& entry,
    std::span<const dyn::EdgeMutation> ops) {
  obs::TraceSpan span("mutate");
  span.Arg("batch", static_cast<int64_t>(ops.size()));
  MutationOutcome out;
  {
    // One writer per entry. Readers never take dyn_mu_: they hold a
    // published view and are oblivious to the mutation in progress.
    std::lock_guard<std::mutex> lock(entry->dyn_mu_);
    if (entry->dyn_ == nullptr) {
      // First mutation ever: pay the one full from-scratch count here.
      entry->dyn_ = std::make_unique<dyn::DynGraph>(
          dyn::DynGraph::FromBase(entry->graph_));
    }
    Result<dyn::ApplyResult> applied = entry->dyn_->Apply(ops);
    if (!applied.ok()) return applied.status();
    const double fraction =
        std::max(0.0, options_.compact_overlay_fraction);
    if (fraction > 0 &&
        entry->dyn_->ShouldCompact(fraction, options_.compact_min_arcs)) {
      entry->dyn_->Compact();
      out.compacted = true;
    }
    out.applied_inserts = applied->applied_inserts;
    out.applied_deletes = applied->applied_deletes;
    out.noops = applied->noops;
    out.predicted_ops = applied->predicted_ops;
    out.comparisons = applied->comparisons;
    out.seq = entry->dyn_->seq();
    out.triangles = entry->dyn_->triangles();
    out.num_nodes = entry->dyn_->num_nodes();
    out.num_edges = entry->dyn_->num_edges();
    out.overlay_arcs = entry->dyn_->overlay_arcs();

    // Copy-on-write epoch swap: materialize the post-batch graph into a
    // fresh immutable view and publish it. In-flight queries keep their
    // old view alive through its shared_ptr.
    auto view = std::make_shared<EpochView>();
    view->graph = entry->dyn_->MaterializeGraph();
    view->seq = out.seq;
    view->triangles = out.triangles;
    view->triangles_known = true;
    view->overlay_arcs = out.overlay_arcs;
    {
      std::lock_guard<std::mutex> view_lock(entry->view_mu_);
      view->epoch = entry->view_->epoch + 1;
      out.epoch = view->epoch;
      entry->view_ = std::move(view);
    }
  }
  span.Arg("epoch", static_cast<int64_t>(out.epoch));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.mutation_batches;
  stats_.mutations_applied += out.applied_inserts + out.applied_deletes;
  stats_.mutation_noops += out.noops;
  if (out.compacted) ++stats_.compactions;
  return out;
}

std::vector<GraphCatalog::DynRow> GraphCatalog::DynRows() const {
  std::vector<DynRow> rows;
  std::lock_guard<std::mutex> lock(mu_);
  rows.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    const std::shared_ptr<const EpochView> view = entry->View();
    if (view == nullptr) continue;  // still loading
    DynRow row;
    row.name = name;
    row.epoch = view->epoch;
    row.seq = view->seq;
    row.overlay_arcs = view->overlay_arcs;
    row.triangles = view->triangles;
    row.triangles_known = view->triangles_known;
    rows.push_back(std::move(row));
  }
  return rows;
}

CatalogStats GraphCatalog::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace trilist::serve
