#include "src/serve/catalog.h"

#include <unistd.h>

#include <algorithm>

#include "src/degree/degree_stats.h"
#include "src/graph/io.h"
#include "src/run/runner.h"
#include "src/util/metrics.h"
#include "src/util/timer.h"

namespace trilist::serve {

namespace {

/// A catalog name is an opaque identifier, never a path: no separators,
/// no dot-dot, no hidden-file prefix. This is what lets the daemon serve
/// a directory without exposing the rest of the filesystem.
bool ValidName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  if (name.front() == '.') return false;
  for (const char c : name) {
    if (c == '/' || c == '\\' || c == '\0') return false;
  }
  return name.find("..") == std::string::npos;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

}  // namespace

Status GraphCatalog::ResolvePath(const std::string& name,
                                 std::string* path) const {
  const auto it = options_.named.find(name);
  if (it != options_.named.end()) {
    *path = it->second;
    return Status::OK();
  }
  if (!ValidName(name)) {
    return Status::InvalidArgument("invalid graph name: '" + name + "'");
  }
  if (options_.root.empty()) {
    return Status::InvalidArgument("unknown graph: '" + name + "'");
  }
  for (const char* suffix : {"", ".tlg", ".txt"}) {
    const std::string candidate = options_.root + "/" + name + suffix;
    if (FileExists(candidate)) {
      *path = candidate;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown graph: '" + name +
                                 "' (not in " + options_.root + ")");
}

Status GraphCatalog::LoadEntry(CatalogEntry* entry,
                               const std::string& path) const {
  if (LooksLikeTlgFile(path)) {
    TlgLoadOptions lopts;
    lopts.paged = options_.paged;
    Result<TlgFile> t = TlgFile::Open(path, lopts);
    if (!t.ok()) return t.status();
    entry->tlg_ = std::make_shared<TlgFile>(std::move(t).ValueOrDie());
    entry->graph_ = entry->tlg_->graph();
  } else {
    Result<Graph> g = ReadEdgeListFile(path);
    if (!g.ok()) return g.status();
    entry->graph_ = std::move(g).ValueOrDie();
  }
  entry->cost_model_ =
      std::make_unique<cost::CostModel>(AscendingDegrees(entry->graph_));
  return Status::OK();
}

void GraphCatalog::EvictIfOverCapacity() {
  const size_t capacity = std::max<size_t>(1, options_.capacity);
  while (entries_.size() > capacity) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second->last_used_tick_ < victim->second->last_used_tick_) {
        victim = it;
      }
    }
    // Dropping the map's reference is all eviction does; an in-flight
    // run's shared_ptr keeps the entry (and its mmap) alive.
    entries_.erase(victim);
    ++stats_.evictions;
  }
  stats_.resident = entries_.size();
}

Result<GraphCatalog::Acquired> GraphCatalog::Acquire(
    const std::string& name, ErrorCode* error_code) {
  *error_code = ErrorCode::kInternal;
  std::shared_ptr<CatalogEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      entry = it->second;
      entry->last_used_tick_ = ++tick_;
    } else {
      std::string path;
      const Status st = ResolvePath(name, &path);
      if (!st.ok()) {
        ++stats_.load_failures;
        *error_code = ErrorCode::kNotFound;
        return st;
      }
      entry = std::make_shared<CatalogEntry>();
      entry->name_ = name;
      entry->path_ = path;
      entry->last_used_tick_ = ++tick_;
      entries_[name] = entry;
      EvictIfOverCapacity();
    }
  }

  // Load outside the registry lock: different graphs load concurrently;
  // concurrent first-acquires of the same graph serialize on the latch.
  bool loaded_here = false;
  {
    std::lock_guard<std::mutex> lock(entry->load_mu_);
    if (!entry->loaded_) {
      Timer timer;
      entry->load_status_ = LoadEntry(entry.get(), entry->path_);
      entry->load_wall_s_ = timer.ElapsedSeconds();
      entry->loaded_ = true;
      loaded_here = true;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!entry->load_status_.ok()) {
    ++stats_.load_failures;
    const auto it = entries_.find(name);
    if (it != entries_.end() && it->second == entry) {
      entries_.erase(it);
      stats_.resident = entries_.size();
    }
    return entry->load_status_;
  }
  if (loaded_here) {
    ++stats_.loads;
  } else {
    ++stats_.hits;
  }
  Acquired out;
  out.entry = std::move(entry);
  out.hit = !loaded_here;
  out.load_wall_s = loaded_here ? out.entry->load_wall_s_ : 0;
  return out;
}

GraphCatalog::Oriented GraphCatalog::Orient(
    const std::shared_ptr<CatalogEntry>& entry, const OrientSpec& spec,
    int threads) {
  Oriented out;
  if (entry->tlg_ != nullptr) {
    const OrientedGraph* embedded = entry->tlg_->FindOrientation(spec);
    if (embedded != nullptr) {
      out.oriented = *embedded;  // span-backed copy, pins the mapping
      out.cached = true;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.orientation_hits;
      return out;
    }
  }
  {
    std::lock_guard<std::mutex> lock(entry->orient_mu_);
    auto& built = entry->built_;
    for (auto it = built.begin(); it != built.end(); ++it) {
      if (it->first == spec) {
        out.oriented = it->second;
        out.cached = true;
        // LRU order: a hit moves to the back (warmest position).
        std::rotate(it, it + 1, built.end());
        std::lock_guard<std::mutex> stats_lock(mu_);
        ++stats_.orientation_hits;
        return out;
      }
    }
    StageClock clock;
    out.oriented = OrientStages(entry->graph_, spec, threads, &clock);
    out.order_wall_s = clock.WallOf("order");
    out.orient_wall_s = clock.WallOf("orient");
    // Each cached orientation is O(n + m); evict the coldest beyond the
    // cap so a seed-sweeping client cannot inflate resident memory.
    if (built.size() >= CatalogEntry::kMaxCachedOrientations) {
      built.erase(built.begin());
    }
    built.emplace_back(spec, out.oriented);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.orientations_built;
  return out;
}

CatalogStats GraphCatalog::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace trilist::serve
