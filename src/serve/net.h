#pragma once

#include <cstdint>
#include <string>

#include "src/util/status.h"

/// \file net.h
/// Thin POSIX socket helpers shared by the server and the client: TCP and
/// Unix-domain listeners/connectors plus EINTR-safe whole-buffer send and
/// receive. No framing lives here (see protocol.h); these functions move
/// raw bytes and translate errno into Status.

namespace trilist::serve {

/// \brief A bound, listening socket.
struct Listener {
  int fd = -1;
  /// Resolved TCP port (meaningful for ListenTcp; requesting port 0
  /// binds an ephemeral port and reports the kernel's choice here so
  /// parallel test runs never collide).
  uint16_t port = 0;
};

/// Binds and listens on `host:port` (IPv4 dotted quad or "0.0.0.0").
/// Port 0 picks an ephemeral port, reported in Listener::port.
Result<Listener> ListenTcp(const std::string& host, uint16_t port);

/// Binds and listens on a Unix-domain socket at `path`. A stale socket
/// file left by a crashed previous instance (one nothing is listening
/// on — probed with connect()) is unlinked and rebound; a path with a
/// live listener fails with EADDRINUSE as before.
Result<Listener> ListenUnix(const std::string& path);

/// Connects to a TCP endpoint.
Result<int> ConnectTcp(const std::string& host, uint16_t port);

/// Connects to a Unix-domain socket.
Result<int> ConnectUnix(const std::string& path);

/// Writes exactly `size` bytes, retrying on EINTR and short writes.
/// If the socket has SO_SNDTIMEO set (see SetSendTimeout) and the peer
/// stops draining, the blocked send fails with a timeout Status instead
/// of blocking forever.
Status SendAll(int fd, const void* data, size_t size);

/// Applies SO_SNDTIMEO to `fd` so a send to a peer that never reads
/// fails after `seconds` instead of blocking indefinitely. No-op when
/// `seconds` <= 0. Best-effort: a failing setsockopt is ignored.
void SetSendTimeout(int fd, double seconds);

/// Reads exactly `size` bytes. A clean EOF before the first byte sets
/// `*clean_eof` and returns OK with nothing read; EOF mid-buffer is an
/// error (truncated stream).
Status RecvAll(int fd, void* data, size_t size, bool* clean_eof);

/// close(), EINTR-tolerant, no-op on negative fds.
void CloseFd(int fd);

}  // namespace trilist::serve
