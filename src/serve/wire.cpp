#include "src/serve/wire.h"

namespace trilist::serve {

Status WireReader::Take(size_t count, const char** out) {
  if (count > Remaining()) {
    return Status::InvalidArgument("truncated frame: need " +
                                   std::to_string(count) + " bytes, have " +
                                   std::to_string(Remaining()));
  }
  *out = bytes_.data() + pos_;
  pos_ += count;
  return Status::OK();
}

namespace {

template <typename T>
T LoadLe(const char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

Status WireReader::U8(uint8_t* v) {
  const char* p;
  const Status st = Take(1, &p);
  if (!st.ok()) return st;
  *v = static_cast<uint8_t>(static_cast<unsigned char>(*p));
  return Status::OK();
}

Status WireReader::U16(uint16_t* v) {
  const char* p;
  const Status st = Take(2, &p);
  if (!st.ok()) return st;
  *v = LoadLe<uint16_t>(p);
  return Status::OK();
}

Status WireReader::U32(uint32_t* v) {
  const char* p;
  const Status st = Take(4, &p);
  if (!st.ok()) return st;
  *v = LoadLe<uint32_t>(p);
  return Status::OK();
}

Status WireReader::U64(uint64_t* v) {
  const char* p;
  const Status st = Take(8, &p);
  if (!st.ok()) return st;
  *v = LoadLe<uint64_t>(p);
  return Status::OK();
}

Status WireReader::I64(int64_t* v) {
  uint64_t u;
  const Status st = U64(&u);
  if (!st.ok()) return st;
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireReader::F64(double* v) {
  uint64_t bits;
  const Status st = U64(&bits);
  if (!st.ok()) return st;
  std::memcpy(v, &bits, sizeof bits);
  return Status::OK();
}

Status WireReader::Str(std::string* v) {
  uint32_t len;
  Status st = U32(&len);
  if (!st.ok()) return st;
  if (len > kMaxWireString) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds wire cap");
  }
  const char* p;
  st = Take(len, &p);
  if (!st.ok()) return st;
  v->assign(p, len);
  return Status::OK();
}

Status WireReader::ExpectEnd() const {
  if (Remaining() != 0) {
    return Status::InvalidArgument(std::to_string(Remaining()) +
                                   " trailing bytes in frame");
  }
  return Status::OK();
}

}  // namespace trilist::serve
