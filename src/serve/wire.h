#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

/// \file wire.h
/// Byte-level codec of the serve protocol (src/serve/protocol.h): a
/// little-endian append-only writer and a bounds-checked reader. Every
/// multi-byte integer is encoded little-endian regardless of host order;
/// doubles travel as their IEEE-754 bit pattern. Strings are a u32 length
/// prefix followed by raw bytes (no terminator), capped at
/// kMaxWireString so a hostile peer cannot make the reader allocate
/// unbounded memory from a 4-byte header.
///
/// The reader never trusts the input: every Read* checks the remaining
/// byte count and returns a Status error on truncation, so a corrupt or
/// malicious frame yields a clean protocol error, never UB — the same
/// discipline as the `.tlg` loader (src/graph/binfmt.h).

namespace trilist::serve {

/// Upper bound on an encoded string (graph names, error messages, JSON
/// report bodies all fit comfortably; anything larger is malformed).
inline constexpr uint32_t kMaxWireString = 8u * 1024 * 1024;

/// \brief Append-only little-endian encoder.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    AppendLe(bits);
  }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view v) {
    U32(static_cast<uint32_t>(v.size()));
    out_.append(v.data(), v.size());
  }

  const std::string& bytes() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string out_;
};

/// \brief Bounds-checked little-endian decoder over a borrowed buffer.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  /// Reads a length-prefixed string; rejects lengths beyond the buffer
  /// or kMaxWireString.
  Status Str(std::string* v);

  /// Bytes not yet consumed.
  size_t Remaining() const { return bytes_.size() - pos_; }
  /// OK exactly when the whole buffer was consumed (trailing garbage in
  /// a frame is a protocol error, not padding).
  Status ExpectEnd() const;

 private:
  Status Take(size_t count, const char** out);
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace trilist::serve
