#include "src/order/permutation.h"

#include <numeric>

#include "src/util/status.h"

namespace trilist {

Permutation::Permutation(size_t n) : map_(n) {
  std::iota(map_.begin(), map_.end(), 0u);
}

Permutation::Permutation(std::vector<uint32_t> map) : map_(std::move(map)) {
  TRILIST_DCHECK(IsValid());
}

Permutation Permutation::Inverse() const {
  std::vector<uint32_t> inv(map_.size());
  for (size_t i = 0; i < map_.size(); ++i) {
    inv[map_[i]] = static_cast<uint32_t>(i);
  }
  return Permutation(std::move(inv));
}

Permutation Permutation::Reverse() const {
  const auto n = static_cast<uint32_t>(map_.size());
  std::vector<uint32_t> rev(map_.size());
  for (size_t i = 0; i < map_.size(); ++i) {
    rev[i] = n - 1 - map_[i];
  }
  return Permutation(std::move(rev));
}

Permutation Permutation::Complement() const {
  const size_t n = map_.size();
  std::vector<uint32_t> comp(n);
  for (size_t i = 0; i < n; ++i) {
    comp[i] = map_[n - 1 - i];
  }
  return Permutation(std::move(comp));
}

bool Permutation::IsValid() const {
  std::vector<bool> seen(map_.size(), false);
  for (uint32_t label : map_) {
    if (label >= map_.size() || seen[label]) return false;
    seen[label] = true;
  }
  return true;
}

}  // namespace trilist
