#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/order/named_orders.h"
#include "src/order/permutation.h"
#include "src/order/pipeline.h"

/// \file registry.h
/// The ordering registry: one uniform OrderingProvider per
/// PermutationKind, covering the paper's five positional families
/// (theta_A/D/RR/CRR/U), the graph-dependent degenerate and AOT hybrid
/// orders, and the degree-tailored split order. Everything that needs to
/// enumerate, parse, build or *price* an ordering — OrientStages, the
/// cost model, the planner, `trilist_cli orders` — goes through this
/// table, so adding an ordering is one provider, not a scatter of switch
/// arms.
///
/// Two capabilities matter downstream:
///   - Labels(g, seed): the per-node label map that orients a realized
///     graph. Defined for every provider.
///   - PricingPermutation(A_n, seed): the positional theta the Section-3
///     model prices. Exact when positional() is true (the permutation is
///     a pure function of the degree sequence); a theta_D proxy for the
///     graph-dependent orders (degenerate, AOT), whose true label map
///     needs adjacency structure the model never sees.

namespace trilist {

/// \brief One registered ordering: identity, capabilities, construction.
class OrderingProvider {
 public:
  virtual ~OrderingProvider() = default;

  /// The enum value this provider realizes.
  virtual PermutationKind kind() const = 0;

  /// Stable registry key, identical to PermutationKindName(kind()).
  const char* key() const { return PermutationKindName(kind()); }

  /// Short CLI spelling ("D", "RR", "degen", "aot", "split", ...).
  virtual const char* cli_name() const = 0;

  /// One-line description for `trilist_cli orders`.
  virtual const char* description() const = 0;

  /// Needs the realized adjacency structure (degenerate, AOT) — cannot
  /// be built, or priced exactly, from the degree sequence alone.
  virtual bool graph_dependent() const { return false; }

  /// Consumes OrientSpec::seed (theta_U only).
  virtual bool seeded() const { return false; }

  /// The Section-3 model prices this ordering exactly: its positional
  /// permutation is a pure function of the (ascending) degree sequence.
  bool positional() const { return !graph_dependent(); }

  /// The positional permutation the cost model prices, of size
  /// ascending_degrees.size(). Exact when positional(); the theta_D
  /// proxy otherwise (documented per provider).
  virtual Permutation PricingPermutation(
      const std::vector<int64_t>& ascending_degrees, uint64_t seed) const;

  /// Per-node labels on a realized graph — the orientation input.
  /// Deterministic given (g, seed); seed is consulted iff seeded().
  virtual std::vector<NodeId> Labels(const Graph& g, uint64_t seed) const;
};

/// \brief The process-wide table of ordering providers.
class OrderingRegistry {
 public:
  /// The singleton instance (immutable after construction).
  static const OrderingRegistry& Instance();

  /// All providers, in PermutationKind declaration order.
  const std::vector<const OrderingProvider*>& all() const { return all_; }

  /// Provider of a kind (total: every enum value is registered).
  const OrderingProvider& Of(PermutationKind kind) const;

  /// Lookup by CLI spelling or registry key ("D" and "theta_D" both
  /// resolve); null when unknown.
  const OrderingProvider* FindByName(const std::string& name) const;

 private:
  OrderingRegistry();
  std::vector<const OrderingProvider*> all_;
};

/// Labels for `spec` on a realized graph, routed through the registry —
/// the single construction path shared by OrientStages, OrientNamed and
/// the serve catalog. Bit-identical to the historical per-kind branches.
std::vector<NodeId> OrderingLabels(const Graph& g, const OrientSpec& spec);

}  // namespace trilist
