#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/rng.h"

/// \file permutation.h
/// Positional permutations theta_n : [1, n] -> [1, n] (0-based internally).
///
/// Following Section 2.1, every relabeling starts from the ascending-degree
/// order: the node at ascending-degree position i receives label theta(i).
/// A Permutation is that positional map; combining it with a graph's
/// degree ranks (see pipeline.h) yields per-node labels for orientation.
/// The reverse theta'(i) = n + 1 - theta(i) and complement
/// theta''(i) = theta(n - i + 1) operators implement Propositions 1 and 7.

namespace trilist {

/// \brief A bijection on positions [0, n).
class Permutation {
 public:
  /// Identity permutation of size n (the ascending order theta_A).
  explicit Permutation(size_t n);

  /// Wraps an explicit map; must be a bijection of [0, n).
  explicit Permutation(std::vector<uint32_t> map);

  /// Size n.
  size_t size() const { return map_.size(); }

  /// theta(i), 0-based.
  uint32_t operator()(size_t i) const { return map_[i]; }

  /// The underlying map.
  const std::vector<uint32_t>& map() const { return map_; }

  /// Inverse permutation: Inverse()(theta(i)) == i.
  Permutation Inverse() const;

  /// Reverse theta'(i) = (n-1) - theta(i) (paper: n + 1 - theta(i),
  /// 1-based). Swaps out- and in-degrees of the induced orientation
  /// (Proposition 1).
  Permutation Reverse() const;

  /// Complement theta''(i) = theta((n-1) - i): the same mapping applied
  /// from the descending end of the degree order (Proposition 7; also the
  /// worst-case constructor of Corollary 3).
  Permutation Complement() const;

  /// Verifies bijectivity (every label hit exactly once). O(n).
  bool IsValid() const;

 private:
  std::vector<uint32_t> map_;
};

}  // namespace trilist
