#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

/// \file aot.h
/// The hybrid degeneracy + degree ordering of the AOT engine
/// (arXiv 2006.11494): heavy-tailed graphs have a small hub core where
/// degree order is the right global signal, and a large sparse fringe
/// where the smallest-last (degeneracy) order bounds out-degrees better
/// than any degree-only rule. The hybrid splits the vertex set at a
/// degree threshold tau:
///
///   - hubs (degree >= tau) receive the smallest labels, in descending
///     degree order (ties by node ID) — exactly how theta_D treats them,
///     so every hub keeps out-degree ~0 and hub-hub arcs point into the
///     very top of the core;
///   - the remaining vertices receive the remaining labels by
///     smallest-last elimination of the hub-free residual graph (first
///     removed -> largest label, the Matula-Beck convention), so fringe
///     out-degrees are bounded by the residual degeneracy.
///
/// tau = 0 picks the automatic threshold max(2 * degeneracy(G), 16),
/// which keeps the hub set tiny on sparse graphs and grows it exactly
/// when a dense core raises the degeneracy. The ordering is fully
/// deterministic.

namespace trilist {

/// The automatic hub threshold: max(2 * degeneracy(G), 16).
int64_t AotAutoHubThreshold(const Graph& g);

/// Labels realizing the hybrid order. \param hub_threshold tau; <= 0
/// resolves to AotAutoHubThreshold(g).
/// \return labels[v] = new ID of node v (a bijection of [0, n)).
std::vector<NodeId> AotLabels(const Graph& g, int64_t hub_threshold = 0);

}  // namespace trilist
