#pragma once

#include <vector>

#include "src/graph/graph.h"

/// \file degenerate.h
/// Degenerate (smallest-last) orientation of Matula & Beck, the
/// O(m)-computable ordering that minimizes the maximum out-degree
/// min_theta max_i X_i(theta). The paper's Table 12 uses it as a
/// graph-aware reference point: it can beat theta_D slightly for T1 but
/// costs far more to compute on large graphs and degrades the other
/// methods.

namespace trilist {

/// Smallest-last elimination order (bucket queue, O(n + m)): vertices are
/// repeatedly removed in order of minimum residual degree. When `include`
/// is non-null, the peeling runs on the induced subgraph of nodes with
/// include[v] == true (the AOT hybrid order peels the non-hub residual
/// graph this way); excluded nodes never appear in the returned order and
/// do not contribute residual degree. The degeneracy of the peeled
/// subgraph is written to `*degeneracy` when non-null.
std::vector<NodeId> SmallestLastOrder(const Graph& g,
                                      const std::vector<bool>* include,
                                      int64_t* degeneracy);

/// Computes labels realizing the smallest-last orientation.
///
/// Vertices are repeatedly removed in order of minimum *residual* degree
/// (bucket queue, O(n + m)); the vertex removed first receives the largest
/// label, so its arcs — which all point at still-remaining vertices with
/// smaller labels — number at most the graph's degeneracy.
///
/// \param g the undirected graph.
/// \return labels[v] = new ID of node v (a bijection of [0, n)).
std::vector<NodeId> DegenerateLabels(const Graph& g);

/// The graph's degeneracy: max over the removal sequence of the residual
/// degree at removal time. Equals the max out-degree of the orientation
/// produced by DegenerateLabels.
int64_t Degeneracy(const Graph& g);

}  // namespace trilist
