#pragma once

#include <vector>

#include "src/graph/graph.h"

/// \file degenerate.h
/// Degenerate (smallest-last) orientation of Matula & Beck, the
/// O(m)-computable ordering that minimizes the maximum out-degree
/// min_theta max_i X_i(theta). The paper's Table 12 uses it as a
/// graph-aware reference point: it can beat theta_D slightly for T1 but
/// costs far more to compute on large graphs and degrades the other
/// methods.

namespace trilist {

/// Computes labels realizing the smallest-last orientation.
///
/// Vertices are repeatedly removed in order of minimum *residual* degree
/// (bucket queue, O(n + m)); the vertex removed first receives the largest
/// label, so its arcs — which all point at still-remaining vertices with
/// smaller labels — number at most the graph's degeneracy.
///
/// \param g the undirected graph.
/// \return labels[v] = new ID of node v (a bijection of [0, n)).
std::vector<NodeId> DegenerateLabels(const Graph& g);

/// The graph's degeneracy: max over the removal sequence of the residual
/// degree at removal time. Equals the max out-degree of the orientation
/// produced by DegenerateLabels.
int64_t Degeneracy(const Graph& g);

}  // namespace trilist
