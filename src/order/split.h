#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/order/permutation.h"

/// \file split.h
/// The tailored split ordering of arXiv 2203.04774, expressed in the
/// paper's positional-permutation language: pick a split index s and
/// treat the s largest-degree positions as theta_D while the tail keeps
/// theta_A, i.e.
///
///   theta(i) = s + i          for i <  n - s   (tail: ascending, shifted)
///   theta(i) = n - 1 - i      for i >= n - s   (top block: descending,
///                                               labels 0..s-1)
///
/// s = 0 is exactly theta_A and s = n is exactly theta_D, so the family
/// interpolates between the two pure degree orders. "Tailored" means s is
/// chosen from the degree sequence alone by minimizing the Section-3
/// sequence-conditional cost (Proposition 4) of the best fundamental
/// method over a geometric grid of candidate splits — the ordering is a
/// pure function of A_n, which is what lets the cost model price it
/// exactly (unlike the graph-dependent degenerate and AOT orders).

namespace trilist {

/// The split-s positional permutation of size n (s clamped to [0, n]).
Permutation SplitPermutation(size_t n, size_t s);

/// The tailored split index: argmin over a geometric grid of s (including
/// the endpoints 0 and n) of min over the fundamental methods of the
/// sequence-conditional cost on `ascending_degrees`. Deterministic; ties
/// break toward the smaller s.
size_t TailoredSplitIndex(const std::vector<int64_t>& ascending_degrees);

/// SplitPermutation(n, TailoredSplitIndex(ascending_degrees)).
Permutation TailoredSplitPermutation(
    const std::vector<int64_t>& ascending_degrees);

}  // namespace trilist
