#include "src/order/pipeline.h"

#include <algorithm>
#include <numeric>

#include "src/degree/degree_stats.h"
#include "src/order/aot.h"
#include "src/order/degenerate.h"
#include "src/order/split.h"
#include "src/util/parallel_for.h"
#include "src/util/status.h"

namespace trilist {

std::vector<NodeId> AscendingDegreeRanks(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const int64_t da = g.Degree(a);
    const int64_t db = g.Degree(b);
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<NodeId> rank(n);
  for (size_t pos = 0; pos < n; ++pos) {
    rank[order[pos]] = static_cast<NodeId>(pos);
  }
  return rank;
}

std::vector<NodeId> LabelsFromPermutation(const Graph& g,
                                          const Permutation& theta) {
  TRILIST_DCHECK(theta.size() == g.num_nodes());
  const std::vector<NodeId> rank = AscendingDegreeRanks(g);
  std::vector<NodeId> labels(rank.size());
  for (size_t v = 0; v < rank.size(); ++v) {
    labels[v] = theta(rank[v]);
  }
  return labels;
}

OrientedGraph Orient(const Graph& g, const Permutation& theta,
                     int threads) {
  return OrientedGraph::FromLabels(g, LabelsFromPermutation(g, theta),
                                   threads);
}

OrientedGraph OrientNamed(const Graph& g, PermutationKind kind, Rng* rng,
                          int threads) {
  switch (kind) {
    case PermutationKind::kDegenerate:
      return OrientedGraph::FromLabels(g, DegenerateLabels(g), threads);
    case PermutationKind::kAot:
      return OrientedGraph::FromLabels(g, AotLabels(g), threads);
    case PermutationKind::kSplit:
      return Orient(g, TailoredSplitPermutation(AscendingDegrees(g)),
                    threads);
    default:
      return Orient(g, MakePermutation(kind, g.num_nodes(), rng), threads);
  }
}

OrientedGraph OrientWithSpec(const Graph& g, const OrientSpec& spec,
                             int threads) {
  Rng rng(spec.seed);
  return OrientNamed(g, spec.kind, &rng, threads);
}

}  // namespace trilist
