#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/oriented_graph.h"
#include "src/order/named_orders.h"
#include "src/order/permutation.h"
#include "src/util/rng.h"

/// \file pipeline.h
/// Steps 1-2 of the paper's three-step framework (Section 2.1): sort nodes
/// by the global order, relabel, and orient. Step 3 (listing) lives in
/// src/algo/.
///
/// Positional permutations act on the ascending-degree order of the nodes;
/// this header glues them to a concrete graph by computing degree ranks
/// (ties broken by original node ID for determinism) and producing the
/// per-node label map consumed by OrientedGraph.

namespace trilist {

/// Ascending-degree ranks: rank[v] = position of node v when all nodes are
/// sorted by (degree, node ID). A bijection of [0, n).
std::vector<NodeId> AscendingDegreeRanks(const Graph& g);

/// Per-node labels induced by a positional permutation:
/// labels[v] = theta(rank[v]).
std::vector<NodeId> LabelsFromPermutation(const Graph& g,
                                          const Permutation& theta);

/// Relabels and orients `g` under the positional permutation `theta`.
/// \param threads orientation concurrency (label computation and the CSR
///        build; see OrientedGraph::FromLabels). threads <= 1 is the
///        serial pipeline; the result is identical for any value.
OrientedGraph Orient(const Graph& g, const Permutation& theta,
                     int threads = 1);

/// Relabels and orients under a named permutation; handles the
/// graph-dependent kinds (kDegenerate, kAot) and the degree-tailored
/// kSplit as well, routing them through the ordering registry.
/// \param g graph.
/// \param kind named permutation.
/// \param rng needed for kUniform (may be null otherwise).
/// \param threads orientation concurrency (as in Orient). The degenerate
///        and AOT peelings are inherently sequential, so only their CSR
///        builds parallelize.
OrientedGraph OrientNamed(const Graph& g, PermutationKind kind,
                          Rng* rng = nullptr, int threads = 1);

/// \brief Reproducible identity of a preprocessing configuration (O, θ).
///
/// A named permutation family plus the RNG seed that realizes it — the
/// seed only matters for kUniform, where θ is a random bijection; the
/// other families are fully determined by `kind`. Two OrientSpecs compare
/// equal exactly when OrientWithSpec is guaranteed to produce the same
/// oriented CSR, which is what keys the precomputed orientations cached
/// inside a `.tlg` container (src/graph/binfmt.h).
struct OrientSpec {
  PermutationKind kind = PermutationKind::kDescending;
  uint64_t seed = 0;  ///< Consulted for kUniform only.

  friend bool operator==(const OrientSpec& a, const OrientSpec& b) {
    return a.kind == b.kind &&
           (a.kind != PermutationKind::kUniform || a.seed == b.seed);
  }

  /// The ordering key this spec resolves to — the registry key, with the
  /// seed appended exactly when the ordering consumes it. Two specs have
  /// equal keys iff they compare equal, so the key is a safe string form
  /// for caches, memo maps and reports.
  std::string Key() const {
    std::string key = PermutationKindName(kind);
    if (kind == PermutationKind::kUniform) {
      key += ':';
      key += std::to_string(seed);
    }
    return key;
  }
};

/// Relabels and orients `g` under `spec`, constructing the spec's RNG
/// internally so the result is a pure function of (graph, spec, nothing
/// else) — the reproducibility contract that lets a cached orientation
/// loaded from disk stand in for a fresh pipeline run, bit for bit.
OrientedGraph OrientWithSpec(const Graph& g, const OrientSpec& spec,
                             int threads = 1);

}  // namespace trilist
