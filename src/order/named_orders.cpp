#include "src/order/named_orders.h"

#include <numeric>

#include "src/util/status.h"

namespace trilist {

const char* PermutationKindName(PermutationKind kind) {
  switch (kind) {
    case PermutationKind::kAscending: return "theta_A";
    case PermutationKind::kDescending: return "theta_D";
    case PermutationKind::kRoundRobin: return "theta_RR";
    case PermutationKind::kComplementaryRoundRobin: return "theta_CRR";
    case PermutationKind::kUniform: return "theta_U";
    case PermutationKind::kDegenerate: return "theta_degen";
    case PermutationKind::kAot: return "aot";
    case PermutationKind::kSplit: return "split";
  }
  return "?";
}

Permutation MakePermutation(PermutationKind kind, size_t n, Rng* rng) {
  switch (kind) {
    case PermutationKind::kAscending:
      return AscendingPermutation(n);
    case PermutationKind::kDescending:
      return DescendingPermutation(n);
    case PermutationKind::kRoundRobin:
      return RoundRobinPermutation(n);
    case PermutationKind::kComplementaryRoundRobin:
      return ComplementaryRoundRobinPermutation(n);
    case PermutationKind::kUniform:
      TRILIST_DCHECK(rng != nullptr);
      return UniformPermutation(n, rng);
    case PermutationKind::kDegenerate:
    case PermutationKind::kAot:
    case PermutationKind::kSplit:
      break;  // not constructible from n alone; see registry.h.
  }
  TRILIST_DCHECK(false);
  return Permutation(n);
}

Permutation AscendingPermutation(size_t n) { return Permutation(n); }

Permutation DescendingPermutation(size_t n) {
  std::vector<uint32_t> map(n);
  for (size_t i = 0; i < n; ++i) {
    map[i] = static_cast<uint32_t>(n - 1 - i);
  }
  return Permutation(std::move(map));
}

Permutation RoundRobinPermutation(size_t n) {
  // Eq. (32), 1-based: odd i -> ceil((n+i)/2); even i -> floor((n-i)/2)+1.
  std::vector<uint32_t> map(n);
  for (size_t j = 0; j < n; ++j) {
    const uint64_t i = j + 1;  // 1-based position
    uint64_t label;
    if (i % 2 == 1) {
      label = (n + i + 1) / 2;  // ceil((n+i)/2)
    } else {
      label = (n - i) / 2 + 1;  // floor((n-i)/2)+1
    }
    map[j] = static_cast<uint32_t>(label - 1);
  }
  return Permutation(std::move(map));
}

Permutation ComplementaryRoundRobinPermutation(size_t n) {
  return RoundRobinPermutation(n).Complement();
}

Permutation UniformPermutation(size_t n, Rng* rng) {
  TRILIST_DCHECK(rng != nullptr);
  std::vector<uint32_t> map(n);
  std::iota(map.begin(), map.end(), 0u);
  for (size_t i = n; i > 1; --i) {
    const size_t j = rng->NextBounded(i);
    std::swap(map[i - 1], map[j]);
  }
  return Permutation(std::move(map));
}

}  // namespace trilist
