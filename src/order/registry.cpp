#include "src/order/registry.h"

#include <cstring>

#include "src/degree/degree_stats.h"
#include "src/order/aot.h"
#include "src/order/degenerate.h"
#include "src/order/split.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace trilist {

Permutation OrderingProvider::PricingPermutation(
    const std::vector<int64_t>& ascending_degrees, uint64_t seed) const {
  Rng rng(seed);
  return MakePermutation(kind(), ascending_degrees.size(), &rng);
}

std::vector<NodeId> OrderingProvider::Labels(const Graph& g,
                                             uint64_t seed) const {
  // Positional default: theta over ascending-degree ranks, the exact
  // math of the historical OrientStages branch (same Rng construction).
  Rng rng(seed);
  return LabelsFromPermutation(
      g, MakePermutation(kind(), g.num_nodes(), &rng));
}

namespace {

struct AscendingProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kAscending;
  }
  const char* cli_name() const override { return "A"; }
  const char* description() const override {
    return "ascending degree (theta_A): small degrees get small labels; "
           "optimal for T3/T6, E3/E5, L4/L5";
  }
};

struct DescendingProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kDescending;
  }
  const char* cli_name() const override { return "D"; }
  const char* description() const override {
    return "descending degree (theta_D): hubs get the smallest labels; "
           "optimal for T1/T4, E1/E2, L2/L6 (the default)";
  }
};

struct RoundRobinProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kRoundRobin;
  }
  const char* cli_name() const override { return "RR"; }
  const char* description() const override {
    return "Round-Robin (theta_RR, Eq. 32): large degrees at both ends; "
           "optimal for T2/T5, L1/L3";
  }
};

struct CrrProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kComplementaryRoundRobin;
  }
  const char* cli_name() const override { return "CRR"; }
  const char* description() const override {
    return "Complementary Round-Robin (theta_CRR): large degrees toward "
           "the middle; optimal for E4/E6";
  }
};

struct UniformProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kUniform;
  }
  const char* cli_name() const override { return "U"; }
  const char* description() const override {
    return "uniform random bijection (theta_U, seeded): the hashed-ID "
           "baseline every ordering is measured against";
  }
  bool seeded() const override { return true; }
};

struct DegenerateProvider final : OrderingProvider {
  PermutationKind kind() const override {
    return PermutationKind::kDegenerate;
  }
  const char* cli_name() const override { return "degen"; }
  const char* description() const override {
    return "Matula-Beck smallest-last: graph-dependent, minimizes the "
           "max out-degree (priced via the theta_D proxy)";
  }
  bool graph_dependent() const override { return true; }
  Permutation PricingPermutation(
      const std::vector<int64_t>& ascending_degrees,
      uint64_t /*seed*/) const override {
    // No positional model exists; theta_D is the standard conservative
    // proxy (the smallest-last order is degree-descending-like at the
    // top of the sequence, where the cost mass lives).
    return DescendingPermutation(ascending_degrees.size());
  }
  std::vector<NodeId> Labels(const Graph& g,
                             uint64_t /*seed*/) const override {
    return DegenerateLabels(g);
  }
};

struct AotProvider final : OrderingProvider {
  PermutationKind kind() const override { return PermutationKind::kAot; }
  const char* cli_name() const override { return "aot"; }
  const char* description() const override {
    return "AOT hybrid (arXiv 2006.11494): hubs by descending degree, "
           "fringe by smallest-last (priced via the theta_D proxy)";
  }
  bool graph_dependent() const override { return true; }
  Permutation PricingPermutation(
      const std::vector<int64_t>& ascending_degrees,
      uint64_t /*seed*/) const override {
    // The hub block is exactly theta_D and carries the g(d)h(q) mass;
    // the fringe's smallest-last refinement has no positional model.
    return DescendingPermutation(ascending_degrees.size());
  }
  std::vector<NodeId> Labels(const Graph& g,
                             uint64_t /*seed*/) const override {
    return AotLabels(g);
  }
};

struct SplitProvider final : OrderingProvider {
  PermutationKind kind() const override { return PermutationKind::kSplit; }
  const char* cli_name() const override { return "split"; }
  const char* description() const override {
    return "tailored split (arXiv 2203.04774): top-s degree positions as "
           "theta_D, tail as theta_A, s minimizing the Section-3 cost";
  }
  Permutation PricingPermutation(
      const std::vector<int64_t>& ascending_degrees,
      uint64_t /*seed*/) const override {
    return TailoredSplitPermutation(ascending_degrees);
  }
  std::vector<NodeId> Labels(const Graph& g,
                             uint64_t /*seed*/) const override {
    return LabelsFromPermutation(
        g, TailoredSplitPermutation(AscendingDegrees(g)));
  }
};

const AscendingProvider kAscendingProvider;
const DescendingProvider kDescendingProvider;
const RoundRobinProvider kRoundRobinProvider;
const CrrProvider kCrrProvider;
const UniformProvider kUniformProvider;
const DegenerateProvider kDegenerateProvider;
const AotProvider kAotProvider;
const SplitProvider kSplitProvider;

}  // namespace

OrderingRegistry::OrderingRegistry()
    : all_{&kAscendingProvider,  &kDescendingProvider,
           &kRoundRobinProvider, &kCrrProvider,
           &kUniformProvider,    &kDegenerateProvider,
           &kAotProvider,        &kSplitProvider} {}

const OrderingRegistry& OrderingRegistry::Instance() {
  static const OrderingRegistry registry;
  return registry;
}

const OrderingProvider& OrderingRegistry::Of(PermutationKind kind) const {
  for (const OrderingProvider* p : all_) {
    if (p->kind() == kind) return *p;
  }
  TRILIST_DCHECK(false);
  return *all_.front();
}

const OrderingProvider* OrderingRegistry::FindByName(
    const std::string& name) const {
  for (const OrderingProvider* p : all_) {
    if (name == p->cli_name() || name == p->key()) return p;
  }
  return nullptr;
}

std::vector<NodeId> OrderingLabels(const Graph& g, const OrientSpec& spec) {
  return OrderingRegistry::Instance().Of(spec.kind).Labels(g, spec.seed);
}

}  // namespace trilist
