#include "src/order/optimal.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace trilist {

Permutation OptimalPermutation(const std::function<double(double)>& h,
                               bool r_increasing, size_t n) {
  // z[i].key = h(i/n) with labels i = 1..n; sort opposite to r and assign
  // theta(j) = sorted index. Stable sort keeps tie-breaking deterministic.
  std::vector<double> key(n);
  for (size_t i = 0; i < n; ++i) {
    key[i] = h(static_cast<double>(i + 1) / static_cast<double>(n));
  }
  std::vector<uint32_t> index(n);
  std::iota(index.begin(), index.end(), 0u);
  if (r_increasing) {
    std::stable_sort(index.begin(), index.end(),
                     [&](uint32_t a, uint32_t b) { return key[a] > key[b]; });
  } else {
    std::stable_sort(index.begin(), index.end(),
                     [&](uint32_t a, uint32_t b) { return key[a] < key[b]; });
  }
  return Permutation(std::move(index));
}

Permutation WorstPermutation(const std::function<double(double)>& h,
                             bool r_increasing, size_t n) {
  return OptimalPermutation(h, r_increasing, n).Complement();
}

}  // namespace trilist
