#pragma once

#include <functional>

#include "src/order/permutation.h"

/// \file optimal.h
/// Algorithm 1 of the paper: constructing optimal permutations.
///
/// For a listing method with cost shape h(x) and monotone
/// r(x) = g(J^{-1}(x)) / w(J^{-1}(x)), Theorem 3 shows the cost
/// E[w(D)] E[r(U) h(xi(U))] is minimized by sorting the sequence
/// z = (h(1/n), ..., h(n/n)) in the order *opposite* to r's monotonicity
/// and assigning theta(j) = index of the j-th sorted element. With
/// w(x) = min(x, a), r is increasing for all four methods, which recovers
/// theta_D for T1/E1, RR-like orders for T2, and CRR-like for E4.

namespace trilist {

/// Builds the optimal positional permutation via Algorithm 1.
/// \param h the method's cost-shape function on (0, 1].
/// \param r_increasing monotonicity of r(x) = g/w (true for the canonical
///        w(x) = min(x, a); pass false for decreasing r to obtain the
///        mirrored optimum).
/// \param n permutation size.
/// \return theta with theta(j) = label for ascending-degree position j.
Permutation OptimalPermutation(const std::function<double(double)>& h,
                               bool r_increasing, size_t n);

/// The worst-case permutation for the same inputs (Corollary 3: the
/// complement of the optimum).
Permutation WorstPermutation(const std::function<double(double)>& h,
                             bool r_increasing, size_t n);

}  // namespace trilist
