#include "src/order/split.h"

#include <algorithm>
#include <limits>

#include "src/algo/cost.h"
#include "src/core/out_degree_model.h"

namespace trilist {

Permutation SplitPermutation(size_t n, size_t s) {
  s = std::min(s, n);
  std::vector<uint32_t> map(n);
  const size_t tail = n - s;
  for (size_t i = 0; i < tail; ++i) {
    map[i] = static_cast<uint32_t>(s + i);
  }
  for (size_t i = tail; i < n; ++i) {
    map[i] = static_cast<uint32_t>(n - 1 - i);
  }
  return Permutation(std::move(map));
}

namespace {

/// min over the fundamental methods of the Proposition-4 per-node cost.
double BestFundamentalCost(const std::vector<int64_t>& ascending_degrees,
                           const Permutation& theta) {
  double best = std::numeric_limits<double>::infinity();
  for (Method m : FundamentalMethods()) {
    best = std::min(
        best, SequenceConditionalCost(ascending_degrees, theta, m));
  }
  return best;
}

}  // namespace

size_t TailoredSplitIndex(const std::vector<int64_t>& ascending_degrees) {
  const size_t n = ascending_degrees.size();
  if (n == 0) return 0;
  // Geometric grid {0, 1, 2, 4, ...} plus the theta_D endpoint s = n:
  // O(log n) candidates, each an O(n) model evaluation per method.
  std::vector<size_t> grid{0};
  for (size_t s = 1; s < n; s *= 2) grid.push_back(s);
  grid.push_back(n);
  size_t best_s = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (const size_t s : grid) {
    const double cost =
        BestFundamentalCost(ascending_degrees, SplitPermutation(n, s));
    if (cost < best_cost) {
      best_cost = cost;
      best_s = s;
    }
  }
  return best_s;
}

Permutation TailoredSplitPermutation(
    const std::vector<int64_t>& ascending_degrees) {
  return SplitPermutation(ascending_degrees.size(),
                          TailoredSplitIndex(ascending_degrees));
}

}  // namespace trilist
