#include "src/order/aot.h"

#include <algorithm>
#include <numeric>

#include "src/order/degenerate.h"
#include "src/util/status.h"

namespace trilist {

int64_t AotAutoHubThreshold(const Graph& g) {
  return std::max<int64_t>(2 * Degeneracy(g), 16);
}

std::vector<NodeId> AotLabels(const Graph& g, int64_t hub_threshold) {
  const size_t n = g.num_nodes();
  if (hub_threshold <= 0) hub_threshold = AotAutoHubThreshold(g);

  // Partition: hubs get labels [0, h) by descending degree (ties by ID,
  // matching the ascending-rank tie-break everywhere else).
  std::vector<NodeId> hubs;
  std::vector<bool> fringe(n, false);
  for (size_t v = 0; v < n; ++v) {
    if (g.Degree(static_cast<NodeId>(v)) >= hub_threshold) {
      hubs.push_back(static_cast<NodeId>(v));
    } else {
      fringe[v] = true;
    }
  }
  std::sort(hubs.begin(), hubs.end(), [&](NodeId a, NodeId b) {
    const int64_t da = g.Degree(a);
    const int64_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });

  std::vector<NodeId> labels(n, 0);
  for (size_t i = 0; i < hubs.size(); ++i) {
    labels[hubs[i]] = static_cast<NodeId>(i);
  }

  // Fringe: smallest-last elimination of the hub-free residual graph,
  // first removed -> largest label (the DegenerateLabels convention),
  // shifted past the hub block.
  const std::vector<NodeId> order = SmallestLastOrder(g, &fringe, nullptr);
  TRILIST_DCHECK(order.size() + hubs.size() == n);
  for (size_t step = 0; step < order.size(); ++step) {
    labels[order[step]] = static_cast<NodeId>(n - 1 - step);
  }
  return labels;
}

}  // namespace trilist
