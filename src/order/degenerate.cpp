#include "src/order/degenerate.h"

#include <algorithm>

#include "src/degree/degree_stats.h"
#include "src/util/status.h"

namespace trilist {

std::vector<NodeId> SmallestLastOrder(const Graph& g,
                                      const std::vector<bool>* include,
                                      int64_t* degeneracy) {
  const size_t n = g.num_nodes();
  TRILIST_DCHECK(include == nullptr || include->size() == n);
  // Residual degrees within the included subgraph.
  std::vector<int64_t> degree(n, 0);
  size_t active = 0;
  for (size_t v = 0; v < n; ++v) {
    if (include != nullptr && !(*include)[v]) continue;
    ++active;
    if (include == nullptr) {
      degree[v] = g.Degree(static_cast<NodeId>(v));
    } else {
      int64_t d = 0;
      for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
        if ((*include)[w]) ++d;
      }
      degree[v] = d;
    }
  }
  const int64_t max_degree = MaxDegree(degree);
  // Bucket queue over residual degrees.
  std::vector<std::vector<NodeId>> buckets(
      static_cast<size_t>(max_degree) + 1);
  for (size_t v = 0; v < n; ++v) {
    if (include != nullptr && !(*include)[v]) continue;
    buckets[static_cast<size_t>(degree[v])].push_back(
        static_cast<NodeId>(v));
  }
  std::vector<bool> removed(n, false);
  std::vector<NodeId> order;
  order.reserve(active);
  int64_t degen = 0;
  size_t cursor = 0;  // lowest possibly-non-empty bucket
  for (size_t step = 0; step < active; ++step) {
    // Residual degrees only drop by 1 per removal, so the true minimum is
    // never below cursor - 1; rewinding one bucket keeps the scan O(n+m).
    if (cursor > 0) --cursor;
    NodeId v = 0;
    for (;; ++cursor) {
      TRILIST_DCHECK(cursor < buckets.size());
      auto& bucket = buckets[cursor];
      // Lazy deletion: entries whose degree has changed are skipped.
      while (!bucket.empty()) {
        const NodeId cand = bucket.back();
        if (removed[cand] ||
            degree[cand] != static_cast<int64_t>(cursor)) {
          bucket.pop_back();
          continue;
        }
        break;
      }
      if (!bucket.empty()) {
        v = bucket.back();
        bucket.pop_back();
        break;
      }
    }
    removed[v] = true;
    degen = std::max(degen, static_cast<int64_t>(cursor));
    order.push_back(v);
    for (NodeId w : g.Neighbors(v)) {
      if (removed[w]) continue;
      if (include != nullptr && !(*include)[w]) continue;
      --degree[w];
      buckets[static_cast<size_t>(degree[w])].push_back(w);
    }
  }
  if (degeneracy != nullptr) *degeneracy = degen;
  return order;
}

std::vector<NodeId> DegenerateLabels(const Graph& g) {
  const std::vector<NodeId> order = SmallestLastOrder(g, nullptr, nullptr);
  const size_t n = g.num_nodes();
  std::vector<NodeId> labels(n, 0);
  for (size_t step = 0; step < n; ++step) {
    // First removed -> largest label.
    labels[order[step]] = static_cast<NodeId>(n - 1 - step);
  }
  return labels;
}

int64_t Degeneracy(const Graph& g) {
  int64_t degen = 0;
  SmallestLastOrder(g, nullptr, &degen);
  return degen;
}

}  // namespace trilist
