#pragma once

#include <string>

#include "src/order/permutation.h"
#include "src/util/rng.h"

/// \file named_orders.h
/// The five named permutations the paper analyzes (Sections 4-5):
/// ascending theta_A, descending theta_D, uniform theta_U, Round-Robin
/// theta_RR (Eq. 32) and Complementary Round-Robin theta_CRR.
///
/// RR places large degrees towards the two ends of [1, n] (optimal for T2
/// by Corollary 2); CRR places them towards the middle (optimal for E4).

namespace trilist {

/// Identifiers for the named permutation families.
enum class PermutationKind {
  kAscending,   ///< theta(i) = i.
  kDescending,  ///< theta(i) = n + 1 - i.
  kRoundRobin,  ///< Eq. (32): large positions map to the ends.
  kComplementaryRoundRobin,  ///< RR applied from the descending end.
  kUniform,     ///< Uniformly random bijection ("hashed IDs").
  kDegenerate,  ///< Matula-Beck smallest-last (graph-dependent; see
                ///< degenerate.h — cannot be built from n alone).
  kAot,         ///< AOT hybrid degeneracy+degree order (arXiv 2006.11494):
                ///< hubs by descending degree, the residual graph by
                ///< smallest-last. Graph-dependent; see aot.h.
  kSplit,       ///< Tailored split order (arXiv 2203.04774): a positional
                ///< permutation that treats the top-s degree positions as
                ///< theta_D and the tail as theta_A, with s minimizing the
                ///< Section-3 cost. Needs the degree sequence; see split.h.
};

/// Short name for reports ("theta_D", "theta_RR", ...).
const char* PermutationKindName(PermutationKind kind);

/// Builds a named positional permutation of size n.
/// \param kind which family; kDegenerate, kAot and kSplit are rejected
///        here (they depend on the realized graph or its degree sequence,
///        not only on n) — go through the ordering registry
///        (src/order/registry.h), which knows how to build every kind.
/// \param n size.
/// \param rng required for kUniform, ignored otherwise (may be null).
Permutation MakePermutation(PermutationKind kind, size_t n,
                            Rng* rng = nullptr);

/// theta_A: identity.
Permutation AscendingPermutation(size_t n);
/// theta_D: theta(i) = (n-1) - i (0-based).
Permutation DescendingPermutation(size_t n);
/// theta_RR per Eq. (32), translated to 0-based indices.
Permutation RoundRobinPermutation(size_t n);
/// theta_CRR = complement of theta_RR (Proposition 7).
Permutation ComplementaryRoundRobinPermutation(size_t n);
/// theta_U: Fisher-Yates shuffle of the identity.
Permutation UniformPermutation(size_t n, Rng* rng);

}  // namespace trilist
