#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/oriented_graph.h"

/// \file cost.h
/// The 18 baseline triangle-listing methods of Section 2 and their CPU-cost
/// formulas in terms of the oriented degrees X_i (out) and Y_i (in).
///
/// Cost classes (Figures 2 and 4, Tables 1-2), with g-counts per node:
///   T1-class: sum_i X_i (X_i - 1) / 2      (pairs of out-neighbors)
///   T2-class: sum_i X_i Y_i                (in x out products)
///   T3-class: sum_i Y_i (Y_i - 1) / 2      (pairs of in-neighbors)
/// Scanning edge iterators combine a local and a remote class (Table 1);
/// lookup edge iterators pay the remote class in lookups plus m hash
/// inserts (Table 2).

namespace trilist {

/// All 18 baseline methods.
enum class Method {
  kT1, kT2, kT3, kT4, kT5, kT6,
  kE1, kE2, kE3, kE4, kE5, kE6,
  kL1, kL2, kL3, kL4, kL5, kL6,
};

/// Families of methods (different elementary-operation speeds, Table 3).
enum class Family {
  kVertexIterator,
  kScanningEdgeIterator,
  kLookupEdgeIterator,
};

/// The three primitive cost classes.
enum class CostClass { kT1, kT2, kT3 };

/// All methods, in declaration order (convenience for sweeps).
const std::vector<Method>& AllMethods();

/// The four non-isomorphic representatives studied by the paper.
const std::vector<Method>& FundamentalMethods();  // T1, T2, E1, E4

/// Method name ("T1", "E4", ...).
const char* MethodName(Method m);

/// Family of a method.
Family MethodFamily(Method m);

/// Local cost class (SEI), or the single class (vertex iterators: the
/// candidate-tuple count; LEI: the lookup count).
CostClass LocalCostClass(Method m);

/// Remote cost class; only meaningful for scanning edge iterators
/// (Table 1 second row). For other families this equals LocalCostClass.
CostClass RemoteCostClass(Method m);

/// True if the method needs an extra binary search (or backwards scan) per
/// edge to locate the start of the remote range (E5/E6, L5/L6; Section 2.3).
bool NeedsRemoteBinarySearch(Method m);

/// Evaluates one primitive cost class total from oriented degree vectors.
/// \param x out-degrees X_i, \param y in-degrees Y_i (same length).
double CostClassTotal(const std::vector<int64_t>& x,
                      const std::vector<int64_t>& y, CostClass c);

/// Total paper-metric CPU cost n * c_n(M, theta) from degree vectors.
/// Vertex iterators: their class total; SEI: local + remote; LEI: lookup
/// class total (hash-build cost m is excluded, as in Table 2).
double MethodCostTotal(const std::vector<int64_t>& x,
                       const std::vector<int64_t>& y, Method m);

/// Convenience: MethodCostTotal on an oriented graph.
double MethodCostTotal(const OrientedGraph& g, Method m);

/// Per-node cost c_n(M, theta) = MethodCostTotal / n.
double MethodCostPerNode(const OrientedGraph& g, Method m);

}  // namespace trilist
