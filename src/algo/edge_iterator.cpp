#include "src/algo/edge_iterator.h"

#include <span>
#include <type_traits>

#include "src/algo/sei_common.h"

namespace trilist {

using sei::MergeIntersect;
using sei::PrefixBelow;
using sei::SuffixAbove;

namespace {

/// Hook-free tag: `if constexpr` removes every attribution statement, so
/// the default instantiations compile to exactly the pre-hook kernels.
struct NoHook {};

template <typename Hook>
constexpr bool kHooked = !std::is_same_v<Hook, NoHook>;

// Attribution (Table 1): the local range is charged to the node whose
// list it is (always the outer node, accumulated across its arcs); the
// remote range is charged to the remote endpoint, one Record per arc.

template <typename Hook>
OpCounts RunE1Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId y = out[idx];
      const auto local = out.first(idx);  // elements of N+(z) below y
      const auto remote = g.OutNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId x) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(z, local_total);
  }
  return ops;
}

template <typename Hook>
OpCounts RunE2Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.OutNeighbors(y);
    [[maybe_unused]] int64_t local_total = 0;
    for (const NodeId z : g.InNeighbors(y)) {
      const auto remote = PrefixBelow(g.OutNeighbors(z), y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(z, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId x) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(y, local_total);
  }
  return ops;
}

template <typename Hook>
OpCounts RunE3Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId y = in[idx];
      const auto local = in.subspan(idx + 1);  // elements of N-(x) above y
      const auto remote = g.InNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId z) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(x, local_total);
  }
  return ops;
}

template <typename Hook>
OpCounts RunE4Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId x = out[idx];
      const auto local = out.subspan(idx + 1);  // y candidates above x
      const auto remote = PrefixBelow(g.InNeighbors(x), z);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(x, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId y) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(z, local_total);
  }
  return ops;
}

template <typename Hook>
OpCounts RunE5Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.InNeighbors(y);
    [[maybe_unused]] int64_t local_total = 0;
    for (const NodeId x : g.OutNeighbors(y)) {
      // The start of the remote range is buried mid-list: one binary
      // search per arc (the E5 handicap of Section 2.3).
      const auto remote = SuffixAbove(g.InNeighbors(x), y);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(x, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId z) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(y, local_total);
  }
  return ops;
}

template <typename Hook>
OpCounts RunE6Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId z = in[idx];
      const auto local = in.first(idx);  // y candidates below z
      const auto remote = SuffixAbove(g.OutNeighbors(z), x);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(z, static_cast<int64_t>(remote.size()));
      }
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId y) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
    if constexpr (kHooked<Hook>) hook->Record(x, local_total);
  }
  return ops;
}

}  // namespace

OpCounts RunE1(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE1Impl(g, sink, hook)
                         : RunE1Impl(g, sink, NoHook{});
}

OpCounts RunE2(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE2Impl(g, sink, hook)
                         : RunE2Impl(g, sink, NoHook{});
}

OpCounts RunE3(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE3Impl(g, sink, hook)
                         : RunE3Impl(g, sink, NoHook{});
}

OpCounts RunE4(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE4Impl(g, sink, hook)
                         : RunE4Impl(g, sink, NoHook{});
}

OpCounts RunE5(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE5Impl(g, sink, hook)
                         : RunE5Impl(g, sink, NoHook{});
}

OpCounts RunE6(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunE6Impl(g, sink, hook)
                         : RunE6Impl(g, sink, NoHook{});
}

}  // namespace trilist
