#include "src/algo/edge_iterator.h"

#include <span>
#include <type_traits>

#include "src/algo/sei_common.h"
#include "src/algo/simd/intersect_engine.h"

namespace trilist {

using sei::PrefixBelow;
using sei::SuffixAbove;

namespace {

/// Hook-free tag: `if constexpr` removes every attribution statement, so
/// the default instantiations compile to exactly the pre-hook kernels.
struct NoHook {};

template <typename Hook>
constexpr bool kHooked = !std::is_same_v<Hook, NoHook>;

/// Default intersection policy: the shared scalar merge, with the hub and
/// window arguments compiled away — the zero-overhead path every caller
/// without an engine gets (bit-identical to the pre-backend kernels).
struct DirectMerge {
  template <typename Emit>
  void operator()(std::span<const NodeId> a, simd::SpanOwner,
                  std::span<const NodeId> b, simd::SpanOwner, NodeId,
                  NodeId, int64_t* comparisons, Emit&& emit) const {
    sei::MergeIntersect(a, b, comparisons, emit);
  }
};

/// Engine-backed policy: routes every intersection, with its row owners
/// and value window, through the selected backend.
struct EngineIsect {
  simd::IntersectEngine* engine;
  template <typename Emit>
  void operator()(std::span<const NodeId> a, simd::SpanOwner oa,
                  std::span<const NodeId> b, simd::SpanOwner ob, NodeId lo,
                  NodeId hi, int64_t* comparisons, Emit&& emit) const {
    engine->Intersect(a, oa, b, ob, lo, hi, comparisons, emit);
  }
};

// Attribution (Table 1): the local range is charged to the node whose
// list it is (always the outer node, accumulated across its arcs); the
// remote range is charged to the remote endpoint, one Record per arc.
//
// Window arguments (see intersect_engine.h): each kernel's two operand
// spans are row restrictions to one label interval — [0, y) for E1/E2,
// (y, n) for E3/E5, (x, z) for E4/E6.

template <typename Hook, typename Isect>
OpCounts RunE1Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId y = out[idx];
      const auto local = out.first(idx);  // elements of N+(z) below y
      const auto remote = g.OutNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      isect(local, {z, true}, remote, {y, true}, 0, y,
            &ops.merge_comparisons, [&](NodeId x) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(z, local_total);
  }
  return ops;
}

template <typename Hook, typename Isect>
OpCounts RunE2Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.OutNeighbors(y);
    [[maybe_unused]] int64_t local_total = 0;
    for (const NodeId z : g.InNeighbors(y)) {
      const auto remote = PrefixBelow(g.OutNeighbors(z), y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(z, static_cast<int64_t>(remote.size()));
      }
      isect(local, {y, true}, remote, {z, true}, 0, y,
            &ops.merge_comparisons, [&](NodeId x) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(y, local_total);
  }
  return ops;
}

template <typename Hook, typename Isect>
OpCounts RunE3Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId y = in[idx];
      const auto local = in.subspan(idx + 1);  // elements of N-(x) above y
      const auto remote = g.InNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      isect(local, {x, false}, remote, {y, false}, y + 1,
            static_cast<NodeId>(n), &ops.merge_comparisons, [&](NodeId z) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(x, local_total);
  }
  return ops;
}

template <typename Hook, typename Isect>
OpCounts RunE4Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId x = out[idx];
      const auto local = out.subspan(idx + 1);  // y candidates above x
      const auto remote = PrefixBelow(g.InNeighbors(x), z);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(x, static_cast<int64_t>(remote.size()));
      }
      isect(local, {z, true}, remote, {x, false}, x + 1, z,
            &ops.merge_comparisons, [&](NodeId y) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(z, local_total);
  }
  return ops;
}

template <typename Hook, typename Isect>
OpCounts RunE5Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.InNeighbors(y);
    [[maybe_unused]] int64_t local_total = 0;
    for (const NodeId x : g.OutNeighbors(y)) {
      // The start of the remote range is buried mid-list: one binary
      // search per arc (the E5 handicap of Section 2.3).
      const auto remote = SuffixAbove(g.InNeighbors(x), y);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(x, static_cast<int64_t>(remote.size()));
      }
      isect(local, {y, false}, remote, {x, false}, y + 1,
            static_cast<NodeId>(n), &ops.merge_comparisons, [&](NodeId z) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(y, local_total);
  }
  return ops;
}

template <typename Hook, typename Isect>
OpCounts RunE6Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook,
                   Isect isect) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] int64_t local_total = 0;
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId z = in[idx];
      const auto local = in.first(idx);  // y candidates below z
      const auto remote = SuffixAbove(g.OutNeighbors(z), x);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      if constexpr (kHooked<Hook>) {
        local_total += static_cast<int64_t>(local.size());
        hook->Record(z, static_cast<int64_t>(remote.size()));
      }
      isect(local, {x, false}, remote, {z, true}, x + 1, z,
            &ops.merge_comparisons, [&](NodeId y) {
              ++ops.triangles;
              sink->Consume(x, y, z);
            });
    }
    if constexpr (kHooked<Hook>) hook->Record(x, local_total);
  }
  return ops;
}

/// Four-way dispatch shared by the six public pairs: hooked or not,
/// engine-backed or the direct merge path.
template <typename Impl>
OpCounts Dispatch(Impl impl, NodeOpsHook* hook,
                  simd::IntersectEngine* engine) {
  if (engine != nullptr &&
      engine->backend() != IntersectBackend::kMerge) {
    return hook != nullptr ? impl(hook, EngineIsect{engine})
                           : impl(NoHook{}, EngineIsect{engine});
  }
  return hook != nullptr ? impl(hook, DirectMerge{})
                         : impl(NoHook{}, DirectMerge{});
}

}  // namespace

#define TRILIST_DEFINE_SEI(NAME)                                         \
  OpCounts NAME(const OrientedGraph& g, TriangleSink* sink,              \
                NodeOpsHook* hook) {                                     \
    return NAME(g, sink, nullptr, hook);                                 \
  }                                                                      \
  OpCounts NAME(const OrientedGraph& g, TriangleSink* sink,              \
                simd::IntersectEngine* engine, NodeOpsHook* hook) {      \
    return Dispatch(                                                     \
        [&](auto h, auto isect) { return NAME##Impl(g, sink, h, isect); }, \
        hook, engine);                                                   \
  }

TRILIST_DEFINE_SEI(RunE1)
TRILIST_DEFINE_SEI(RunE2)
TRILIST_DEFINE_SEI(RunE3)
TRILIST_DEFINE_SEI(RunE4)
TRILIST_DEFINE_SEI(RunE5)
TRILIST_DEFINE_SEI(RunE6)

#undef TRILIST_DEFINE_SEI

}  // namespace trilist
