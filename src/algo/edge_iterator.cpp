#include "src/algo/edge_iterator.h"

#include <span>

#include "src/algo/sei_common.h"

namespace trilist {

using sei::MergeIntersect;
using sei::PrefixBelow;
using sei::SuffixAbove;

OpCounts RunE1(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId y = out[idx];
      const auto local = out.first(idx);  // elements of N+(z) below y
      const auto remote = g.OutNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId x) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

OpCounts RunE2(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.OutNeighbors(y);
    for (const NodeId z : g.InNeighbors(y)) {
      const auto remote = PrefixBelow(g.OutNeighbors(z), y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId x) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

OpCounts RunE3(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId y = in[idx];
      const auto local = in.subspan(idx + 1);  // elements of N-(x) above y
      const auto remote = g.InNeighbors(y);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId z) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

OpCounts RunE4(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    for (size_t idx = 0; idx < out.size(); ++idx) {
      const NodeId x = out[idx];
      const auto local = out.subspan(idx + 1);  // y candidates above x
      const auto remote = PrefixBelow(g.InNeighbors(x), z);
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId y) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

OpCounts RunE5(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto local = g.InNeighbors(y);
    for (const NodeId x : g.OutNeighbors(y)) {
      // The start of the remote range is buried mid-list: one binary
      // search per arc (the E5 handicap of Section 2.3).
      const auto remote = SuffixAbove(g.InNeighbors(x), y);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId z) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

OpCounts RunE6(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    for (size_t idx = 0; idx < in.size(); ++idx) {
      const NodeId z = in[idx];
      const auto local = in.first(idx);  // y candidates below z
      const auto remote = SuffixAbove(g.OutNeighbors(z), x);
      ++ops.binary_searches;
      ops.local_scans += static_cast<int64_t>(local.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      MergeIntersect(local, remote, &ops.merge_comparisons, [&](NodeId y) {
        ++ops.triangles;
        sink->Consume(x, y, z);
      });
    }
  }
  return ops;
}

}  // namespace trilist
