#pragma once

#include "src/algo/cost.h"
#include "src/algo/op_hook.h"
#include "src/algo/triangle_sink.h"
#include "src/graph/edge_set.h"
#include "src/graph/oriented_graph.h"

/// \file vertex_iterator.h
/// The six vertex-iterator search patterns T1..T6 (Section 2.2, Figure 1).
///
/// Each pattern fixes which corner of the triangle x < y < z is visited
/// first and in which order the remaining two are generated; candidate arcs
/// are verified against the directed edge set. Per-node candidate counts:
///   T1/T4: C(X_i, 2)   (start at z, pair out-neighbors)
///   T2/T5: X_i * Y_i   (start at y, pair in x out)
///   T3/T6: C(Y_i, 2)   (start at x, pair in-neighbors)
/// T4-T6 differ from T1-T3 only in the visiting order of the last two
/// nodes; their costs are identical (the equivalence classes of Figure 2).
///
/// The optional `hook` reports each visited node's candidate-check count
/// (the per-node class cost above) to the observability layer; nullptr —
/// the default — selects a hook-free instantiation with zero overhead.

namespace trilist {

/// Operation counters for one algorithm execution. The same struct is
/// shared by all three families; fields irrelevant to a family stay zero.
struct OpCounts {
  int64_t candidate_checks = 0;   ///< vertex iterators: arc-set probes.
  int64_t local_scans = 0;        ///< SEI: paper-metric local elements.
  int64_t remote_scans = 0;       ///< SEI: paper-metric remote elements.
  int64_t merge_comparisons = 0;  ///< SEI: actual two-pointer comparisons.
  int64_t hash_inserts = 0;       ///< LEI: marker/table build operations.
  int64_t lookups = 0;            ///< LEI: membership probes.
  int64_t binary_searches = 0;    ///< E5/E6/L5/L6 range positioning.
  int64_t triangles = 0;          ///< triangles emitted.

  /// The cost metric the paper's tables report for this run:
  /// candidate checks (vertex iterators), local+remote scans (SEI), or
  /// lookups (LEI).
  int64_t PaperCost() const {
    if (candidate_checks > 0) return candidate_checks;
    if (local_scans + remote_scans > 0) return local_scans + remote_scans;
    return lookups;
  }
};

/// T1: visit z, generate pairs x < y from N+(z), verify arc y -> x.
OpCounts RunT1(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);
/// T2: visit y, pair z in N-(y) with x in N+(y), verify arc z -> x.
OpCounts RunT2(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);
/// T3: visit x, generate pairs y < z from N-(x), verify arc z -> y.
OpCounts RunT3(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);
/// T4: as T1 with the pair loop inverted (x outer, y inner).
OpCounts RunT4(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);
/// T5: as T2 with the loops swapped (x outer, z inner).
OpCounts RunT5(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);
/// T6: as T3 with the pair loop inverted (z outer, y inner).
OpCounts RunT6(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook = nullptr);

}  // namespace trilist
