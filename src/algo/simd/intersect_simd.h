#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/cpu_features.h"

/// \file intersect_simd.h
/// Vectorized block-merge intersection of sorted NodeId spans.
///
/// The kernel walks both lists a register-block at a time (8 lanes under
/// AVX2, 16 under AVX-512F), compares all lane pairs via in-register
/// rotations, and advances the block whose maximum is smaller — the
/// classic shuffling-intersection scheme. For *strictly* sorted inputs
/// (CSR adjacency rows always are) it emits exactly the elements the
/// scalar two-pointer merge emits, in the same ascending order.
///
/// Comparison accounting: the cost model prices the scalar loop, not the
/// hardware lanes, so SIMD results report the *scalar-equivalent* count.
/// Each scalar iteration advances i, j, or both (on match), and the loop
/// stops when the side with the smaller last element is exhausted, with
/// the other cursor at upper_bound(last element of the exhausted side).
/// That makes the count a closed form of the inputs and the match count
/// alone (ScalarMergeComparisons below) — bit-identical to what the
/// two-pointer loop would have returned, for any kernel that finds the
/// same matches.

namespace trilist {
namespace simd {

/// Matches written by one intersection (block kernels write into a
/// caller-provided buffer so the emit callback stays inlined at the call
/// site and the vector body needs no template instantiation).
///
/// Requires STRICTLY ascending inputs; `out` must hold at least
/// min(a.size(), b.size()) elements. Returns the match count; matches are
/// written ascending. Dispatches once per call on ActiveSimdLevel().
size_t BlockMergeIntersect(std::span<const NodeId> a,
                           std::span<const NodeId> b, NodeId* out);

/// Same, pinned to an explicit ISA level (clamped to the detected one);
/// the seam the differential tests drive to cross-check every kernel.
size_t BlockMergeIntersectAt(SimdLevel level, std::span<const NodeId> a,
                             std::span<const NodeId> b, NodeId* out);

/// Comparisons the scalar two-pointer merge performs on (a, b), given the
/// number of common elements: iterations = i_end + j_end - matches, with
/// the final cursors determined by whichever list holds the smaller last
/// element. Valid for strictly sorted inputs.
inline int64_t ScalarMergeComparisons(std::span<const NodeId> a,
                                      std::span<const NodeId> b,
                                      size_t matches) {
  if (a.empty() || b.empty()) return 0;
  if (a.back() <= b.back()) {
    const size_t j_end = static_cast<size_t>(
        std::upper_bound(b.begin(), b.end(), a.back()) - b.begin());
    return static_cast<int64_t>(a.size() + j_end - matches);
  }
  const size_t i_end = static_cast<size_t>(
      std::upper_bound(a.begin(), a.end(), b.back()) - a.begin());
  return static_cast<int64_t>(i_end + b.size() - matches);
}

/// True when `s` holds two equal adjacent elements, i.e. the input is
/// sorted but not strictly — the one shape where block merge and scalar
/// merge disagree on multiplicity.
inline bool HasAdjacentDuplicates(std::span<const NodeId> s) {
  for (size_t i = 1; i < s.size(); ++i) {
    if (s[i] == s[i - 1]) return true;
  }
  return false;
}

namespace internal {

/// The reference loop, kept here so the duplicate-input fallback needs no
/// dependency on the higher-level intersect.h kernels.
template <typename Emit>
int64_t ScalarMergeEmit(std::span<const NodeId> a, std::span<const NodeId> b,
                        Emit&& emit) {
  int64_t comparisons = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
  return comparisons;
}

}  // namespace internal

/// Safe templated front end over the block kernels: verifies strictness
/// (falling back to the scalar loop on duplicate-bearing inputs so the
/// semantics match IntersectMerge on *any* sorted input), buffers matches
/// on the stack for typical adjacency sizes, and returns the
/// scalar-equivalent comparison count.
template <typename Emit>
int64_t IntersectSimdT(std::span<const NodeId> a, std::span<const NodeId> b,
                       Emit&& emit) {
  if (a.empty() || b.empty()) return 0;
  if (HasAdjacentDuplicates(a) || HasAdjacentDuplicates(b)) {
    return internal::ScalarMergeEmit(a, b, emit);
  }
  constexpr size_t kStackCap = 256;
  NodeId stack_buf[kStackCap];
  std::vector<NodeId> heap_buf;
  NodeId* out = stack_buf;
  const size_t cap = std::min(a.size(), b.size());
  if (cap > kStackCap) {
    heap_buf.resize(cap);
    out = heap_buf.data();
  }
  const size_t matches = BlockMergeIntersect(a, b, out);
  for (size_t k = 0; k < matches; ++k) emit(out[k]);
  return ScalarMergeComparisons(a, b, matches);
}

}  // namespace simd
}  // namespace trilist
