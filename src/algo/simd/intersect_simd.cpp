#include "src/algo/simd/intersect_simd.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace trilist {
namespace simd {
namespace {

/// Portable block merge: the scalar two-pointer loop writing matches to
/// `out`. Also serves as the tail of the vector kernels once fewer than a
/// register block remains on either side.
size_t ScalarTail(std::span<const NodeId> a, std::span<const NodeId> b,
                  size_t i, size_t j, NodeId* out, size_t m) {
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out[m++] = a[i];
      ++i;
      ++j;
    }
  }
  return m;
}

size_t BlockMergeScalar(std::span<const NodeId> a, std::span<const NodeId> b,
                        NodeId* out) {
  return ScalarTail(a, b, 0, 0, out, 0);
}

#if defined(__x86_64__) || defined(_M_X64)

/// 8x8 all-pairs block merge. Each round compares one a-register against
/// every lane of one b-register via 8 cross-lane rotations; the matched
/// a-lanes are emitted in lane order (ascending, since the block is
/// sorted), then the block with the smaller maximum is discarded — all of
/// its possible matches lie within the other block just scanned.
__attribute__((target("avx2"))) size_t BlockMergeAvx2(
    std::span<const NodeId> a, std::span<const NodeId> b, NodeId* out) {
  static_assert(sizeof(NodeId) == 4, "lanes assume 32-bit node ids");
  size_t i = 0;
  size_t j = 0;
  size_t m = 0;
  const size_t na = a.size();
  const size_t nb = b.size();
  const __m256i rotate1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.data() + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + j));
    __m256i found = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rotate1);
      found = _mm256_or_si256(found, _mm256_cmpeq_epi32(va, vb));
    }
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(found)));
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[m++] = a[i + lane];
      mask &= mask - 1;
    }
    const NodeId a_max = a[i + 7];
    const NodeId b_max = b[j + 7];
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  return ScalarTail(a, b, i, j, out, m);
}

/// 16x16 all-pairs block merge: same scheme with AVX-512F mask compares.
/// valignd needs an immediate rotation count, hence the unrolled rounds.
// GCC 12 flags the unused merge-source operand inside the valignd
// intrinsic header as maybe-uninitialized; nothing in this function is.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) size_t BlockMergeAvx512(
    std::span<const NodeId> a, std::span<const NodeId> b, NodeId* out) {
  static_assert(sizeof(NodeId) == 4, "lanes assume 32-bit node ids");
  size_t i = 0;
  size_t j = 0;
  size_t m = 0;
  const size_t na = a.size();
  const size_t nb = b.size();
  while (i + 16 <= na && j + 16 <= nb) {
    const __m512i va = _mm512_loadu_si512(a.data() + i);
    const __m512i vb = _mm512_loadu_si512(b.data() + j);
    __mmask16 found = _mm512_cmpeq_epi32_mask(va, vb);
#define TRILIST_AVX512_ROUND(r)                                       \
  found = static_cast<__mmask16>(                                     \
      found | _mm512_cmpeq_epi32_mask(                                \
                  va, _mm512_alignr_epi32(vb, vb, (r))))
    TRILIST_AVX512_ROUND(1);
    TRILIST_AVX512_ROUND(2);
    TRILIST_AVX512_ROUND(3);
    TRILIST_AVX512_ROUND(4);
    TRILIST_AVX512_ROUND(5);
    TRILIST_AVX512_ROUND(6);
    TRILIST_AVX512_ROUND(7);
    TRILIST_AVX512_ROUND(8);
    TRILIST_AVX512_ROUND(9);
    TRILIST_AVX512_ROUND(10);
    TRILIST_AVX512_ROUND(11);
    TRILIST_AVX512_ROUND(12);
    TRILIST_AVX512_ROUND(13);
    TRILIST_AVX512_ROUND(14);
    TRILIST_AVX512_ROUND(15);
#undef TRILIST_AVX512_ROUND
    unsigned mask = found;
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      out[m++] = a[i + lane];
      mask &= mask - 1;
    }
    const NodeId a_max = a[i + 15];
    const NodeId b_max = b[j + 15];
    if (a_max <= b_max) i += 16;
    if (b_max <= a_max) j += 16;
  }
  return ScalarTail(a, b, i, j, out, m);
}
#pragma GCC diagnostic pop

#endif  // x86_64

}  // namespace

size_t BlockMergeIntersectAt(SimdLevel level, std::span<const NodeId> a,
                             std::span<const NodeId> b, NodeId* out) {
  const SimdLevel detected = DetectedSimdLevel();
  if (detected < level) level = detected;
#if defined(__x86_64__) || defined(_M_X64)
  switch (level) {
    case SimdLevel::kAvx512:
      return BlockMergeAvx512(a, b, out);
    case SimdLevel::kAvx2:
      return BlockMergeAvx2(a, b, out);
    case SimdLevel::kScalar:
      break;
  }
#endif
  return BlockMergeScalar(a, b, out);
}

size_t BlockMergeIntersect(std::span<const NodeId> a,
                           std::span<const NodeId> b, NodeId* out) {
  return BlockMergeIntersectAt(ActiveSimdLevel(), a, b, out);
}

}  // namespace simd
}  // namespace trilist
