#include "src/algo/simd/intersect_engine.h"

#include <cstring>

namespace trilist {

const char* IntersectBackendName(IntersectBackend backend) {
  switch (backend) {
    case IntersectBackend::kMerge:
      return "merge";
    case IntersectBackend::kGallop:
      return "gallop";
    case IntersectBackend::kAuto:
      return "auto";
    case IntersectBackend::kSimd:
      return "simd";
    case IntersectBackend::kBitmap:
      return "bitmap";
  }
  return "merge";
}

bool ParseIntersectBackend(const char* name, IntersectBackend* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "merge") == 0) {
    *out = IntersectBackend::kMerge;
  } else if (std::strcmp(name, "gallop") == 0) {
    *out = IntersectBackend::kGallop;
  } else if (std::strcmp(name, "auto") == 0) {
    *out = IntersectBackend::kAuto;
  } else if (std::strcmp(name, "simd") == 0) {
    *out = IntersectBackend::kSimd;
  } else if (std::strcmp(name, "bitmap") == 0) {
    *out = IntersectBackend::kBitmap;
  } else {
    return false;
  }
  return true;
}

namespace simd {

std::shared_ptr<const BitmapIndex> EnsureBitmapIndex(
    const ExecPolicy& policy, const OrientedGraph& g) {
  if (policy.intersect != IntersectBackend::kBitmap) return nullptr;
  if (policy.bitmap_index != nullptr) return policy.bitmap_index;
  BitmapIndex::Options opts;
  opts.min_degree = policy.bitmap_min_degree;
  return std::make_shared<const BitmapIndex>(BitmapIndex::Build(g, opts));
}

}  // namespace simd
}  // namespace trilist
