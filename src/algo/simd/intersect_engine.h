#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/algo/exec_policy.h"
#include "src/algo/intersect.h"
#include "src/algo/simd/bitmap_index.h"
#include "src/algo/simd/intersect_simd.h"
#include "src/graph/graph.h"
#include "src/graph/oriented_graph.h"

/// \file intersect_engine.h
/// Backend-selectable intersection dispatch for the scanning edge
/// iterators. One engine instance serves one worker (it owns a scratch
/// match buffer); the serial kernels create one per run, the parallel
/// engine one per chunk, all sharing an immutable BitmapIndex.
///
/// Every SEI intersection is a *value-window* intersection: both operand
/// spans are an adjacency row (or a contiguous piece of one) restricted
/// to a half-open label interval [lo, hi) — E1/E2 intersect below y,
/// E3/E5 above y, E4/E6 inside (x, z). The engine therefore takes the
/// window alongside the spans: the bitmap path ANDs exactly the words
/// covering [lo, hi) with masked boundary words, which handles
/// prefix/suffix/mid sub-spans of hub rows without materializing them.
///
/// Counter contract: kMerge, kSimd and kBitmap add the *same*
/// merge_comparisons (the scalar-equivalent count, see
/// ScalarMergeComparisons); kGallop/kAuto add their own honest probe
/// counts. Emission order is ascending for every backend, so triangle
/// streams are bit-identical across all five.

namespace trilist {
namespace simd {

/// Which adjacency row a span came from, so the bitmap path can look up
/// the row's hub bitmap (if any): node `node`'s out-row or in-row.
struct SpanOwner {
  NodeId node = 0;
  bool out = true;
};

/// \brief Per-worker intersection dispatcher (see file comment).
class IntersectEngine {
 public:
  /// `index` may be null (required only by kBitmap; a null index degrades
  /// kBitmap to the vectorized merge path). The index must outlive the
  /// engine.
  explicit IntersectEngine(IntersectBackend backend,
                           const BitmapIndex* index = nullptr)
      : backend_(backend), index_(index) {}

  IntersectBackend backend() const { return backend_; }

  /// Intersects sorted spans a and b (both subsets of [lo, hi)), adding
  /// this intersection's comparison count to *comparisons and emitting
  /// every common element in ascending order.
  template <typename Emit>
  void Intersect(std::span<const NodeId> a, SpanOwner oa,
                 std::span<const NodeId> b, SpanOwner ob, NodeId lo,
                 NodeId hi, int64_t* comparisons, Emit&& emit) {
    switch (backend_) {
      case IntersectBackend::kMerge:
        *comparisons += IntersectMergeT(a, b, emit);
        return;
      case IntersectBackend::kGallop:
        *comparisons += IntersectGallopT(a, b, emit);
        return;
      case IntersectBackend::kAuto:
        *comparisons += IntersectAutoT(a, b, emit);
        return;
      case IntersectBackend::kSimd:
        *comparisons += BlockMerge(a, b, emit);
        return;
      case IntersectBackend::kBitmap:
        BitmapIntersect(a, oa, b, ob, lo, hi, comparisons, emit);
        return;
    }
  }

 private:
  /// Vectorized merge through the scratch buffer; returns the
  /// scalar-equivalent comparison count.
  template <typename Emit>
  int64_t BlockMerge(std::span<const NodeId> a, std::span<const NodeId> b,
                     Emit&& emit) {
    if (a.empty() || b.empty()) return 0;
    const size_t cap = a.size() < b.size() ? a.size() : b.size();
    if (scratch_.size() < cap) scratch_.resize(cap);
    const size_t matches = BlockMergeIntersect(a, b, scratch_.data());
    for (size_t k = 0; k < matches; ++k) emit(scratch_[k]);
    return ScalarMergeComparisons(a, b, matches);
  }

  /// Degree-partitioned path: word-AND when both rows are hubs and the
  /// window is narrow enough, single-bit probes when one row is a hub and
  /// dominates the other in length, vectorized merge otherwise.
  template <typename Emit>
  void BitmapIntersect(std::span<const NodeId> a, SpanOwner oa,
                       std::span<const NodeId> b, SpanOwner ob, NodeId lo,
                       NodeId hi, int64_t* comparisons, Emit&& emit) {
    if (a.empty() || b.empty()) return;  // scalar merge: 0 comparisons
    const BitmapIndex::HubRef ha = Hub(oa);
    const BitmapIndex::HubRef hb = Hub(ob);
    if (ha && hb) {
      // Word range covering [lo, hi), clamped to what both hubs store
      // (words outside either range AND to zero).
      const uint32_t w_lo =
          std::max({lo / 64, ha.base_word, hb.base_word});
      const uint32_t w_hi =
          std::min({(hi + 63) / 64, ha.base_word + ha.num_words,
                    hb.base_word + hb.num_words});
      const size_t window_words = w_hi > w_lo ? w_hi - w_lo : 0;
      if (window_words <= a.size() + b.size()) {
        size_t matches = 0;
        for (uint32_t w = w_lo; w < w_hi; ++w) {
          uint64_t word = ha.words[w - ha.base_word] &
                          hb.words[w - hb.base_word];
          if (w == lo / 64 && lo % 64 != 0) {
            word &= ~uint64_t{0} << (lo % 64);  // drop labels < lo
          }
          if (w == hi / 64 && hi % 64 != 0) {
            word &= ~(~uint64_t{0} << (hi % 64));  // drop labels >= hi
          }
          while (word != 0) {
            const auto bit =
                static_cast<unsigned>(__builtin_ctzll(word));
            emit(static_cast<NodeId>(w) * 64 + bit);
            ++matches;
            word &= word - 1;
          }
        }
        *comparisons += ScalarMergeComparisons(a, b, matches);
        return;
      }
    }
    // Probe the much shorter span against the hub bitmap. The probed
    // values already lie inside [lo, hi), so hub bits outside the window
    // are never consulted.
    if (ha && b.size() * 8 <= a.size()) {
      *comparisons += Probe(ha, b, a, emit);
      return;
    }
    if (hb && a.size() * 8 <= b.size()) {
      *comparisons += Probe(hb, a, b, emit);
      return;
    }
    *comparisons += BlockMerge(a, b, emit);
  }

  template <typename Emit>
  int64_t Probe(BitmapIndex::HubRef hub, std::span<const NodeId> probes,
                std::span<const NodeId> hub_span, Emit&& emit) {
    size_t matches = 0;
    for (const NodeId id : probes) {
      if (hub.Test(id)) {
        emit(id);
        ++matches;
      }
    }
    // `probes` was intersected against hub_span's bitmap; account as the
    // scalar merge of the two spans would have (argument order of the
    // closed form is symmetric).
    return ScalarMergeComparisons(probes, hub_span, matches);
  }

  BitmapIndex::HubRef Hub(SpanOwner owner) const {
    if (index_ == nullptr) return BitmapIndex::HubRef{};
    return owner.out ? index_->OutHub(owner.node)
                     : index_->InHub(owner.node);
  }

  IntersectBackend backend_;
  const BitmapIndex* index_;
  std::vector<NodeId> scratch_;
};

/// The bitmap index a policy implies for `g`: the prebuilt one when the
/// policy carries it, a freshly built one for kBitmap without, and null
/// for every other backend (the engine never consults it).
std::shared_ptr<const BitmapIndex> EnsureBitmapIndex(
    const ExecPolicy& policy, const OrientedGraph& g);

}  // namespace simd
}  // namespace trilist
