#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/oriented_graph.h"

/// \file bitmap_index.h
/// Degree-partitioned packed-bitmap representation of hub adjacency rows.
///
/// Oriented vertices whose out- (or in-) degree reaches a threshold get
/// their neighbor list mirrored into a packed uint64 bitmap indexed by
/// node label; intersection against a hub then becomes word-AND +
/// popcount (both sides hubs) or single-bit probes (one side a hub),
/// while the abundant low-degree rows stay on sorted-array merge. This is
/// the classic dense/sparse degree split of the triangle-listing
/// literature, applied per *oriented* list: after orientation the
/// out-list of label v only holds labels < v and the in-list labels > v,
/// so an out-bitmap spans words [0, ceil(v/64)) and an in-bitmap starts
/// at word (v+1)/64 — hubs near either end of the order cost almost
/// nothing.
///
/// The index is immutable after Build and safe to share across threads.

namespace trilist {
namespace simd {

/// \brief Packed hub bitmaps for one oriented graph.
class BitmapIndex {
 public:
  struct Options {
    /// Rows with at least this many neighbors get a bitmap. <= 0 picks
    /// the auto threshold max(64, n/64): below 64 neighbors a row fits a
    /// cache line and merge wins; n/64 keeps a hub's word count within
    /// its own list length, bounding the index at O(m) words total.
    int64_t min_degree = 0;
  };

  /// View of one hub's bitmap: words[w - base_word] holds labels
  /// [64w, 64w + 64). Invalid (words == nullptr) when the row is not a
  /// hub.
  struct HubRef {
    const uint64_t* words = nullptr;
    uint32_t base_word = 0;
    uint32_t num_words = 0;

    explicit operator bool() const { return words != nullptr; }

    /// Membership probe (false outside the stored word range).
    bool Test(NodeId id) const {
      const uint32_t w = id / 64;
      if (w < base_word || w >= base_word + num_words) return false;
      return (words[w - base_word] >> (id % 64)) & 1u;
    }
  };

  BitmapIndex() = default;

  /// Builds bitmaps for every row of `g` meeting the degree threshold.
  static BitmapIndex Build(const OrientedGraph& g, Options opts);
  static BitmapIndex Build(const OrientedGraph& g) {
    return Build(g, Options{});
  }

  /// Bitmap of N+(v) (labels < v), or an invalid ref.
  HubRef OutHub(NodeId v) const {
    return v < out_slot_.size() ? Ref(out_slot_[v]) : HubRef{};
  }
  /// Bitmap of N-(v) (labels > v), or an invalid ref.
  HubRef InHub(NodeId v) const {
    return v < in_slot_.size() ? Ref(in_slot_[v]) : HubRef{};
  }

  /// The degree threshold the build actually used (auto resolved).
  int64_t threshold() const { return threshold_; }
  /// Number of hub rows indexed (out-rows + in-rows).
  size_t num_hubs() const { return hubs_.size(); }
  /// Heap footprint of the index.
  size_t bytes() const {
    return words_.size() * sizeof(uint64_t) + hubs_.size() * sizeof(Hub) +
           (out_slot_.size() + in_slot_.size()) * sizeof(int32_t);
  }

 private:
  struct Hub {
    size_t offset = 0;       // into words_
    uint32_t base_word = 0;
    uint32_t num_words = 0;
  };

  HubRef Ref(int32_t slot) const {
    if (slot < 0) return HubRef{};
    const Hub& h = hubs_[static_cast<size_t>(slot)];
    return HubRef{words_.data() + h.offset, h.base_word, h.num_words};
  }

  std::vector<uint64_t> words_;   // pooled storage of every hub bitmap
  std::vector<Hub> hubs_;
  std::vector<int32_t> out_slot_; // per node: index into hubs_, -1 = none
  std::vector<int32_t> in_slot_;
  int64_t threshold_ = 0;
};

}  // namespace simd
}  // namespace trilist
