#include "src/algo/simd/bitmap_index.h"

#include <algorithm>

namespace trilist {
namespace simd {
namespace {

/// Auto threshold: max(64, n/64) — see Options::min_degree.
int64_t ResolveThreshold(int64_t requested, size_t n) {
  if (requested > 0) return requested;
  return std::max<int64_t>(64, static_cast<int64_t>(n / 64));
}

}  // namespace

BitmapIndex BitmapIndex::Build(const OrientedGraph& g, Options opts) {
  BitmapIndex index;
  const size_t n = g.num_nodes();
  index.threshold_ = ResolveThreshold(opts.min_degree, n);
  index.out_slot_.assign(n, -1);
  index.in_slot_.assign(n, -1);
  const auto end_word = static_cast<uint32_t>((n + 63) / 64);

  // Size the pool first so hub word spans never reallocate mid-build.
  size_t total_words = 0;
  for (size_t v = 0; v < n; ++v) {
    const auto node = static_cast<NodeId>(v);
    if (g.OutDegree(node) >= index.threshold_) {
      total_words += (v + 63) / 64;  // out-list spans labels [0, v)
    }
    if (g.InDegree(node) >= index.threshold_) {
      total_words += end_word - static_cast<uint32_t>((v + 1) / 64);
    }
  }
  index.words_.assign(total_words, 0);

  size_t offset = 0;
  const auto add_hub = [&](std::span<const NodeId> row, uint32_t base_word,
                           uint32_t num_words, std::vector<int32_t>* slot,
                           size_t v) {
    Hub hub;
    hub.offset = offset;
    hub.base_word = base_word;
    hub.num_words = num_words;
    uint64_t* words = index.words_.data() + offset;
    for (const NodeId id : row) {
      words[id / 64 - base_word] |= uint64_t{1} << (id % 64);
    }
    (*slot)[v] = static_cast<int32_t>(index.hubs_.size());
    index.hubs_.push_back(hub);
    offset += num_words;
  };

  for (size_t v = 0; v < n; ++v) {
    const auto node = static_cast<NodeId>(v);
    if (g.OutDegree(node) >= index.threshold_) {
      add_hub(g.OutNeighbors(node), 0,
              static_cast<uint32_t>((v + 63) / 64), &index.out_slot_, v);
    }
    if (g.InDegree(node) >= index.threshold_) {
      const auto base = static_cast<uint32_t>((v + 1) / 64);
      add_hub(g.InNeighbors(node), base, end_word - base, &index.in_slot_,
              v);
    }
  }
  return index;
}

}  // namespace simd
}  // namespace trilist
