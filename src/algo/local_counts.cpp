#include "src/algo/local_counts.h"

#include <algorithm>

#include "src/algo/registry.h"
#include "src/algo/triangle_sink.h"
#include "src/order/pipeline.h"

namespace trilist {

std::vector<uint64_t> TrianglesPerVertex(const Graph& g, Method m,
                                         PermutationKind kind, Rng* rng) {
  const OrientedGraph og = OrientNamed(g, kind, rng);
  std::vector<uint64_t> counts(g.num_nodes(), 0);
  CallbackSink sink([&](NodeId x, NodeId y, NodeId z) {
    ++counts[og.OriginalOf(x)];
    ++counts[og.OriginalOf(y)];
    ++counts[og.OriginalOf(z)];
  });
  RunMethod(m, og, &sink);
  return counts;
}

std::vector<double> LocalClusteringCoefficients(const Graph& g, Method m,
                                                PermutationKind kind,
                                                Rng* rng) {
  const std::vector<uint64_t> counts = TrianglesPerVertex(g, m, kind, rng);
  std::vector<double> coeffs(g.num_nodes(), 0.0);
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    const auto d = static_cast<double>(g.Degree(static_cast<NodeId>(v)));
    if (d >= 2.0) {
      coeffs[v] = static_cast<double>(counts[v]) / (d * (d - 1.0) / 2.0);
    }
  }
  return coeffs;
}

TriangleStats ComputeTriangleStats(const Graph& g, Method m,
                                   PermutationKind kind, Rng* rng) {
  TriangleStats stats;
  const std::vector<uint64_t> counts = TrianglesPerVertex(g, m, kind, rng);
  uint64_t corner_sum = 0;
  double local_sum = 0.0;
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    const auto d = static_cast<double>(g.Degree(static_cast<NodeId>(v)));
    stats.wedges += d * (d - 1.0) / 2.0;
    corner_sum += counts[v];
    stats.max_per_vertex = std::max(stats.max_per_vertex, counts[v]);
    if (d >= 2.0) {
      local_sum += static_cast<double>(counts[v]) / (d * (d - 1.0) / 2.0);
    }
  }
  stats.triangles = corner_sum / 3;
  stats.transitivity =
      stats.wedges > 0.0
          ? 3.0 * static_cast<double>(stats.triangles) / stats.wedges
          : 0.0;
  stats.mean_local =
      g.num_nodes() > 0
          ? local_sum / static_cast<double>(g.num_nodes())
          : 0.0;
  return stats;
}

}  // namespace trilist
