#include "src/algo/parallel_engine.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/algo/registry.h"
#include "src/algo/sei_common.h"
#include "src/algo/simd/intersect_engine.h"
#include "src/obs/trace.h"
#include "src/util/parallel_for.h"
#include "src/util/status.h"

namespace trilist {

namespace {

/// A boundary in the concatenated outer iteration space: the first
/// (node, outer position) pair owned by a chunk. Cuts with pos > 0 land
/// inside a node's range — that is how hubs get split across workers.
struct Cut {
  NodeId node = 0;
  size_t pos = 0;
};

/// Length of the outer position range of node v under method m.
size_t OuterLen(Method m, const OrientedGraph& g, NodeId v) {
  return static_cast<size_t>(m == Method::kT2 ? g.InDegree(v)
                                              : g.OutDegree(v));
}

/// Paper-cost weight of one outer position (see the header): the work the
/// serial kernel performs at (v, p). The planner adds 1 per position on
/// top, so zero-cost positions still advance chunk boundaries.
int64_t PositionWeight(Method m, const OrientedGraph& g, NodeId v,
                       size_t p) {
  switch (m) {
    case Method::kT1:
      return static_cast<int64_t>(p);  // pairs (a, b) with a < b = p
    case Method::kT2:
      return g.OutDegree(v);  // each in-neighbor scans the full out-list
    case Method::kE1:
      return static_cast<int64_t>(p) + g.OutDegree(g.OutNeighbors(v)[p]);
    case Method::kE4:
      return static_cast<int64_t>(g.OutNeighbors(v).size() - 1 - p) +
             g.InDegree(g.OutNeighbors(v)[p]);
    default:
      TRILIST_DCHECK(false);
      return 1;
  }
}

/// Cuts the concatenated position space into `num_chunks` contiguous
/// slices of near-equal total weight. Returns num_chunks + 1 cuts with
/// cuts[0] = begin and cuts[num_chunks] = end; chunks may be empty when
/// the graph has fewer positions than chunks. Deterministic: depends only
/// on the graph and the chunk count.
std::vector<Cut> PlanCuts(Method m, const OrientedGraph& g,
                          size_t num_chunks) {
  const size_t n = g.num_nodes();
  unsigned __int128 total = 0;
  for (size_t v = 0; v < n; ++v) {
    const auto node = static_cast<NodeId>(v);
    const size_t len = OuterLen(m, g, node);
    for (size_t p = 0; p < len; ++p) {
      total += static_cast<unsigned __int128>(
          PositionWeight(m, g, node, p) + 1);
    }
  }
  std::vector<Cut> cuts;
  cuts.reserve(num_chunks + 1);
  cuts.push_back(Cut{0, 0});
  unsigned __int128 acc = 0;
  size_t next_boundary = 1;  // boundary k sits at weight >= k*total/chunks
  for (size_t v = 0; v < n && cuts.size() < num_chunks; ++v) {
    const auto node = static_cast<NodeId>(v);
    const size_t len = OuterLen(m, g, node);
    for (size_t p = 0; p < len && cuts.size() < num_chunks; ++p) {
      acc += static_cast<unsigned __int128>(
          PositionWeight(m, g, node, p) + 1);
      while (cuts.size() < num_chunks &&
             acc * num_chunks >= total * next_boundary) {
        // The position after (v, p) starts the next chunk.
        if (p + 1 < len) {
          cuts.push_back(Cut{node, p + 1});
        } else {
          cuts.push_back(Cut{static_cast<NodeId>(v + 1), 0});
        }
        ++next_boundary;
      }
    }
  }
  while (cuts.size() <= num_chunks) {
    cuts.push_back(Cut{static_cast<NodeId>(n), 0});
  }
  return cuts;
}

/// Output of one chunk: exact counters plus the triangles in the order
/// the serial engine would have emitted them within the slice.
struct ChunkResult {
  OpCounts ops;
  std::vector<Triangle> triangles;
};

void RunSliceT1(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                NodeId z, size_t p0, size_t p1, ChunkResult* out) {
  const auto list = g.OutNeighbors(z);
  for (size_t b = p0; b < p1; ++b) {
    const NodeId y = list[b];
    for (size_t a = 0; a < b; ++a) {
      const NodeId x = list[a];
      ++out->ops.candidate_checks;
      if (arcs.Contains(y, x)) {
        ++out->ops.triangles;
        out->triangles.push_back({x, y, z});
      }
    }
  }
}

void RunSliceT2(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                NodeId y, size_t p0, size_t p1, ChunkResult* out) {
  const auto in = g.InNeighbors(y);
  const auto outs = g.OutNeighbors(y);
  for (size_t zi = p0; zi < p1; ++zi) {
    const NodeId z = in[zi];
    for (const NodeId x : outs) {
      ++out->ops.candidate_checks;
      if (arcs.Contains(z, x)) {
        ++out->ops.triangles;
        out->triangles.push_back({x, y, z});
      }
    }
  }
}

/// One backend-routed intersection of a slice; a null engine is the
/// direct scalar merge (the default path, bit-identical to the serial
/// kernels — which route through the very same seam).
template <typename Emit>
void SliceIntersect(simd::IntersectEngine* engine,
                    std::span<const NodeId> a, simd::SpanOwner oa,
                    std::span<const NodeId> b, simd::SpanOwner ob,
                    NodeId lo, NodeId hi, int64_t* comparisons,
                    Emit&& emit) {
  if (engine != nullptr) {
    engine->Intersect(a, oa, b, ob, lo, hi, comparisons, emit);
  } else {
    sei::MergeIntersect(a, b, comparisons, emit);
  }
}

void RunSliceE1(const OrientedGraph& g, NodeId z, size_t p0, size_t p1,
                ChunkResult* out, simd::IntersectEngine* engine) {
  const auto outs = g.OutNeighbors(z);
  for (size_t idx = p0; idx < p1; ++idx) {
    const NodeId y = outs[idx];
    const auto local = outs.first(idx);  // elements of N+(z) below y
    const auto remote = g.OutNeighbors(y);
    out->ops.local_scans += static_cast<int64_t>(local.size());
    out->ops.remote_scans += static_cast<int64_t>(remote.size());
    SliceIntersect(engine, local, {z, true}, remote, {y, true}, 0, y,
                   &out->ops.merge_comparisons, [&](NodeId x) {
                     ++out->ops.triangles;
                     out->triangles.push_back({x, y, z});
                   });
  }
}

void RunSliceE4(const OrientedGraph& g, NodeId z, size_t p0, size_t p1,
                ChunkResult* out, simd::IntersectEngine* engine) {
  const auto outs = g.OutNeighbors(z);
  for (size_t idx = p0; idx < p1; ++idx) {
    const NodeId x = outs[idx];
    const auto local = outs.subspan(idx + 1);  // y candidates above x
    const auto remote = sei::PrefixBelow(g.InNeighbors(x), z);
    out->ops.local_scans += static_cast<int64_t>(local.size());
    out->ops.remote_scans += static_cast<int64_t>(remote.size());
    SliceIntersect(engine, local, {z, true}, remote, {x, false},
                   x + 1, z, &out->ops.merge_comparisons, [&](NodeId y) {
                     ++out->ops.triangles;
                     out->triangles.push_back({x, y, z});
                   });
  }
}

void RunSlice(Method m, const OrientedGraph& g, const DirectedEdgeSet& arcs,
              NodeId v, size_t p0, size_t p1, ChunkResult* out,
              simd::IntersectEngine* engine) {
  if (p0 >= p1) return;
  switch (m) {
    case Method::kT1: RunSliceT1(g, arcs, v, p0, p1, out); break;
    case Method::kT2: RunSliceT2(g, arcs, v, p0, p1, out); break;
    case Method::kE1: RunSliceE1(g, v, p0, p1, out, engine); break;
    case Method::kE4: RunSliceE4(g, v, p0, p1, out, engine); break;
    default: TRILIST_DCHECK(false);
  }
}

/// Runs the slices covering [lo, hi): full node ranges in the middle,
/// partial ranges where a cut split a node.
void RunChunk(Method m, const OrientedGraph& g, const DirectedEdgeSet& arcs,
              Cut lo, Cut hi, ChunkResult* out,
              simd::IntersectEngine* engine) {
  const size_t n = g.num_nodes();
  NodeId v = lo.node;
  size_t start = lo.pos;
  while (v < n && v < hi.node) {
    RunSlice(m, g, arcs, v, start, OuterLen(m, g, v), out, engine);
    ++v;
    start = 0;
  }
  if (v < n && v == hi.node && start < hi.pos) {
    RunSlice(m, g, arcs, v, start, hi.pos, out, engine);
  }
}

/// Field-wise accumulation; all counters are exact integer sums over a
/// partition of the serial iteration space, so order cannot matter.
void AddInto(OpCounts* total, const OpCounts& part) {
  total->candidate_checks += part.candidate_checks;
  total->local_scans += part.local_scans;
  total->remote_scans += part.remote_scans;
  total->merge_comparisons += part.merge_comparisons;
  total->hash_inserts += part.hash_inserts;
  total->lookups += part.lookups;
  total->binary_searches += part.binary_searches;
  total->triangles += part.triangles;
}

}  // namespace

bool SupportsParallel(Method m) {
  return m == Method::kT1 || m == Method::kT2 || m == Method::kE1 ||
         m == Method::kE4;
}

OpCounts RunMethodParallel(Method m, const OrientedGraph& g,
                           TriangleSink* sink, const ExecPolicy& policy) {
  if (MethodFamily(m) == Family::kVertexIterator) {
    const DirectedEdgeSet arcs(g);
    return RunMethodParallel(m, g, arcs, sink, policy);
  }
  const DirectedEdgeSet empty_arcs{OrientedGraph()};
  return RunMethodParallel(m, g, empty_arcs, sink, policy);
}

OpCounts RunMethodParallel(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           const ExecPolicy& policy) {
  const int threads = std::max(1, policy.threads);
  if (threads == 1 || !SupportsParallel(m) || g.num_nodes() == 0) {
    ExecPolicy serial = policy;
    serial.threads = 1;
    return RunMethod(m, g, arcs, sink, serial);
  }
  const size_t num_chunks = static_cast<size_t>(threads) *
                            static_cast<size_t>(
                                std::max(1, policy.chunks_per_thread));
  const std::vector<Cut> cuts = PlanCuts(m, g, num_chunks);
  std::vector<ChunkResult> results(num_chunks);
  // One immutable bitmap index shared by every worker; each chunk gets
  // its own engine (the engine's scratch buffer is not thread-safe).
  const std::shared_ptr<const simd::BitmapIndex> index =
      simd::EnsureBitmapIndex(policy, g);
  const bool routed = policy.intersect != IntersectBackend::kMerge;
  ThreadPool pool(threads);
  pool.ParallelFor(num_chunks, [&](size_t c) {
    obs::TraceSpan span("chunk");
    span.Arg("method", MethodName(m));
    span.Arg("shard", static_cast<int64_t>(c));
    span.Arg("v_begin", static_cast<int64_t>(cuts[c].node));
    simd::IntersectEngine engine(policy.intersect, index.get());
    RunChunk(m, g, arcs, cuts[c], cuts[c + 1], &results[c],
             routed ? &engine : nullptr);
    span.Arg("ops", results[c].ops.PaperCost());
  });
  // Deterministic merge: chunk order is serial order.
  OpCounts total;
  for (const ChunkResult& r : results) {
    AddInto(&total, r.ops);
    for (const Triangle& t : r.triangles) sink->Consume(t.x, t.y, t.z);
  }
  return total;
}

}  // namespace trilist
