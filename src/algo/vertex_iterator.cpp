#include "src/algo/vertex_iterator.h"

#include <type_traits>

namespace trilist {

namespace {

/// Hook-free tag: `if constexpr` removes every attribution statement, so
/// the default instantiations compile to exactly the pre-hook kernels.
struct NoHook {};

template <typename Hook>
constexpr bool kHooked = !std::is_same_v<Hook, NoHook>;

template <typename Hook>
OpCounts RunT1Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    // Pairs x < y; lists are sorted, so index order is label order.
    for (size_t b = 1; b < out.size(); ++b) {
      const NodeId y = out[b];
      for (size_t a = 0; a < b; ++a) {
        const NodeId x = out[a];
        ++ops.candidate_checks;
        if (arcs.Contains(y, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(z, ops.candidate_checks - before);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunT2Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto in = g.InNeighbors(y);
    const auto out = g.OutNeighbors(y);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    for (const NodeId z : in) {
      for (const NodeId x : out) {
        ++ops.candidate_checks;
        if (arcs.Contains(z, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(y, ops.candidate_checks - before);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunT3Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    for (size_t a = 0; a + 1 < in.size(); ++a) {
      const NodeId y = in[a];
      for (size_t b = a + 1; b < in.size(); ++b) {
        const NodeId z = in[b];
        ++ops.candidate_checks;
        if (arcs.Contains(z, y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(x, ops.candidate_checks - before);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunT4Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    // Same pair set as T1, visited x-first.
    for (size_t a = 0; a + 1 < out.size(); ++a) {
      const NodeId x = out[a];
      for (size_t b = a + 1; b < out.size(); ++b) {
        const NodeId y = out[b];
        ++ops.candidate_checks;
        if (arcs.Contains(y, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(z, ops.candidate_checks - before);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunT5Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto in = g.InNeighbors(y);
    const auto out = g.OutNeighbors(y);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    for (const NodeId x : out) {
      for (const NodeId z : in) {
        ++ops.candidate_checks;
        if (arcs.Contains(z, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(y, ops.candidate_checks - before);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunT6Impl(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                   TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    [[maybe_unused]] const int64_t before = ops.candidate_checks;
    for (size_t b = 1; b < in.size(); ++b) {
      const NodeId z = in[b];
      for (size_t a = 0; a < b; ++a) {
        const NodeId y = in[a];
        ++ops.candidate_checks;
        if (arcs.Contains(z, y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
    if constexpr (kHooked<Hook>) {
      hook->Record(x, ops.candidate_checks - before);
    }
  }
  return ops;
}

}  // namespace

OpCounts RunT1(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT1Impl(g, arcs, sink, hook)
                         : RunT1Impl(g, arcs, sink, NoHook{});
}

OpCounts RunT2(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT2Impl(g, arcs, sink, hook)
                         : RunT2Impl(g, arcs, sink, NoHook{});
}

OpCounts RunT3(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT3Impl(g, arcs, sink, hook)
                         : RunT3Impl(g, arcs, sink, NoHook{});
}

OpCounts RunT4(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT4Impl(g, arcs, sink, hook)
                         : RunT4Impl(g, arcs, sink, NoHook{});
}

OpCounts RunT5(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT5Impl(g, arcs, sink, hook)
                         : RunT5Impl(g, arcs, sink, NoHook{});
}

OpCounts RunT6(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink, NodeOpsHook* hook) {
  return hook != nullptr ? RunT6Impl(g, arcs, sink, hook)
                         : RunT6Impl(g, arcs, sink, NoHook{});
}

}  // namespace trilist
