#include "src/algo/vertex_iterator.h"

namespace trilist {

OpCounts RunT1(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    // Pairs x < y; lists are sorted, so index order is label order.
    for (size_t b = 1; b < out.size(); ++b) {
      const NodeId y = out[b];
      for (size_t a = 0; a < b; ++a) {
        const NodeId x = out[a];
        ++ops.candidate_checks;
        if (arcs.Contains(y, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunT2(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto in = g.InNeighbors(y);
    const auto out = g.OutNeighbors(y);
    for (const NodeId z : in) {
      for (const NodeId x : out) {
        ++ops.candidate_checks;
        if (arcs.Contains(z, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunT3(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    for (size_t a = 0; a + 1 < in.size(); ++a) {
      const NodeId y = in[a];
      for (size_t b = a + 1; b < in.size(); ++b) {
        const NodeId z = in[b];
        ++ops.candidate_checks;
        if (arcs.Contains(z, y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunT4(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    // Same pair set as T1, visited x-first.
    for (size_t a = 0; a + 1 < out.size(); ++a) {
      const NodeId x = out[a];
      for (size_t b = a + 1; b < out.size(); ++b) {
        const NodeId y = out[b];
        ++ops.candidate_checks;
        if (arcs.Contains(y, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunT5(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    const auto in = g.InNeighbors(y);
    const auto out = g.OutNeighbors(y);
    for (const NodeId x : out) {
      for (const NodeId z : in) {
        ++ops.candidate_checks;
        if (arcs.Contains(z, x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunT6(const OrientedGraph& g, const DirectedEdgeSet& arcs,
               TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    for (size_t b = 1; b < in.size(); ++b) {
      const NodeId z = in[b];
      for (size_t a = 0; a < b; ++a) {
        const NodeId y = in[a];
        ++ops.candidate_checks;
        if (arcs.Contains(z, y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

}  // namespace trilist
