#pragma once

#include "src/algo/op_hook.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/graph/oriented_graph.h"

/// \file edge_iterator.h
/// The six scanning edge iterators E1..E6 (Section 2.3, Figure 3).
///
/// Each traverses every arc and merge-intersects two sorted neighbor
/// ranges. Cost splits into *local* (the first-visited node's list) and
/// *remote* (the other endpoint's list); Table 1 gives the class of each:
///
///          E1   E2   E3   E4   E5   E6
///   local  T1   T2   T3   T1   T2   T3
///   remote T2   T1   T2   T3   T3   T1
///
/// The OpCounts fields local_scans / remote_scans reproduce the paper's
/// accounting exactly (every element of each intersected range counts
/// once); merge_comparisons tracks what the two-pointer loop actually
/// executed, which is at most local + remote. E5 and E6 additionally need
/// one binary search per arc to locate the start of the remote suffix,
/// recorded in binary_searches — the structural disadvantage that removes
/// them from contention (Section 2.3).
///
/// The optional `hook` attributes scanned elements to nodes the way
/// Table 1 does: the local range to the node whose list it is, the remote
/// range to the *remote* endpoint (even though the scan executes inside
/// another node's outer iteration), so per-node sums reproduce the
/// local-class + remote-class cost of each node exactly. nullptr — the
/// default — selects a hook-free instantiation with zero overhead.
///
/// Each method has a second overload taking a simd::IntersectEngine,
/// which routes every intersection through the engine's selected backend
/// (vectorized merge, hub bitmaps, galloping — see intersect_engine.h).
/// A null engine, or one configured for the default merge backend,
/// selects the exact same direct-merge instantiation as the two-argument
/// form. Triangles and emission order are identical for every backend.

namespace trilist {

namespace simd {
class IntersectEngine;
}  // namespace simd

/// E1: visit z; for y in N+(z), intersect N+(z) below y with N+(y).
OpCounts RunE1(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE1(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);
/// E2: visit y; for z in N-(y), intersect N+(y) with N+(z) below y.
OpCounts RunE2(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE2(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);
/// E3: visit x; for y in N-(x), intersect N-(x) above y with N-(y).
OpCounts RunE3(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE3(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);
/// E4: visit z; for x in N+(z), intersect N+(z) above x with N-(x) below z.
OpCounts RunE4(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE4(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);
/// E5: visit y; for x in N+(y), intersect N-(y) with N-(x) above y.
OpCounts RunE5(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE5(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);
/// E6: visit x; for z in N-(x), intersect N-(x) below z with N+(z) above x.
OpCounts RunE6(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
OpCounts RunE6(const OrientedGraph& g, TriangleSink* sink,
               simd::IntersectEngine* engine, NodeOpsHook* hook);

}  // namespace trilist
