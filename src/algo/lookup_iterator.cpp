#include "src/algo/lookup_iterator.h"

#include <algorithm>
#include <span>
#include <type_traits>
#include <vector>

namespace trilist {

namespace {

/// Epoch-stamped membership over dense labels: Mark/Contains are O(1) and
/// resetting for the next node costs one counter bump.
class MarkerSet {
 public:
  explicit MarkerSet(size_t n) : stamp_(n, 0) {}

  void NewEpoch() { ++epoch_; }
  void Mark(NodeId v) { stamp_[v] = epoch_; }
  bool Contains(NodeId v) const { return stamp_[v] == epoch_; }

 private:
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 0;
};

std::span<const NodeId> SuffixAbove(std::span<const NodeId> list,
                                    NodeId bound) {
  const auto it = std::upper_bound(list.begin(), list.end(), bound);
  return list.subspan(static_cast<size_t>(it - list.begin()));
}

/// Hook-free tag: `if constexpr` removes every attribution statement, so
/// the default instantiations compile to exactly the pre-hook kernels.
struct NoHook {};

template <typename Hook>
constexpr bool kHooked = !std::is_same_v<Hook, NoHook>;

// Attribution (Table 2): every probe is charged to the node whose list is
// scanned remotely; hash inserts are excluded from the lookup class.

template <typename Hook>
OpCounts RunL1Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    local.NewEpoch();
    for (NodeId v : out) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId y : out) {
      const auto remote = g.OutNeighbors(y);
      if constexpr (kHooked<Hook>) {
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      for (const NodeId x : remote) {
        ++ops.lookups;
        if (local.Contains(x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunL2Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    local.NewEpoch();
    for (NodeId v : g.OutNeighbors(y)) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId z : g.InNeighbors(y)) {
      [[maybe_unused]] int64_t probes = 0;
      for (const NodeId x : g.OutNeighbors(z)) {
        if (x >= y) break;  // sorted: prefix below y only
        ++ops.lookups;
        if constexpr (kHooked<Hook>) ++probes;
        if (local.Contains(x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
      if constexpr (kHooked<Hook>) hook->Record(z, probes);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunL3Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    local.NewEpoch();
    for (NodeId v : in) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId y : in) {
      const auto remote = g.InNeighbors(y);
      if constexpr (kHooked<Hook>) {
        hook->Record(y, static_cast<int64_t>(remote.size()));
      }
      for (const NodeId z : remote) {
        ++ops.lookups;
        if (local.Contains(z)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunL4Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    local.NewEpoch();
    for (NodeId v : out) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId x : out) {
      [[maybe_unused]] int64_t probes = 0;
      for (const NodeId y : g.InNeighbors(x)) {
        if (y >= z) break;  // sorted: prefix below z only
        ++ops.lookups;
        if constexpr (kHooked<Hook>) ++probes;
        if (local.Contains(y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
      if constexpr (kHooked<Hook>) hook->Record(x, probes);
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunL5Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    local.NewEpoch();
    for (NodeId v : g.InNeighbors(y)) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId x : g.OutNeighbors(y)) {
      ++ops.binary_searches;
      const auto remote = SuffixAbove(g.InNeighbors(x), y);
      if constexpr (kHooked<Hook>) {
        hook->Record(x, static_cast<int64_t>(remote.size()));
      }
      for (const NodeId z : remote) {
        ++ops.lookups;
        if (local.Contains(z)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

template <typename Hook>
OpCounts RunL6Impl(const OrientedGraph& g, TriangleSink* sink, Hook hook) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    local.NewEpoch();
    for (NodeId v : in) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId z : in) {
      ++ops.binary_searches;
      const auto remote = SuffixAbove(g.OutNeighbors(z), x);
      if constexpr (kHooked<Hook>) {
        hook->Record(z, static_cast<int64_t>(remote.size()));
      }
      for (const NodeId y : remote) {
        ++ops.lookups;
        if (local.Contains(y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

}  // namespace

OpCounts RunL1(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL1Impl(g, sink, hook)
                         : RunL1Impl(g, sink, NoHook{});
}

OpCounts RunL2(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL2Impl(g, sink, hook)
                         : RunL2Impl(g, sink, NoHook{});
}

OpCounts RunL3(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL3Impl(g, sink, hook)
                         : RunL3Impl(g, sink, NoHook{});
}

OpCounts RunL4(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL4Impl(g, sink, hook)
                         : RunL4Impl(g, sink, NoHook{});
}

OpCounts RunL5(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL5Impl(g, sink, hook)
                         : RunL5Impl(g, sink, NoHook{});
}

OpCounts RunL6(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook) {
  return hook != nullptr ? RunL6Impl(g, sink, hook)
                         : RunL6Impl(g, sink, NoHook{});
}

}  // namespace trilist
