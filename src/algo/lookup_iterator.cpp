#include "src/algo/lookup_iterator.h"

#include <algorithm>
#include <span>
#include <vector>

namespace trilist {

namespace {

/// Epoch-stamped membership over dense labels: Mark/Contains are O(1) and
/// resetting for the next node costs one counter bump.
class MarkerSet {
 public:
  explicit MarkerSet(size_t n) : stamp_(n, 0) {}

  void NewEpoch() { ++epoch_; }
  void Mark(NodeId v) { stamp_[v] = epoch_; }
  bool Contains(NodeId v) const { return stamp_[v] == epoch_; }

 private:
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 0;
};

std::span<const NodeId> SuffixAbove(std::span<const NodeId> list,
                                    NodeId bound) {
  const auto it = std::upper_bound(list.begin(), list.end(), bound);
  return list.subspan(static_cast<size_t>(it - list.begin()));
}

}  // namespace

OpCounts RunL1(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    local.NewEpoch();
    for (NodeId v : out) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId y : out) {
      for (const NodeId x : g.OutNeighbors(y)) {
        ++ops.lookups;
        if (local.Contains(x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunL2(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    local.NewEpoch();
    for (NodeId v : g.OutNeighbors(y)) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId z : g.InNeighbors(y)) {
      for (const NodeId x : g.OutNeighbors(z)) {
        if (x >= y) break;  // sorted: prefix below y only
        ++ops.lookups;
        if (local.Contains(x)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunL3(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    local.NewEpoch();
    for (NodeId v : in) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId y : in) {
      for (const NodeId z : g.InNeighbors(y)) {
        ++ops.lookups;
        if (local.Contains(z)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunL4(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    local.NewEpoch();
    for (NodeId v : out) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId x : out) {
      for (const NodeId y : g.InNeighbors(x)) {
        if (y >= z) break;  // sorted: prefix below z only
        ++ops.lookups;
        if (local.Contains(y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunL5(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t yi = 0; yi < n; ++yi) {
    const auto y = static_cast<NodeId>(yi);
    local.NewEpoch();
    for (NodeId v : g.InNeighbors(y)) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId x : g.OutNeighbors(y)) {
      ++ops.binary_searches;
      for (const NodeId z : SuffixAbove(g.InNeighbors(x), y)) {
        ++ops.lookups;
        if (local.Contains(z)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunL6(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  MarkerSet local(n);
  for (size_t xi = 0; xi < n; ++xi) {
    const auto x = static_cast<NodeId>(xi);
    const auto in = g.InNeighbors(x);
    local.NewEpoch();
    for (NodeId v : in) {
      local.Mark(v);
      ++ops.hash_inserts;
    }
    for (const NodeId z : in) {
      ++ops.binary_searches;
      for (const NodeId y : SuffixAbove(g.OutNeighbors(z), x)) {
        ++ops.lookups;
        if (local.Contains(y)) {
          ++ops.triangles;
          sink->Consume(x, y, z);
        }
      }
    }
  }
  return ops;
}

}  // namespace trilist
