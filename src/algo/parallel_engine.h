#pragma once

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/graph/edge_set.h"
#include "src/graph/oriented_graph.h"

/// \file parallel_engine.h
/// Multi-threaded drivers for the four fundamental cost classes T1, T2,
/// E1, E4 (the paper's non-isomorphic representatives, Section 2).
///
/// ## Partitioning
/// The serial kernels are loops over an outer iteration space: for every
/// node v, a per-node range of "outer positions" (pair index, in-list
/// index, or arc index depending on the method). The planner assigns each
/// position its paper-cost weight — pairs below it for T1, X_v for T2,
/// local + remote list lengths for E1/E4 — and cuts the concatenated
/// position space into chunks of (approximately) equal total weight.
/// Cuts may land *inside* a node's range: a Pareto hub whose quadratic
/// work exceeds a chunk budget is split across as many chunks (and hence
/// workers) as its weight demands, so no single vertex can serialize the
/// run. Chunks are claimed dynamically from the pool's atomic counter.
///
/// ## Determinism
/// Chunks are contiguous slices of the *serial* iteration order, each
/// chunk accumulates into its own OpCounts and triangle buffer, and the
/// merge replays chunks in index order. Parallel runs therefore emit the
/// exact same triangle sequence to the sink and report bit-identical
/// OpCounts (all counters are exact integer sums over a partition of the
/// serial iteration space) for every thread count, including 1.
///
/// Methods outside {T1, T2, E1, E4} fall back to the serial engine.

namespace trilist {

/// True for the methods with a parallel driver (T1, T2, E1, E4).
bool SupportsParallel(Method m);

/// Runs `m` under `policy`, building the arc set internally when the
/// method is a vertex iterator (as RunMethod does).
OpCounts RunMethodParallel(Method m, const OrientedGraph& g,
                           TriangleSink* sink, const ExecPolicy& policy);

/// Same, reusing a caller-provided arc set for vertex iterators.
OpCounts RunMethodParallel(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           const ExecPolicy& policy);

}  // namespace trilist
