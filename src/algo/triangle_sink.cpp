#include "src/algo/triangle_sink.h"

#include <algorithm>

namespace trilist {

std::vector<Triangle> CollectingSink::Sorted() const {
  std::vector<Triangle> sorted = triangles_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace trilist
