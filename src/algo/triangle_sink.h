#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/graph/graph.h"

/// \file triangle_sink.h
/// Consumers of listed triangles. Every listing algorithm emits each
/// triangle exactly once, as (x, y, z) with x < y < z in *label* space
/// (the global order O of Section 2.1); OriginalOf() on the oriented graph
/// converts back to input IDs when needed.

namespace trilist {

/// A triangle in label space, x < y < z.
struct Triangle {
  NodeId x;
  NodeId y;
  NodeId z;

  friend bool operator==(const Triangle&, const Triangle&) = default;
  friend auto operator<=>(const Triangle&, const Triangle&) = default;
};

/// \brief Abstract triangle consumer.
class TriangleSink {
 public:
  virtual ~TriangleSink() = default;
  /// Receives one triangle; precondition x < y < z.
  virtual void Consume(NodeId x, NodeId y, NodeId z) = 0;
};

/// Counts triangles without storing them.
class CountingSink : public TriangleSink {
 public:
  void Consume(NodeId, NodeId, NodeId) override { ++count_; }
  /// Number of triangles consumed.
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Stores all triangles (tests and small graphs only).
class CollectingSink : public TriangleSink {
 public:
  void Consume(NodeId x, NodeId y, NodeId z) override {
    triangles_.push_back({x, y, z});
  }
  /// Collected triangles in emission order.
  const std::vector<Triangle>& triangles() const { return triangles_; }
  /// Sorted copy, for set comparison across methods.
  std::vector<Triangle> Sorted() const;

 private:
  std::vector<Triangle> triangles_;
};

/// Adapts a lambda.
class CallbackSink : public TriangleSink {
 public:
  /// \param fn invoked once per triangle.
  explicit CallbackSink(std::function<void(NodeId, NodeId, NodeId)> fn)
      : fn_(std::move(fn)) {}
  void Consume(NodeId x, NodeId y, NodeId z) override { fn_(x, y, z); }

 private:
  std::function<void(NodeId, NodeId, NodeId)> fn_;
};

}  // namespace trilist
