#pragma once

#include <cstdint>

#include "src/graph/graph.h"  // NodeId

/// \file op_hook.h
/// Per-node operation hook for the 18 listing kernels.
///
/// Every kernel signature accepts an optional NodeOpsHook. When one is
/// supplied the kernel reports, for each node, the paper-metric
/// operations *attributed to that node by the cost model of Section 3* —
/// candidate checks for vertex iterators, local + remote scanned elements
/// for scanning edge iterators, membership probes for lookup iterators.
/// Attribution follows the tables, not the loop nesting: an SEI kernel's
/// remote scan of N(y) is charged to y (where Table 1 puts the remote
/// class), even though the scan executes inside another node's outer
/// iteration. Summing a hook's records over all nodes therefore
/// reproduces OpCounts::PaperCost exactly — the invariant the degree
/// profiler's tests pin down.
///
/// Hooked and hook-free paths are separate template instantiations inside
/// the kernels, so passing no hook (the default for every production
/// caller) costs nothing — not even a branch.

namespace trilist {

/// \brief Receives per-node paper-metric operation attributions.
///
/// `Record(v, ops)` may be called multiple times for the same node; the
/// node's total is the sum. Calls happen on the kernel's (single) thread.
class NodeOpsHook {
 public:
  virtual ~NodeOpsHook() = default;

  /// `ops` operations attributed to node `v` (label space of the
  /// oriented graph the kernel runs on).
  virtual void Record(NodeId v, int64_t ops) = 0;
};

}  // namespace trilist
