#pragma once

#include "src/algo/op_hook.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/graph/oriented_graph.h"

/// \file lookup_iterator.h
/// The six lookup-based edge iterators L1..L6 (Section 2.3, Table 2).
///
/// Same search patterns as E1..E6, but the local neighbor list of the
/// first-visited node is loaded into a membership structure once, and each
/// remote element is tested with an O(1) probe. Build cost is
/// sum_i X_i = sum_i Y_i = m per run; probe counts are the remote classes:
///
///         L1   L2   L3   L4   L5   L6
///   cost  T2   T1   T2   T3   T3   T1
///
/// Implementation note: because labels are dense integers in [0, n), the
/// membership structure is an epoch-stamped marker array rather than a
/// general hash table — same O(1) probes without rehashing. The family is
/// cost- and speed-equivalent to vertex iterators (Section 2.3), which is
/// why the paper folds LEI into VI after this point; we implement it fully
/// so that equivalence is *tested* rather than assumed.
///
/// The optional `hook` attributes each probe to the node Table 2's lookup
/// class charges: the node whose list is being scanned remotely. Build
/// (hash-insert) operations are excluded, exactly as Table 2 excludes the
/// m-insert term from the lookup class. nullptr — the default — selects
/// a hook-free instantiation with zero overhead.

namespace trilist {

/// L1: hash N+(z); for y in N+(z), probe every w in N+(y).
OpCounts RunL1(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
/// L2: hash N+(y); for z in N-(y), probe elements of N+(z) below y.
OpCounts RunL2(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
/// L3: hash N-(x); for y in N-(x), probe every w in N-(y).
OpCounts RunL3(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
/// L4: hash N+(z); for x in N+(z), probe elements of N-(x) below z.
OpCounts RunL4(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
/// L5: hash N-(y); for x in N+(y), probe elements of N-(x) above y.
OpCounts RunL5(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);
/// L6: hash N-(x); for z in N-(x), probe elements of N+(z) above x.
OpCounts RunL6(const OrientedGraph& g, TriangleSink* sink,
               NodeOpsHook* hook = nullptr);

}  // namespace trilist
