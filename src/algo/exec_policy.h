#pragma once

/// \file exec_policy.h
/// Execution policy for listing runs: how many threads to use and how
/// finely to over-decompose the work. Lives in its own header so the
/// registry can accept a policy without depending on the engine.

namespace trilist {

/// \brief Concurrency knobs for RunMethod / RunMethodParallel.
///
/// The default policy (threads = 1) is exactly the serial engine: same
/// code path, same counters, same emission order, so existing callers and
/// all paper tables are unaffected.
struct ExecPolicy {
  /// Total worker threads (the calling thread included). Values <= 1 run
  /// serial; 0 is treated as 1, not as "auto" — ask HardwareThreads()
  /// explicitly when you want the machine width.
  int threads = 1;

  /// Work-chunk over-decomposition factor: the planner cuts the iteration
  /// space into `threads * chunks_per_thread` equal-cost chunks so a
  /// straggler chunk cannot idle the rest of the pool. Clamped to >= 1.
  int chunks_per_thread = 8;
};

}  // namespace trilist
