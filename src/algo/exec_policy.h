#pragma once

#include <memory>

/// \file exec_policy.h
/// Execution policy for listing runs: how many threads to use, how finely
/// to over-decompose the work, and which intersection backend the
/// scanning edge iterators run on. Lives in its own header so the
/// registry can accept a policy without depending on the engine.

namespace trilist {

namespace simd {
class BitmapIndex;
}  // namespace simd

/// \brief Sorted-span intersection backend of the SEI kernels (E1..E6,
/// serial and parallel). Every backend emits the same triangles in the
/// same order; kMerge, kSimd and kBitmap additionally report bit-identical
/// merge_comparisons (the SIMD and bitmap kernels account the
/// scalar-equivalent count), while kGallop and kAuto report the probe
/// counts their own algorithms actually execute.
enum class IntersectBackend {
  kMerge = 0,  ///< scalar two-pointer merge (the reference; the default).
  kGallop,     ///< galloping search, best under extreme length asymmetry.
  kAuto,       ///< ratio-adaptive merge/gallop pick.
  kSimd,       ///< vectorized block merge (AVX2/AVX-512, CPUID-dispatched).
  kBitmap,     ///< degree-partitioned: hub bitmaps word-AND / bit-probe,
               ///< low-degree rows on the vectorized merge.
};

/// Name of a backend ("merge", "gallop", "auto", "simd", "bitmap").
const char* IntersectBackendName(IntersectBackend backend);

/// Parses a backend name; returns false (leaving *out untouched) on an
/// unknown name.
bool ParseIntersectBackend(const char* name, IntersectBackend* out);

/// \brief Concurrency + kernel knobs for RunMethod / RunMethodParallel.
///
/// The default policy (threads = 1, intersect = kMerge) is exactly the
/// serial reference engine: same code path, same counters, same emission
/// order, so existing callers and all paper tables are unaffected.
struct ExecPolicy {
  /// Total worker threads (the calling thread included). Values <= 1 run
  /// serial; 0 is treated as 1, not as "auto" — ask HardwareThreads()
  /// explicitly when you want the machine width.
  int threads = 1;

  /// Work-chunk over-decomposition factor: the planner cuts the iteration
  /// space into `threads * chunks_per_thread` equal-cost chunks so a
  /// straggler chunk cannot idle the rest of the pool. Clamped to >= 1.
  int chunks_per_thread = 8;

  /// Intersection backend of the scanning edge iterators.
  IntersectBackend intersect = IntersectBackend::kMerge;

  /// kBitmap only: degree threshold above which a row gets a packed
  /// bitmap; <= 0 picks the auto threshold max(64, n/64) (see
  /// simd::BitmapIndex::Options).
  int bitmap_min_degree = 0;

  /// kBitmap only: a prebuilt index to reuse across methods and repeats
  /// (the Runner builds one per oriented graph under the "bitmap" stage).
  /// Null = the dispatch layer builds a transient index per run.
  std::shared_ptr<const simd::BitmapIndex> bitmap_index;
};

}  // namespace trilist
