#include "src/algo/intersect.h"

#include <algorithm>

#include "src/algo/simd/intersect_simd.h"

namespace trilist {

namespace intersect_internal {

int64_t GallopLowerBound(std::span<const NodeId> list, size_t lo, NodeId key,
                         size_t* found) {
  int64_t comparisons = 0;
  size_t step = 1;
  size_t hi = lo;
  while (hi < list.size() && list[hi] < key) {
    ++comparisons;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, list.size());
  // Binary search in (lo-1, hi].
  while (lo < hi) {
    ++comparisons;
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *found = lo;
  return comparisons;
}

}  // namespace intersect_internal

namespace {

/// Adapts a nullable C callback to the templated kernels' emit concept.
struct CallbackEmit {
  void (*emit)(NodeId, void*);
  void* ctx;
  void operator()(NodeId x) const {
    if (emit != nullptr) emit(x, ctx);
  }
};

}  // namespace

int64_t IntersectMerge(std::span<const NodeId> a, std::span<const NodeId> b,
                       void (*emit)(NodeId, void*), void* ctx) {
  return IntersectMergeT(a, b, CallbackEmit{emit, ctx});
}

int64_t IntersectGallop(std::span<const NodeId> a,
                        std::span<const NodeId> b,
                        void (*emit)(NodeId, void*), void* ctx) {
  return IntersectGallopT(a, b, CallbackEmit{emit, ctx});
}

int64_t IntersectAuto(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx) {
  return IntersectAutoT(a, b, CallbackEmit{emit, ctx});
}

int64_t IntersectSimd(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx) {
  return simd::IntersectSimdT(a, b, CallbackEmit{emit, ctx});
}

namespace {

template <typename Kernel>
int64_t CountWith(Kernel kernel, std::span<const NodeId> a,
                  std::span<const NodeId> b) {
  int64_t matches = 0;
  kernel(a, b, [&matches](NodeId) { ++matches; });
  return matches;
}

}  // namespace

int64_t CountIntersectMerge(std::span<const NodeId> a,
                            std::span<const NodeId> b) {
  return CountWith(
      [](auto x, auto y, auto&& e) { return IntersectMergeT(x, y, e); }, a,
      b);
}

int64_t CountIntersectGallop(std::span<const NodeId> a,
                             std::span<const NodeId> b) {
  return CountWith(
      [](auto x, auto y, auto&& e) { return IntersectGallopT(x, y, e); }, a,
      b);
}

int64_t CountIntersectAuto(std::span<const NodeId> a,
                           std::span<const NodeId> b) {
  return CountWith(
      [](auto x, auto y, auto&& e) { return IntersectAutoT(x, y, e); }, a,
      b);
}

int64_t CountIntersectSimd(std::span<const NodeId> a,
                           std::span<const NodeId> b) {
  return CountWith(
      [](auto x, auto y, auto&& e) { return simd::IntersectSimdT(x, y, e); },
      a, b);
}

}  // namespace trilist
