#include "src/algo/intersect.h"

#include <algorithm>

namespace trilist {

int64_t IntersectMerge(std::span<const NodeId> a, std::span<const NodeId> b,
                       void (*emit)(NodeId, void*), void* ctx) {
  int64_t comparisons = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      if (emit != nullptr) emit(a[i], ctx);
      ++i;
      ++j;
    }
  }
  return comparisons;
}

namespace {

/// Gallops for `key` in list[lo..): returns the first index with
/// list[idx] >= key; adds probe count to *comparisons.
size_t GallopLowerBound(std::span<const NodeId> list, size_t lo, NodeId key,
                        int64_t* comparisons) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < list.size() && list[hi] < key) {
    ++*comparisons;
    lo = hi + 1;
    hi += step;
    step *= 2;
  }
  hi = std::min(hi, list.size());
  // Binary search in (lo-1, hi].
  while (lo < hi) {
    ++*comparisons;
    const size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int64_t IntersectGallop(std::span<const NodeId> a,
                        std::span<const NodeId> b,
                        void (*emit)(NodeId, void*), void* ctx) {
  // Keep `a` as the shorter list.
  if (a.size() > b.size()) std::swap(a, b);
  int64_t comparisons = 0;
  size_t cursor = 0;
  for (const NodeId key : a) {
    cursor = GallopLowerBound(b, cursor, key, &comparisons);
    if (cursor >= b.size()) break;
    ++comparisons;
    if (b[cursor] == key) {
      if (emit != nullptr) emit(key, ctx);
      ++cursor;
    }
  }
  return comparisons;
}

int64_t IntersectAuto(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx) {
  // Empty input: nothing to intersect, zero comparisons, and no kernel
  // dispatch (the ratio below would divide by zero).
  if (a.empty() || b.empty()) return 0;
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  // Gallop strictly above the 32x ratio. Compare multiplicatively:
  // `large / small > 32` truncates, wrongly sending e.g. 65-vs-2 (32.5x)
  // to the merge kernel.
  if (large > 32 * small) return IntersectGallop(a, b, emit, ctx);
  return IntersectMerge(a, b, emit, ctx);
}

namespace {
void CountEmit(NodeId, void* ctx) {
  ++*static_cast<int64_t*>(ctx);
}

template <int64_t (*Kernel)(std::span<const NodeId>, std::span<const NodeId>,
                            void (*)(NodeId, void*), void*)>
int64_t CountWith(std::span<const NodeId> a, std::span<const NodeId> b) {
  int64_t matches = 0;
  Kernel(a, b, &CountEmit, &matches);
  return matches;
}
}  // namespace

int64_t CountIntersectMerge(std::span<const NodeId> a,
                            std::span<const NodeId> b) {
  return CountWith<IntersectMerge>(a, b);
}

int64_t CountIntersectGallop(std::span<const NodeId> a,
                             std::span<const NodeId> b) {
  return CountWith<IntersectGallop>(a, b);
}

int64_t CountIntersectAuto(std::span<const NodeId> a,
                           std::span<const NodeId> b) {
  return CountWith<IntersectAuto>(a, b);
}

}  // namespace trilist
