#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "src/graph/graph.h"

/// \file intersect.h
/// Sorted-set intersection kernels — the elementary operation of scanning
/// edge iterators, and the axis along which SEI beats hash-based families
/// on modern hardware (Table 3). Four strategies with different
/// asymmetry sweet spots:
///
///  * Merge: classic two-pointer scan, O(|A| + |B|); best when the lists
///    have comparable lengths (the paper's best case for intersection).
///  * Gallop: binary-search-assisted, O(|A| log(|B|/|A|)); best when one
///    list is much shorter (hub vs leaf adjacency).
///  * Auto: picks between the two from the length ratio.
///  * Simd: block merge vectorized with AVX2/AVX-512 when the CPU has
///    them (see src/algo/simd/intersect_simd.h), dispatching at runtime;
///    emits the same elements in the same order as Merge and reports the
///    scalar-equivalent comparison count, so it is a drop-in for cost
///    experiments.
///
/// The primary kernels are templates taking any callable `emit(NodeId)`,
/// so call sites inline the emission (devirtualized hot path). The
/// function-pointer overloads below are thin shims kept for C-style
/// callers and ABI stability; the Count* wrappers are one-liners over the
/// templates. All kernels return the number of elementary comparisons
/// performed.

namespace trilist {

/// Two-pointer merge intersection of sorted ranges.
/// \return comparisons performed (one per loop iteration).
template <typename Emit>
int64_t IntersectMergeT(std::span<const NodeId> a, std::span<const NodeId> b,
                        Emit&& emit) {
  int64_t comparisons = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
  return comparisons;
}

namespace intersect_internal {

/// Gallops for `key` in list[lo..): returns the first index with
/// list[idx] >= key; adds probe count to *comparisons.
int64_t GallopLowerBound(std::span<const NodeId> list, size_t lo, NodeId key,
                         size_t* found);

}  // namespace intersect_internal

/// Galloping intersection: for each element of the shorter list, gallop
/// (doubling probe + binary search) in the longer one.
template <typename Emit>
int64_t IntersectGallopT(std::span<const NodeId> a,
                         std::span<const NodeId> b, Emit&& emit) {
  // Keep `a` as the shorter list.
  if (a.size() > b.size()) std::swap(a, b);
  int64_t comparisons = 0;
  size_t cursor = 0;
  for (const NodeId key : a) {
    comparisons +=
        intersect_internal::GallopLowerBound(b, cursor, key, &cursor);
    if (cursor >= b.size()) break;
    ++comparisons;
    if (b[cursor] == key) {
      emit(key);
      ++cursor;
    }
  }
  return comparisons;
}

/// Ratio-adaptive dispatch: gallop when one side is > 32x longer.
template <typename Emit>
int64_t IntersectAutoT(std::span<const NodeId> a, std::span<const NodeId> b,
                       Emit&& emit) {
  // Empty input: nothing to intersect, zero comparisons, and no kernel
  // dispatch (the ratio below would divide by zero).
  if (a.empty() || b.empty()) return 0;
  const size_t small = a.size() < b.size() ? a.size() : b.size();
  const size_t large = a.size() < b.size() ? b.size() : a.size();
  // Gallop strictly above the 32x ratio. Compare multiplicatively:
  // `large / small > 32` truncates, wrongly sending e.g. 65-vs-2 (32.5x)
  // to the merge kernel.
  if (large > 32 * small) {
    return IntersectGallopT(a, b, static_cast<Emit&&>(emit));
  }
  return IntersectMergeT(a, b, static_cast<Emit&&>(emit));
}

/// C-style shims over the templated kernels (emit may be null to discard
/// matches). Kept so existing function-pointer callers keep compiling;
/// new code should use the templates directly.
int64_t IntersectMerge(std::span<const NodeId> a, std::span<const NodeId> b,
                       void (*emit)(NodeId, void*), void* ctx);
int64_t IntersectGallop(std::span<const NodeId> a,
                        std::span<const NodeId> b,
                        void (*emit)(NodeId, void*), void* ctx);
int64_t IntersectAuto(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx);

/// SIMD block-merge intersection (runtime-dispatched to the widest ISA
/// the CPU offers; scalar on other architectures or under
/// TRILIST_FORCE_SCALAR=1). Requires no preprocessing; safe on any
/// sorted input — inputs with duplicates fall back to the scalar merge so
/// multiplicity semantics match IntersectMerge exactly. Emits ascending,
/// identical to IntersectMerge, and returns the scalar-equivalent
/// comparison count.
int64_t IntersectSimd(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx);

/// Convenience wrappers that count matches instead of emitting them.
int64_t CountIntersectMerge(std::span<const NodeId> a,
                            std::span<const NodeId> b);
int64_t CountIntersectGallop(std::span<const NodeId> a,
                             std::span<const NodeId> b);
int64_t CountIntersectAuto(std::span<const NodeId> a,
                           std::span<const NodeId> b);
int64_t CountIntersectSimd(std::span<const NodeId> a,
                           std::span<const NodeId> b);

}  // namespace trilist
