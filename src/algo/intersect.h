#pragma once

#include <cstdint>
#include <span>

#include "src/graph/graph.h"

/// \file intersect.h
/// Sorted-set intersection kernels — the elementary operation of scanning
/// edge iterators, and the axis along which SEI beats hash-based families
/// on modern hardware (Table 3). Three strategies with different
/// asymmetry sweet spots:
///
///  * Merge: classic two-pointer scan, O(|A| + |B|); best when the lists
///    have comparable lengths (the paper's best case for intersection).
///  * Gallop: binary-search-assisted, O(|A| log(|B|/|A|)); best when one
///    list is much shorter (hub vs leaf adjacency).
///  * Auto: picks between the two from the length ratio.
///
/// All kernels emit the common elements through a callback and return the
/// number of elementary comparisons performed, so they can be swapped
/// into cost experiments.

namespace trilist {

/// Two-pointer merge intersection.
/// \return comparisons performed.
int64_t IntersectMerge(std::span<const NodeId> a, std::span<const NodeId> b,
                       void (*emit)(NodeId, void*), void* ctx);

/// Galloping intersection: for each element of the shorter list, gallop
/// (doubling probe + binary search) in the longer one.
int64_t IntersectGallop(std::span<const NodeId> a,
                        std::span<const NodeId> b,
                        void (*emit)(NodeId, void*), void* ctx);

/// Ratio-adaptive dispatch: gallop when one side is > 32x longer.
int64_t IntersectAuto(std::span<const NodeId> a, std::span<const NodeId> b,
                      void (*emit)(NodeId, void*), void* ctx);

/// Convenience wrappers that count matches instead of emitting them.
int64_t CountIntersectMerge(std::span<const NodeId> a,
                            std::span<const NodeId> b);
int64_t CountIntersectGallop(std::span<const NodeId> a,
                             std::span<const NodeId> b);
int64_t CountIntersectAuto(std::span<const NodeId> a,
                           std::span<const NodeId> b);

}  // namespace trilist
