#include "src/algo/cost.h"

#include "src/util/status.h"

namespace trilist {

const std::vector<Method>& AllMethods() {
  static const std::vector<Method> kAll = {
      Method::kT1, Method::kT2, Method::kT3, Method::kT4, Method::kT5,
      Method::kT6, Method::kE1, Method::kE2, Method::kE3, Method::kE4,
      Method::kE5, Method::kE6, Method::kL1, Method::kL2, Method::kL3,
      Method::kL4, Method::kL5, Method::kL6,
  };
  return kAll;
}

const std::vector<Method>& FundamentalMethods() {
  static const std::vector<Method> kFundamental = {
      Method::kT1, Method::kT2, Method::kE1, Method::kE4};
  return kFundamental;
}

const char* MethodName(Method m) {
  switch (m) {
    case Method::kT1: return "T1";
    case Method::kT2: return "T2";
    case Method::kT3: return "T3";
    case Method::kT4: return "T4";
    case Method::kT5: return "T5";
    case Method::kT6: return "T6";
    case Method::kE1: return "E1";
    case Method::kE2: return "E2";
    case Method::kE3: return "E3";
    case Method::kE4: return "E4";
    case Method::kE5: return "E5";
    case Method::kE6: return "E6";
    case Method::kL1: return "L1";
    case Method::kL2: return "L2";
    case Method::kL3: return "L3";
    case Method::kL4: return "L4";
    case Method::kL5: return "L5";
    case Method::kL6: return "L6";
  }
  return "?";
}

Family MethodFamily(Method m) {
  switch (m) {
    case Method::kT1: case Method::kT2: case Method::kT3:
    case Method::kT4: case Method::kT5: case Method::kT6:
      return Family::kVertexIterator;
    case Method::kE1: case Method::kE2: case Method::kE3:
    case Method::kE4: case Method::kE5: case Method::kE6:
      return Family::kScanningEdgeIterator;
    default:
      return Family::kLookupEdgeIterator;
  }
}

CostClass LocalCostClass(Method m) {
  switch (m) {
    // Vertex iterators: the candidate-tuple class (T4-T6 mirror T1-T3).
    case Method::kT1: case Method::kT4: return CostClass::kT1;
    case Method::kT2: case Method::kT5: return CostClass::kT2;
    case Method::kT3: case Method::kT6: return CostClass::kT3;
    // SEI local classes, Table 1 row 1.
    case Method::kE1: return CostClass::kT1;
    case Method::kE2: return CostClass::kT2;
    case Method::kE3: return CostClass::kT3;
    case Method::kE4: return CostClass::kT1;
    case Method::kE5: return CostClass::kT2;
    case Method::kE6: return CostClass::kT3;
    // LEI lookup classes, Table 2.
    case Method::kL1: return CostClass::kT2;
    case Method::kL2: return CostClass::kT1;
    case Method::kL3: return CostClass::kT2;
    case Method::kL4: return CostClass::kT3;
    case Method::kL5: return CostClass::kT3;
    case Method::kL6: return CostClass::kT1;
  }
  return CostClass::kT1;
}

CostClass RemoteCostClass(Method m) {
  switch (m) {
    // SEI remote classes, Table 1 row 2.
    case Method::kE1: return CostClass::kT2;
    case Method::kE2: return CostClass::kT1;
    case Method::kE3: return CostClass::kT2;
    case Method::kE4: return CostClass::kT3;
    case Method::kE5: return CostClass::kT3;
    case Method::kE6: return CostClass::kT1;
    default:
      return LocalCostClass(m);
  }
}

bool NeedsRemoteBinarySearch(Method m) {
  return m == Method::kE5 || m == Method::kE6 || m == Method::kL5 ||
         m == Method::kL6;
}

double CostClassTotal(const std::vector<int64_t>& x,
                      const std::vector<int64_t>& y, CostClass c) {
  TRILIST_DCHECK(x.size() == y.size());
  double total = 0.0;
  switch (c) {
    case CostClass::kT1:
      for (int64_t xi : x) {
        total += 0.5 * static_cast<double>(xi) * static_cast<double>(xi - 1);
      }
      break;
    case CostClass::kT2:
      for (size_t i = 0; i < x.size(); ++i) {
        total += static_cast<double>(x[i]) * static_cast<double>(y[i]);
      }
      break;
    case CostClass::kT3:
      for (int64_t yi : y) {
        total += 0.5 * static_cast<double>(yi) * static_cast<double>(yi - 1);
      }
      break;
  }
  return total;
}

double MethodCostTotal(const std::vector<int64_t>& x,
                       const std::vector<int64_t>& y, Method m) {
  const double local = CostClassTotal(x, y, LocalCostClass(m));
  if (MethodFamily(m) != Family::kScanningEdgeIterator) return local;
  return local + CostClassTotal(x, y, RemoteCostClass(m));
}

double MethodCostTotal(const OrientedGraph& g, Method m) {
  return MethodCostTotal(g.OutDegrees(), g.InDegrees(), m);
}

double MethodCostPerNode(const OrientedGraph& g, Method m) {
  if (g.num_nodes() == 0) return 0.0;
  return MethodCostTotal(g, m) / static_cast<double>(g.num_nodes());
}

}  // namespace trilist
