#pragma once

#include <array>
#include <vector>

#include "src/graph/graph.h"

/// \file brute_force.h
/// Reference triangle enumerators over the *undirected* graph, used as
/// ground truth by the test suite. Triangles are reported in original node
/// IDs, each exactly once, canonically sorted.

namespace trilist {

/// A triangle in original-ID space, entries ascending.
using CanonicalTriangle = std::array<NodeId, 3>;

/// O(n^3) triple-loop enumeration (tiny graphs only).
std::vector<CanonicalTriangle> BruteForceTriangles(const Graph& g);

/// O(sum d^2 log d) neighbor-pair enumeration with binary-search edge
/// checks; suitable for medium graphs as an independent cross-check.
std::vector<CanonicalTriangle> NeighborPairTriangles(const Graph& g);

/// Exact triangle count via NeighborPairTriangles-style counting without
/// materializing the list.
uint64_t CountTrianglesReference(const Graph& g);

/// Third independent oracle: dense adjacency-bitset counting,
/// #triangles = sum over edges (u,v) of |N(u) & N(v)| / 3 computed with
/// 64-bit word popcounts. O(n m / 64); intended for n up to a few
/// thousand in differential tests.
uint64_t CountTrianglesBitset(const Graph& g);

}  // namespace trilist
