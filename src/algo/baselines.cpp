#include "src/algo/baselines.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "src/algo/edge_iterator.h"
#include "src/order/pipeline.h"

namespace trilist {

OpCounts RunClassicVertexIterator(const Graph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t vi = 0; vi < n; ++vi) {
    const auto v = static_cast<NodeId>(vi);
    const auto nb = g.Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        ++ops.candidate_checks;
        if (g.HasEdge(nb[i], nb[j])) {
          // Every corner checks this pair; emit only at the smallest.
          if (v < nb[i]) {
            ++ops.triangles;
            sink->Consume(v, nb[i], nb[j]);
          }
        }
      }
    }
  }
  return ops;
}

OpCounts RunT1NoRelabel(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                        TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    // Without relabeling the list order is meaningless, so all ordered
    // pairs are generated: X(X-1) checks instead of C(X, 2).
    for (size_t a = 0; a < out.size(); ++a) {
      for (size_t b = 0; b < out.size(); ++b) {
        if (a == b) continue;
        ++ops.candidate_checks;
        // Candidate arc out[b] -> out[a]; succeeds only in one order.
        if (arcs.Contains(out[b], out[a])) {
          ++ops.triangles;
          sink->Consume(out[a], out[b], z);
        }
      }
    }
  }
  return ops;
}

OpCounts RunE1NoRelabel(const OrientedGraph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  for (size_t zi = 0; zi < n; ++zi) {
    const auto z = static_cast<NodeId>(zi);
    const auto out = g.OutNeighbors(z);
    for (const NodeId y : out) {
      // The local scan cannot stop at y: traverse all of N+(z).
      const auto remote = g.OutNeighbors(y);
      ops.local_scans += static_cast<int64_t>(out.size());
      ops.remote_scans += static_cast<int64_t>(remote.size());
      size_t i = 0;
      size_t j = 0;
      while (i < out.size() && j < remote.size()) {
        ++ops.merge_comparisons;
        if (out[i] < remote[j]) {
          ++i;
        } else if (out[i] > remote[j]) {
          ++j;
        } else {
          ++ops.triangles;
          sink->Consume(out[i], y, z);
          ++i;
          ++j;
        }
      }
    }
  }
  return ops;
}

namespace {

/// Descending-degree ranks with ties by node ID: rank 0 = largest degree.
std::vector<NodeId> DescendingDegreeRanks(const Graph& g) {
  const size_t n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const int64_t da = g.Degree(a);
    const int64_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  std::vector<NodeId> rank(n);
  for (size_t pos = 0; pos < n; ++pos) {
    rank[order[pos]] = static_cast<NodeId>(pos);
  }
  return rank;
}

void EmitSortedOriginal(TriangleSink* sink, NodeId a, NodeId b, NodeId c) {
  NodeId t[3] = {a, b, c};
  std::sort(t, t + 3);
  sink->Consume(t[0], t[1], t[2]);
}

}  // namespace

OpCounts RunForward(const Graph& g, TriangleSink* sink) {
  OpCounts ops;
  const size_t n = g.num_nodes();
  const std::vector<NodeId> rank = DescendingDegreeRanks(g);
  std::vector<NodeId> node_at(n);
  for (size_t v = 0; v < n; ++v) node_at[rank[v]] = static_cast<NodeId>(v);

  // A[v]: ranks of already-processed neighbors of v, ascending by
  // construction (we process in rank order).
  std::vector<std::vector<NodeId>> a(n);
  for (size_t s = 0; s < n; ++s) {
    const NodeId u = node_at[s];
    for (const NodeId v : g.Neighbors(u)) {
      if (rank[v] <= s) continue;  // only higher-rank endpoints
      // Intersect A(u) and A(v) (both sorted ascending ranks).
      const auto& au = a[u];
      const auto& av = a[v];
      ops.local_scans += static_cast<int64_t>(au.size());
      ops.remote_scans += static_cast<int64_t>(av.size());
      size_t i = 0;
      size_t j = 0;
      while (i < au.size() && j < av.size()) {
        ++ops.merge_comparisons;
        if (au[i] < av[j]) {
          ++i;
        } else if (au[i] > av[j]) {
          ++j;
        } else {
          ++ops.triangles;
          EmitSortedOriginal(sink, node_at[au[i]], u, v);
          ++i;
          ++j;
        }
      }
      a[v].push_back(static_cast<NodeId>(s));
    }
  }
  return ops;
}

OpCounts RunCompactForward(const Graph& g, TriangleSink* sink) {
  // Compact Forward is E2 over the fully preprocessed (relabeled +
  // oriented) graph under the descending-degree order; we reuse the E2
  // engine and translate labels back to original IDs.
  const OrientedGraph og = OrientNamed(g, PermutationKind::kDescending);
  CallbackSink translate([&](NodeId x, NodeId y, NodeId z) {
    EmitSortedOriginal(sink, og.OriginalOf(x), og.OriginalOf(y),
                       og.OriginalOf(z));
  });
  return RunE2(og, &translate);
}

}  // namespace trilist
