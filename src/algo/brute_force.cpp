#include "src/algo/brute_force.h"

#include <algorithm>

namespace trilist {

std::vector<CanonicalTriangle> BruteForceTriangles(const Graph& g) {
  std::vector<CanonicalTriangle> out;
  const size_t n = g.num_nodes();
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      if (!g.HasEdge(static_cast<NodeId>(a), static_cast<NodeId>(b))) {
        continue;
      }
      for (size_t c = b + 1; c < n; ++c) {
        if (g.HasEdge(static_cast<NodeId>(b), static_cast<NodeId>(c)) &&
            g.HasEdge(static_cast<NodeId>(a), static_cast<NodeId>(c))) {
          out.push_back({static_cast<NodeId>(a), static_cast<NodeId>(b),
                         static_cast<NodeId>(c)});
        }
      }
    }
  }
  return out;
}

std::vector<CanonicalTriangle> NeighborPairTriangles(const Graph& g) {
  std::vector<CanonicalTriangle> out;
  const size_t n = g.num_nodes();
  for (size_t a = 0; a < n; ++a) {
    const auto na = g.Neighbors(static_cast<NodeId>(a));
    // b, c both > a keeps each triangle counted at its smallest node.
    for (size_t i = 0; i < na.size(); ++i) {
      const NodeId b = na[i];
      if (b <= a) continue;
      for (size_t j = i + 1; j < na.size(); ++j) {
        const NodeId c = na[j];
        if (g.HasEdge(b, c)) {
          out.push_back({static_cast<NodeId>(a), b, c});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t CountTrianglesBitset(const Graph& g) {
  const size_t n = g.num_nodes();
  const size_t words = (n + 63) / 64;
  std::vector<uint64_t> rows(n * words, 0);
  for (size_t u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(static_cast<NodeId>(u))) {
      rows[u * words + v / 64] |= uint64_t{1} << (v % 64);
    }
  }
  uint64_t paths = 0;  // each triangle counted once per edge = 3 times
  for (size_t u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(static_cast<NodeId>(u))) {
      if (v <= u) continue;
      const uint64_t* a = &rows[u * words];
      const uint64_t* b = &rows[static_cast<size_t>(v) * words];
      for (size_t w = 0; w < words; ++w) {
        paths += static_cast<uint64_t>(__builtin_popcountll(a[w] & b[w]));
      }
    }
  }
  return paths / 3;
}

uint64_t CountTrianglesReference(const Graph& g) {
  uint64_t count = 0;
  const size_t n = g.num_nodes();
  for (size_t a = 0; a < n; ++a) {
    const auto na = g.Neighbors(static_cast<NodeId>(a));
    for (size_t i = 0; i < na.size(); ++i) {
      const NodeId b = na[i];
      if (b <= a) continue;
      for (size_t j = i + 1; j < na.size(); ++j) {
        if (g.HasEdge(b, na[j])) ++count;
      }
    }
  }
  return count;
}

}  // namespace trilist
