#include "src/algo/wedge_sampling.h"

#include <cmath>
#include <vector>

#include "src/util/status.h"

namespace trilist {

WedgeSampleEstimate EstimateTrianglesByWedgeSampling(const Graph& g,
                                                     uint64_t samples,
                                                     Rng* rng) {
  TRILIST_DCHECK(rng != nullptr);
  WedgeSampleEstimate est;
  const size_t n = g.num_nodes();
  // Cumulative wedge counts per center for weighted center selection.
  std::vector<double> cum(n + 1, 0.0);
  for (size_t v = 0; v < n; ++v) {
    const auto d = static_cast<double>(g.Degree(static_cast<NodeId>(v)));
    cum[v + 1] = cum[v] + d * (d - 1.0) / 2.0;
  }
  est.wedges = cum[n];
  if (est.wedges <= 0.0 || samples == 0) return est;

  for (uint64_t s = 0; s < samples; ++s) {
    // Pick a center proportional to its wedge count.
    const double target = rng->NextDouble() * est.wedges;
    size_t lo = 0;
    size_t hi = n;
    while (lo + 1 < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cum[mid] <= target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const auto center = static_cast<NodeId>(lo);
    const auto nb = g.Neighbors(center);
    // Uniform unordered pair of distinct neighbors.
    const uint64_t d = nb.size();
    const uint64_t i = rng->NextBounded(d);
    uint64_t j = rng->NextBounded(d - 1);
    if (j >= i) ++j;
    ++est.samples;
    if (g.HasEdge(nb[i], nb[j])) ++est.closed;
  }
  est.transitivity =
      static_cast<double>(est.closed) / static_cast<double>(est.samples);
  est.triangles = est.transitivity * est.wedges / 3.0;
  // Normal-approximation (Wald) 99% band for a binomial proportion:
  // 2.576 * sqrt(k(1-k)/s). Far tighter than Hoeffding when the closure
  // probability is small, which it is for sparse graphs.
  est.confidence99 = 2.576 * std::sqrt(est.transitivity *
                                       (1.0 - est.transitivity) /
                                       static_cast<double>(est.samples));
  return est;
}

}  // namespace trilist
