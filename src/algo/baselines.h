#pragma once

#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/graph/graph.h"
#include "src/graph/oriented_graph.h"

/// \file baselines.h
/// Prior-work baselines and the degraded preprocessing variants discussed
/// in Section 2.4. These quantify what the three-step framework buys:
///
///  * the classic (orientation-free) vertex iterator pays
///    sum_i C(d_i, 2) candidate checks — 3x the uniform-permutation cost
///    and vastly more than theta_D;
///  * orientation *without relabeling* leaves out-lists unordered relative
///    to each other, doubling every T1/T3-class term (candidates become
///    ordered pairs instead of unordered);
///  * Forward [Schank-Wagner] and Compact Forward [Latapy] are the
///    literature's E2/E1 analogues and serve as independent
///    implementations for cross-validation.

namespace trilist {

/// Classic vertex iterator on the undirected graph: for every node, check
/// every unordered neighbor pair. Emits each triangle once (at its
/// smallest vertex) but pays candidate checks at every corner:
/// candidate_checks == sum_i C(d_i, 2).
OpCounts RunClassicVertexIterator(const Graph& g, TriangleSink* sink);

/// T1 with orientation but *no relabeling* (Section 2.4): neighbor lists
/// carry no usable mutual order, so all ordered out-pairs are generated;
/// candidate_checks == sum_i X_i(X_i - 1), exactly twice T1.
OpCounts RunT1NoRelabel(const OrientedGraph& g, const DirectedEdgeSet& arcs,
                        TriangleSink* sink);

/// E1 with orientation but no relabeling: the local scan cannot stop at y
/// and traverses all of N+(z); local_scans doubles to sum_i X_i(X_i - 1)
/// while remote_scans stays sum_i X_i Y_i.
OpCounts RunE1NoRelabel(const OrientedGraph& g, TriangleSink* sink);

/// Forward algorithm (Schank & Wagner 2005): descending-degree order with
/// dynamically growing adjacency prefixes; an E2-pattern equivalent.
/// Emits triangles in label space of the induced descending order.
OpCounts RunForward(const Graph& g, TriangleSink* sink);

/// Compact Forward (Latapy 2008): the array-based refinement of Forward;
/// an E1/E2-pattern equivalent on fully preprocessed lists.
OpCounts RunCompactForward(const Graph& g, TriangleSink* sink);

}  // namespace trilist
