#pragma once

#include <cstdint>
#include <vector>

#include "src/algo/cost.h"
#include "src/graph/graph.h"
#include "src/graph/oriented_graph.h"
#include "src/order/named_orders.h"
#include "src/util/rng.h"

/// \file local_counts.h
/// Per-vertex triangle statistics built on the listing framework — the
/// application layer most graph-mining uses of triangle listing need
/// (local clustering, transitivity, triangle-degree distributions).
///
/// Each listed triangle (x, y, z) contributes one count to each of its
/// corners; counts are reported in *original* node IDs regardless of the
/// orientation used for listing.

namespace trilist {

/// Per-vertex triangle participation counts.
/// \param g undirected input graph.
/// \param m listing method to use (any of the 18).
/// \param kind relabeling order (affects cost only, not the result).
/// \param rng randomness for kUniform (may be null otherwise).
std::vector<uint64_t> TrianglesPerVertex(
    const Graph& g, Method m = Method::kE1,
    PermutationKind kind = PermutationKind::kDescending,
    Rng* rng = nullptr);

/// Local clustering coefficient c(v) = T(v) / C(d(v), 2); 0 for degree
/// < 2 vertices.
std::vector<double> LocalClusteringCoefficients(
    const Graph& g, Method m = Method::kE1,
    PermutationKind kind = PermutationKind::kDescending,
    Rng* rng = nullptr);

/// Summary statistics of a graph's triangle structure.
struct TriangleStats {
  uint64_t triangles = 0;       ///< total triangle count T
  double wedges = 0.0;          ///< paths of length two W
  double transitivity = 0.0;    ///< global coefficient 3T / W
  double mean_local = 0.0;      ///< average local clustering (Watts-Strogatz)
  uint64_t max_per_vertex = 0;  ///< largest per-vertex count
};

/// Computes TriangleStats in one pass.
TriangleStats ComputeTriangleStats(
    const Graph& g, Method m = Method::kE1,
    PermutationKind kind = PermutationKind::kDescending,
    Rng* rng = nullptr);

}  // namespace trilist
