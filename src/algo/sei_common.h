#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "src/graph/graph.h"

/// \file sei_common.h
/// Shared primitives of the scanning edge iterators (E1..E6), used by both
/// the serial kernels (edge_iterator.cpp) and the parallel slice runners
/// (parallel_engine.cpp). Keeping one implementation is what makes the
/// parallel engine's merge_comparisons counters bit-identical to serial
/// runs: both paths execute exactly the same loop.

namespace trilist {
namespace sei {

/// Two-pointer intersection of sorted ranges; emits each common element
/// and counts actual loop steps in *comparisons.
template <typename Emit>
void MergeIntersect(std::span<const NodeId> a, std::span<const NodeId> b,
                    int64_t* comparisons, Emit&& emit) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++*comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
}

/// Elements of `list` strictly below `bound` (a sorted prefix).
inline std::span<const NodeId> PrefixBelow(std::span<const NodeId> list,
                                           NodeId bound) {
  const auto it = std::lower_bound(list.begin(), list.end(), bound);
  return list.first(static_cast<size_t>(it - list.begin()));
}

/// Elements of `list` strictly above `bound` (a sorted suffix).
inline std::span<const NodeId> SuffixAbove(std::span<const NodeId> list,
                                           NodeId bound) {
  const auto it = std::upper_bound(list.begin(), list.end(), bound);
  return list.subspan(static_cast<size_t>(it - list.begin()));
}

}  // namespace sei
}  // namespace trilist
