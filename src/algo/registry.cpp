#include "src/algo/registry.h"

#include "src/algo/edge_iterator.h"
#include "src/algo/lookup_iterator.h"
#include "src/algo/parallel_engine.h"

namespace trilist {

OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink) {
  if (MethodFamily(m) == Family::kVertexIterator) {
    const DirectedEdgeSet arcs(g);
    return RunMethod(m, g, arcs, sink);
  }
  const DirectedEdgeSet empty_arcs{OrientedGraph()};
  return RunMethod(m, g, empty_arcs, sink);
}

OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink) {
  switch (m) {
    case Method::kT1: return RunT1(g, arcs, sink);
    case Method::kT2: return RunT2(g, arcs, sink);
    case Method::kT3: return RunT3(g, arcs, sink);
    case Method::kT4: return RunT4(g, arcs, sink);
    case Method::kT5: return RunT5(g, arcs, sink);
    case Method::kT6: return RunT6(g, arcs, sink);
    case Method::kE1: return RunE1(g, sink);
    case Method::kE2: return RunE2(g, sink);
    case Method::kE3: return RunE3(g, sink);
    case Method::kE4: return RunE4(g, sink);
    case Method::kE5: return RunE5(g, sink);
    case Method::kE6: return RunE6(g, sink);
    case Method::kL1: return RunL1(g, sink);
    case Method::kL2: return RunL2(g, sink);
    case Method::kL3: return RunL3(g, sink);
    case Method::kL4: return RunL4(g, sink);
    case Method::kL5: return RunL5(g, sink);
    case Method::kL6: return RunL6(g, sink);
  }
  return OpCounts{};
}

OpCounts RunMethodProfiled(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           NodeOpsHook* hook) {
  switch (m) {
    case Method::kT1: return RunT1(g, arcs, sink, hook);
    case Method::kT2: return RunT2(g, arcs, sink, hook);
    case Method::kT3: return RunT3(g, arcs, sink, hook);
    case Method::kT4: return RunT4(g, arcs, sink, hook);
    case Method::kT5: return RunT5(g, arcs, sink, hook);
    case Method::kT6: return RunT6(g, arcs, sink, hook);
    case Method::kE1: return RunE1(g, sink, hook);
    case Method::kE2: return RunE2(g, sink, hook);
    case Method::kE3: return RunE3(g, sink, hook);
    case Method::kE4: return RunE4(g, sink, hook);
    case Method::kE5: return RunE5(g, sink, hook);
    case Method::kE6: return RunE6(g, sink, hook);
    case Method::kL1: return RunL1(g, sink, hook);
    case Method::kL2: return RunL2(g, sink, hook);
    case Method::kL3: return RunL3(g, sink, hook);
    case Method::kL4: return RunL4(g, sink, hook);
    case Method::kL5: return RunL5(g, sink, hook);
    case Method::kL6: return RunL6(g, sink, hook);
  }
  return OpCounts{};
}

OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink,
                   const ExecPolicy& exec) {
  if (exec.threads > 1) return RunMethodParallel(m, g, sink, exec);
  return RunMethod(m, g, sink);
}

OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink,
                   const ExecPolicy& exec) {
  if (exec.threads > 1) return RunMethodParallel(m, g, arcs, sink, exec);
  return RunMethod(m, g, arcs, sink);
}

}  // namespace trilist
