#include "src/algo/registry.h"

#include "src/algo/edge_iterator.h"
#include "src/algo/lookup_iterator.h"
#include "src/algo/parallel_engine.h"
#include "src/algo/simd/intersect_engine.h"
#include "src/util/status.h"

namespace trilist {

namespace {

/// Serial SEI dispatch under a non-default intersection backend: one
/// engine (and, for kBitmap, one index) per run, shared by every arc.
OpCounts RunSeiWithPolicy(Method m, const OrientedGraph& g,
                          TriangleSink* sink, const ExecPolicy& exec,
                          NodeOpsHook* hook) {
  const std::shared_ptr<const simd::BitmapIndex> index =
      simd::EnsureBitmapIndex(exec, g);
  simd::IntersectEngine engine(exec.intersect, index.get());
  switch (m) {
    case Method::kE1: return RunE1(g, sink, &engine, hook);
    case Method::kE2: return RunE2(g, sink, &engine, hook);
    case Method::kE3: return RunE3(g, sink, &engine, hook);
    case Method::kE4: return RunE4(g, sink, &engine, hook);
    case Method::kE5: return RunE5(g, sink, &engine, hook);
    case Method::kE6: return RunE6(g, sink, &engine, hook);
    default: break;
  }
  TRILIST_DCHECK(false);
  return OpCounts{};
}

}  // namespace

OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink) {
  if (MethodFamily(m) == Family::kVertexIterator) {
    const DirectedEdgeSet arcs(g);
    return RunMethod(m, g, arcs, sink);
  }
  const DirectedEdgeSet empty_arcs{OrientedGraph()};
  return RunMethod(m, g, empty_arcs, sink);
}

OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink) {
  switch (m) {
    case Method::kT1: return RunT1(g, arcs, sink);
    case Method::kT2: return RunT2(g, arcs, sink);
    case Method::kT3: return RunT3(g, arcs, sink);
    case Method::kT4: return RunT4(g, arcs, sink);
    case Method::kT5: return RunT5(g, arcs, sink);
    case Method::kT6: return RunT6(g, arcs, sink);
    case Method::kE1: return RunE1(g, sink);
    case Method::kE2: return RunE2(g, sink);
    case Method::kE3: return RunE3(g, sink);
    case Method::kE4: return RunE4(g, sink);
    case Method::kE5: return RunE5(g, sink);
    case Method::kE6: return RunE6(g, sink);
    case Method::kL1: return RunL1(g, sink);
    case Method::kL2: return RunL2(g, sink);
    case Method::kL3: return RunL3(g, sink);
    case Method::kL4: return RunL4(g, sink);
    case Method::kL5: return RunL5(g, sink);
    case Method::kL6: return RunL6(g, sink);
  }
  return OpCounts{};
}

OpCounts RunMethodProfiled(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           NodeOpsHook* hook) {
  switch (m) {
    case Method::kT1: return RunT1(g, arcs, sink, hook);
    case Method::kT2: return RunT2(g, arcs, sink, hook);
    case Method::kT3: return RunT3(g, arcs, sink, hook);
    case Method::kT4: return RunT4(g, arcs, sink, hook);
    case Method::kT5: return RunT5(g, arcs, sink, hook);
    case Method::kT6: return RunT6(g, arcs, sink, hook);
    case Method::kE1: return RunE1(g, sink, hook);
    case Method::kE2: return RunE2(g, sink, hook);
    case Method::kE3: return RunE3(g, sink, hook);
    case Method::kE4: return RunE4(g, sink, hook);
    case Method::kE5: return RunE5(g, sink, hook);
    case Method::kE6: return RunE6(g, sink, hook);
    case Method::kL1: return RunL1(g, sink, hook);
    case Method::kL2: return RunL2(g, sink, hook);
    case Method::kL3: return RunL3(g, sink, hook);
    case Method::kL4: return RunL4(g, sink, hook);
    case Method::kL5: return RunL5(g, sink, hook);
    case Method::kL6: return RunL6(g, sink, hook);
  }
  return OpCounts{};
}

OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink,
                   const ExecPolicy& exec) {
  if (exec.threads > 1) return RunMethodParallel(m, g, sink, exec);
  if (MethodFamily(m) == Family::kScanningEdgeIterator &&
      exec.intersect != IntersectBackend::kMerge) {
    return RunSeiWithPolicy(m, g, sink, exec, nullptr);
  }
  return RunMethod(m, g, sink);
}

OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink,
                   const ExecPolicy& exec) {
  if (exec.threads > 1) return RunMethodParallel(m, g, arcs, sink, exec);
  if (MethodFamily(m) == Family::kScanningEdgeIterator &&
      exec.intersect != IntersectBackend::kMerge) {
    return RunSeiWithPolicy(m, g, sink, exec, nullptr);
  }
  return RunMethod(m, g, arcs, sink);
}

OpCounts RunMethodProfiled(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           NodeOpsHook* hook, const ExecPolicy& exec) {
  if (MethodFamily(m) == Family::kScanningEdgeIterator &&
      exec.intersect != IntersectBackend::kMerge) {
    return RunSeiWithPolicy(m, g, sink, exec, hook);
  }
  return RunMethodProfiled(m, g, arcs, sink, hook);
}

}  // namespace trilist
