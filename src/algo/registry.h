#pragma once

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"
#include "src/graph/edge_set.h"
#include "src/graph/oriented_graph.h"

/// \file registry.h
/// Uniform dispatch over the 18 listing methods, so sweeps ("run every
/// method under every permutation") are one loop in callers.

namespace trilist {

/// Runs `m` on the oriented graph, building the directed-arc hash set
/// internally when the method is a vertex iterator.
OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink);

/// Same, but reuses a caller-provided arc set for vertex iterators (the
/// set is ignored by the other families).
OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink);

/// Runs `m` under an execution policy. With exec.threads > 1 the four
/// fundamental methods (T1, T2, E1, E4) dispatch to the parallel engine
/// (see parallel_engine.h), which reports bit-identical triangles and
/// counters to the serial run; every other method runs serial.
OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink,
                   const ExecPolicy& exec);

/// Policy variant reusing a caller-provided arc set.
OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink,
                   const ExecPolicy& exec);

/// Runs `m` serially with a per-node op hook attached, so callers can
/// attribute measured work to individual nodes (see op_hook.h for the
/// attribution rules). The hook path always runs serial: attribution is
/// a profiling pass, and a serial pass keeps Record() free of
/// synchronization. `hook` must be non-null.
OpCounts RunMethodProfiled(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           NodeOpsHook* hook);

/// Profiled run honoring the policy's intersection backend for the
/// scanning edge iterators (still serial; exec.threads is ignored). The
/// attribution invariant — per-node sums equal PaperCost — holds for
/// every backend, because attribution records span lengths, which no
/// intersection algorithm changes.
OpCounts RunMethodProfiled(Method m, const OrientedGraph& g,
                           const DirectedEdgeSet& arcs, TriangleSink* sink,
                           NodeOpsHook* hook, const ExecPolicy& exec);

}  // namespace trilist
