#pragma once

#include "src/algo/cost.h"
#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"
#include "src/graph/edge_set.h"
#include "src/graph/oriented_graph.h"

/// \file registry.h
/// Uniform dispatch over the 18 listing methods, so sweeps ("run every
/// method under every permutation") are one loop in callers.

namespace trilist {

/// Runs `m` on the oriented graph, building the directed-arc hash set
/// internally when the method is a vertex iterator.
OpCounts RunMethod(Method m, const OrientedGraph& g, TriangleSink* sink);

/// Same, but reuses a caller-provided arc set for vertex iterators (the
/// set is ignored by the other families).
OpCounts RunMethod(Method m, const OrientedGraph& g,
                   const DirectedEdgeSet& arcs, TriangleSink* sink);

}  // namespace trilist
