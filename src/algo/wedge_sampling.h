#pragma once

#include <cstdint>

#include "src/graph/graph.h"
#include "src/util/rng.h"

/// \file wedge_sampling.h
/// Approximate triangle counting by uniform wedge sampling — the standard
/// sublinear estimator from the streaming/approximate literature the
/// paper's introduction cites as the alternative to exact listing. A
/// wedge (path of length two) is sampled proportional to C(d_v, 2) at its
/// center; the fraction of closed wedges estimates the transitivity
/// kappa = 3T / W, hence T = kappa W / 3.
///
/// Included as a baseline so users can quantify the exact-vs-approximate
/// trade-off on the same graphs the listing algorithms run on.

namespace trilist {

/// Result of a wedge-sampling estimation run.
struct WedgeSampleEstimate {
  double transitivity = 0.0;   ///< estimated 3T / W
  double triangles = 0.0;      ///< estimated T
  double wedges = 0.0;         ///< exact W (computed from degrees)
  uint64_t samples = 0;        ///< wedges sampled
  uint64_t closed = 0;         ///< sampled wedges that closed
  /// 99%-confidence half-width on transitivity (normal approximation).
  double confidence99 = 0.0;
};

/// Estimates the triangle count of `g` from `samples` uniform wedges.
/// O(n + samples * (log n + log d_max)).
WedgeSampleEstimate EstimateTrianglesByWedgeSampling(const Graph& g,
                                                     uint64_t samples,
                                                     Rng* rng);

}  // namespace trilist
