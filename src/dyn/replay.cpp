#include "src/dyn/replay.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "src/algo/cost.h"
#include "src/dyn/compact.h"
#include "src/dyn/dyn_graph.h"
#include "src/graph/binfmt.h"
#include "src/obs/trace.h"
#include "src/run/runner.h"
#include "src/util/timer.h"

namespace trilist::dyn {

namespace {

Result<std::string> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path +
                                   "' for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal("read failed on '" + path + "'");
  }
  return bytes;
}

}  // namespace

bool ReplayPassed(const ReplayReport& report) {
  if (!report.counts_match) return false;
  if (report.tlg_checked && !report.tlg_bitmatch) return false;
  return true;
}

Result<ReplayReport> ReplayVerify(const Graph& base,
                                  std::span<const EdgeMutation> log,
                                  const ReplayOptions& options) {
  obs::TraceSpan span("dyn_replay");
  span.Arg("mutations", static_cast<int64_t>(log.size()));
  const size_t batch_size = std::max<size_t>(1, options.batch_size);

  ReplayReport report;
  report.mutations = log.size();

  // Incremental pass: batched Apply, optional mid-replay compactions so
  // the verifier exercises the production trigger, not just the final
  // state.
  Timer apply_timer;
  DynGraph dyn = DynGraph::FromBase(base);
  for (size_t pos = 0; pos < log.size(); pos += batch_size) {
    const size_t len = std::min(batch_size, log.size() - pos);
    Result<ApplyResult> applied = dyn.Apply(log.subspan(pos, len));
    if (!applied.ok()) return applied.status();
    report.applied += applied->applied_inserts + applied->applied_deletes;
    report.noops += applied->noops;
    report.comparisons += applied->comparisons;
    report.predicted_ops += applied->predicted_ops;
    ++report.batches;
    if (options.compact_overlay_fraction > 0 &&
        dyn.ShouldCompact(options.compact_overlay_fraction,
                          options.compact_min_arcs)) {
      dyn.Compact();
      ++report.compactions;
    }
  }
  report.apply_wall_s = apply_timer.ElapsedSeconds();
  report.final_nodes = dyn.num_nodes();
  report.final_edges = dyn.num_edges();
  report.incremental_triangles = dyn.triangles();

  // Check 1: from-scratch recounts of the final graph, two methods so a
  // bug in either listing path cannot silently confirm itself.
  const Graph final_graph = dyn.MaterializeGraph();
  Timer recount_timer;
  Result<uint64_t> t1 = CountTrianglesWithMethod(
      final_graph, Method::kT1, options.recount_orient, options.threads);
  if (!t1.ok()) return t1.status();
  report.recount_wall_s = recount_timer.ElapsedSeconds();
  Result<uint64_t> t2 = CountTrianglesWithMethod(
      final_graph, Method::kT2, options.recount_orient, options.threads);
  if (!t2.ok()) return t2.status();
  report.recount_t1 = *t1;
  report.recount_t2 = *t2;
  report.counts_match = report.incremental_triangles == *t1 && *t1 == *t2;

  // Check 2: compacted container vs a from-scratch convert of the final
  // edge list, byte for byte. The fresh side deliberately rebuilds via
  // FromEdges so the two containers share no in-memory state.
  if (options.verify_tlg && !options.compact_path.empty() &&
      !options.fresh_path.empty()) {
    report.tlg_checked = true;
    CompactOptions compact;
    compact.orientations = options.orientations;
    compact.threads = options.threads;
    TRILIST_RETURN_NOT_OK(
        CompactToTlg(final_graph, options.compact_path, compact));

    Result<Graph> fresh = Graph::FromEdges(final_graph.num_nodes(),
                                           final_graph.EdgeList());
    if (!fresh.ok()) return fresh.status();
    TlgWriteOptions write;
    write.orientations = options.orientations;
    write.threads = options.threads;
    TRILIST_RETURN_NOT_OK(
        WriteTlgFile(*fresh, options.fresh_path, write));

    Result<std::string> compact_bytes = ReadAllBytes(options.compact_path);
    if (!compact_bytes.ok()) return compact_bytes.status();
    Result<std::string> fresh_bytes = ReadAllBytes(options.fresh_path);
    if (!fresh_bytes.ok()) return fresh_bytes.status();
    report.tlg_bitmatch = *compact_bytes == *fresh_bytes;
  }
  span.Arg("applied", static_cast<int64_t>(report.applied));
  span.Arg("match", report.counts_match ? int64_t{1} : int64_t{0});
  return report;
}

}  // namespace trilist::dyn
