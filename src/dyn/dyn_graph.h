#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/dyn/mutation_log.h"
#include "src/dyn/overlay.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

/// \file dyn_graph.h
/// Mutable graph view with exact incremental triangle maintenance — the
/// dynamic counterpart of the immutable pipeline, built from the same
/// primitives the paper costs: every mutation's work is a handful of
/// sorted-row intersections (src/algo/intersect.h), priced per touched
/// node as g(d) h(q) with g the identity (the merge kernel's scan bound,
/// see cost::PredictedMutationOps).
///
/// ## Structure
/// An immutable CSR base (shared, possibly a `.tlg` mmap view) plus a
/// DeltaOverlay of per-node sorted insert/tombstone arrays. Neighbor
/// rows merge lazily: untouched nodes read the base span zero-copy.
///
/// ## Incremental count invariant
/// `triangles()` equals the triangle count of the merged graph after
/// every Apply. Each applied edge (u, v) changes the count by exactly
/// |N(u) ∩ N(v)| evaluated on the pre-mutation merged rows ((u, v)
/// itself is never a common neighbor, so insert-before or delete-after
/// evaluation is equivalent). The intersection runs as the oriented
/// three-way decomposition under the identity order: apex below both
/// endpoints (N+(u) ∩ N+(v)), apex between them (the out/in wedge), apex
/// above both (N-(u) ∩ N-(v)) — three subspan intersections on the
/// already sorted merged rows.
///
/// ## Single writer, snapshot readers
/// Apply/Compact mutate in place and are not thread-safe; concurrent
/// readers take an immutable Graph via MaterializeGraph() (the serving
/// catalog publishes one per batch as a copy-on-write epoch).

namespace trilist::dyn {

/// Cumulative counters over the life of one DynGraph.
struct DynStats {
  uint64_t inserts_applied = 0;
  uint64_t deletes_applied = 0;
  uint64_t noops = 0;        ///< re-inserts of present / deletes of absent
  uint64_t batches = 0;
  uint64_t compactions = 0;
  int64_t comparisons = 0;   ///< measured intersection comparisons
  double predicted_ops = 0;  ///< Σ g(d) h(q) over touched endpoints
};

/// Per-batch outcome of DynGraph::Apply.
struct ApplyResult {
  uint64_t applied_inserts = 0;
  uint64_t applied_deletes = 0;
  uint64_t noops = 0;
  int64_t comparisons = 0;   ///< intersection comparisons this batch
  double predicted_ops = 0;  ///< Σ g(d) h(q) priced for this batch
};

/// \brief CSR base + delta overlay with an exact running triangle count.
class DynGraph {
 public:
  DynGraph() = default;

  /// Wraps `base` and counts its triangles from scratch — the one full
  /// pass the incremental invariant is anchored to (the serving catalog
  /// defers this to the first mutation, so read-only graphs never pay it).
  static DynGraph FromBase(Graph base);

  /// Wraps `base` with a caller-known triangle count (verifier chains and
  /// tests that already counted).
  static DynGraph FromBaseWithCount(Graph base, uint64_t triangles);

  /// Nodes, including any appended by inserts beyond the base ID range.
  size_t num_nodes() const { return num_nodes_; }
  /// Current undirected edge count.
  uint64_t num_edges() const { return num_edges_; }
  /// The exact triangle count of the current merged graph.
  uint64_t triangles() const { return triangles_; }
  /// Mutations applied (insert + delete + noop) since construction.
  uint64_t seq() const { return seq_; }
  /// Overlay size: inserted arcs + tombstones across all nodes.
  size_t overlay_arcs() const { return overlay_.delta_arcs(); }
  /// The immutable base (the last compaction point).
  const Graph& base() const { return base_; }
  const DeltaOverlay& overlay() const { return overlay_; }
  const DynStats& stats() const { return stats_; }

  /// Current degree of v (0 beyond the node range).
  int64_t Degree(NodeId v) const;
  /// Membership on the merged view: two binary searches, no row merge.
  bool HasEdge(NodeId u, NodeId v) const;
  /// The merged sorted row of v; `*scratch` backs it when v has deltas.
  std::span<const NodeId> Neighbors(NodeId v,
                                    std::vector<NodeId>* scratch) const;

  /// Applies one batch in order, maintaining the exact triangle count.
  /// Self-loops fail the whole batch with InvalidArgument (nothing
  /// applied from it); re-inserting a present edge or deleting an absent
  /// one counts as a noop. Inserting beyond the base ID range grows the
  /// node set.
  Result<ApplyResult> Apply(std::span<const EdgeMutation> batch);

  /// The merged graph as an immutable CSR (O(n + m)).
  Graph MaterializeGraph() const;

  /// True when the overlay reached `min_arcs` and `fraction` of the base
  /// arc count — the serving catalog's compaction trigger.
  bool ShouldCompact(double fraction, size_t min_arcs) const;

  /// Rebases onto MaterializeGraph() and clears the overlay. Counts and
  /// seq are unchanged: compaction reorganizes storage, not the graph.
  void Compact();

 private:
  /// |N(u) ∩ N(v)| on the current merged rows via the oriented three-way
  /// decomposition; adds kernel comparisons to *comparisons.
  uint64_t CommonNeighbors(NodeId u, NodeId v, int64_t* comparisons,
                           std::vector<NodeId>* scratch_u,
                           std::vector<NodeId>* scratch_v) const;
  /// Base row of v, empty beyond the base node range.
  std::span<const NodeId> BaseRow(NodeId v) const;

  Graph base_;
  DeltaOverlay overlay_;
  size_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t triangles_ = 0;
  uint64_t seq_ = 0;
  DynStats stats_;
};

/// From-scratch triangle count of an immutable graph, via the same
/// identity-order subspan intersections the incremental path uses — the
/// recount baseline of the replay verifier and `bench_dynamic_mix`.
uint64_t CountTriangles(const Graph& g);

}  // namespace trilist::dyn
