#include "src/dyn/compact.h"

#include <bit>
#include <cstring>

#include "src/graph/binfmt_layout.h"
#include "src/graph/binfmt_stream.h"
#include "src/graph/oriented_graph.h"
#include "src/obs/trace.h"

namespace trilist::dyn {

using tlg::kSecCsrNeighbors;
using tlg::kSecCsrOffsets;
using tlg::kSecDegrees;
using tlg::kSecOrientation;
using tlg::OrientHeader;
using tlg::PermKindToCode;

Status CompactToTlg(const Graph& g, const std::string& path,
                    const CompactOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(".tlg writing requires a little-endian "
                                  "host");
  }
  obs::TraceSpan span("compact_to_tlg");
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  span.Arg("n", static_cast<int64_t>(n));
  span.Arg("m", static_cast<int64_t>(m));
  // Canonical empty graph: offsets = {0}, exactly as WriteTlgFile.
  static constexpr size_t kZeroOffset = 0;
  const std::span<const size_t> offsets =
      g.RawOffsets().empty() ? std::span<const size_t>(&kZeroOffset, 1)
                             : g.RawOffsets();

  // Orientations are rebuilt from scratch on the compacted CSR — the
  // same deterministic OrientWithSpec path the converter uses, so the
  // embedded sections match a fresh convert byte for byte.
  std::vector<OrientedGraph> oriented;
  oriented.reserve(options.orientations.size());
  for (const OrientSpec& spec : options.orientations) {
    oriented.push_back(OrientWithSpec(g, spec, options.threads));
  }
  std::vector<int64_t> degrees;
  if (options.write_degrees) degrees = g.Degrees();

  // The section plan mirrors WriteTlgFile's directory order exactly.
  std::vector<TlgStreamSectionPlan> plan;
  plan.push_back({kSecCsrOffsets, 0, (n + 1) * sizeof(uint64_t)});
  plan.push_back({kSecCsrNeighbors, 0, 2 * m * sizeof(NodeId)});
  if (options.write_degrees) {
    plan.push_back({kSecDegrees, 0, n * sizeof(int64_t)});
  }
  for (size_t i = 0; i < oriented.size(); ++i) {
    const uint64_t arcs = oriented[i].num_arcs();
    const uint64_t len = sizeof(OrientHeader) +
                         2 * (n + 1) * sizeof(uint64_t) +
                         2 * arcs * sizeof(NodeId) + n * sizeof(NodeId);
    plan.push_back({kSecOrientation, static_cast<uint32_t>(i), len});
  }

  Result<TlgStreamWriter> writer =
      TlgStreamWriter::Create(path, n, m, std::move(plan));
  if (!writer.ok()) return writer.status();
  TlgStreamWriter& w = writer.ValueOrDie();
  TRILIST_RETURN_NOT_OK(
      w.Append(offsets.data(), offsets.size_bytes()));
  TRILIST_RETURN_NOT_OK(w.Append(g.RawNeighbors().data(),
                                       g.RawNeighbors().size_bytes()));
  if (options.write_degrees) {
    TRILIST_RETURN_NOT_OK(
        w.Append(degrees.data(), degrees.size() * sizeof(int64_t)));
  }
  for (size_t i = 0; i < oriented.size(); ++i) {
    const OrientSpec& spec = options.orientations[i];
    const OrientedGraph& og = oriented[i];
    const OrientHeader header{
        PermKindToCode(spec.kind), 0,
        spec.kind == PermutationKind::kUniform ? spec.seed : 0,
        og.num_arcs()};
    TRILIST_RETURN_NOT_OK(w.Append(&header, sizeof(header)));
    TRILIST_RETURN_NOT_OK(w.Append(og.RawOutOffsets().data(),
                                         og.RawOutOffsets().size_bytes()));
    TRILIST_RETURN_NOT_OK(w.Append(og.RawInOffsets().data(),
                                         og.RawInOffsets().size_bytes()));
    TRILIST_RETURN_NOT_OK(w.Append(
        og.RawOutNeighbors().data(), og.RawOutNeighbors().size_bytes()));
    TRILIST_RETURN_NOT_OK(w.Append(
        og.RawInNeighbors().data(), og.RawInNeighbors().size_bytes()));
    TRILIST_RETURN_NOT_OK(w.Append(og.original_of().data(),
                                         og.original_of().size_bytes()));
  }
  return w.Finish();
}

}  // namespace trilist::dyn
