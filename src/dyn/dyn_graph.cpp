#include "src/dyn/dyn_graph.h"

#include <algorithm>
#include <array>

#include "src/algo/intersect.h"
#include "src/cost/cost_model.h"
#include "src/obs/trace.h"

namespace trilist::dyn {

namespace {

/// Splits a sorted row into the three apex ranges of the identity-order
/// decomposition: below lo, strictly between lo and hi, above hi. The
/// endpoints themselves are skipped — a common neighbor of (u, v) is
/// never u or v.
std::array<std::span<const NodeId>, 3> SplitRow(std::span<const NodeId> row,
                                                NodeId lo, NodeId hi) {
  const NodeId* begin = row.data();
  const NodeId* end = begin + row.size();
  const NodeId* at_lo = std::lower_bound(begin, end, lo);
  const NodeId* mid = at_lo;
  while (mid < end && *mid == lo) ++mid;
  const NodeId* at_hi = std::lower_bound(mid, end, hi);
  const NodeId* high = at_hi;
  while (high < end && *high == hi) ++high;
  return {std::span<const NodeId>(begin, at_lo),
          std::span<const NodeId>(mid, at_hi),
          std::span<const NodeId>(high, end)};
}

}  // namespace

DynGraph DynGraph::FromBase(Graph base) {
  const uint64_t triangles = CountTriangles(base);
  return FromBaseWithCount(std::move(base), triangles);
}

DynGraph DynGraph::FromBaseWithCount(Graph base, uint64_t triangles) {
  DynGraph g;
  g.num_nodes_ = base.num_nodes();
  g.num_edges_ = base.num_edges();
  g.base_ = std::move(base);
  g.triangles_ = triangles;
  return g;
}

std::span<const NodeId> DynGraph::BaseRow(NodeId v) const {
  if (v >= base_.num_nodes()) return {};
  return base_.Neighbors(v);
}

int64_t DynGraph::Degree(NodeId v) const {
  if (v >= num_nodes_) return 0;
  const int64_t base_degree =
      v < base_.num_nodes() ? base_.Degree(v) : 0;
  return base_degree + overlay_.DegreeDelta(v);
}

bool DynGraph::HasEdge(NodeId u, NodeId v) const {
  if (overlay_.HasInserted(u, v)) return true;
  if (overlay_.HasDeleted(u, v)) return false;
  const std::span<const NodeId> row = BaseRow(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::span<const NodeId> DynGraph::Neighbors(
    NodeId v, std::vector<NodeId>* scratch) const {
  return overlay_.MergedRow(BaseRow(v), v, scratch);
}

uint64_t DynGraph::CommonNeighbors(NodeId u, NodeId v, int64_t* comparisons,
                                   std::vector<NodeId>* scratch_u,
                                   std::vector<NodeId>* scratch_v) const {
  const std::span<const NodeId> row_u = Neighbors(u, scratch_u);
  const std::span<const NodeId> row_v = Neighbors(v, scratch_v);
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  const auto parts_u = SplitRow(row_u, lo, hi);
  const auto parts_v = SplitRow(row_v, lo, hi);
  uint64_t common = 0;
  const auto count = [&common](NodeId) { ++common; };
  // Apex below both endpoints (N+ ∩ N+ under the identity order), the
  // out/in wedge between them, and apex above both (N- ∩ N-).
  for (size_t part = 0; part < 3; ++part) {
    *comparisons += IntersectAutoT(parts_u[part], parts_v[part], count);
  }
  return common;
}

Result<ApplyResult> DynGraph::Apply(std::span<const EdgeMutation> batch) {
  obs::TraceSpan span("dyn_apply");
  span.Arg("batch", static_cast<int64_t>(batch.size()));
  for (const EdgeMutation& m : batch) {
    if (m.u == m.v) {
      return Status::InvalidArgument("self-loop mutation on node " +
                                     std::to_string(m.u));
    }
  }
  ApplyResult result;
  std::vector<NodeId> scratch_u, scratch_v;
  for (const EdgeMutation& m : batch) {
    ++seq_;
    if (HasEdge(m.u, m.v) == m.insert) {
      ++result.noops;
      continue;
    }
    result.predicted_ops +=
        cost::PredictedMutationOps(Degree(m.u), Degree(m.v));
    const uint64_t common =
        CommonNeighbors(m.u, m.v, &result.comparisons, &scratch_u,
                        &scratch_v);
    if (m.insert) {
      num_nodes_ = std::max<size_t>(
          num_nodes_, static_cast<size_t>(std::max(m.u, m.v)) + 1);
      overlay_.AddArc(m.u, m.v);
      overlay_.AddArc(m.v, m.u);
      triangles_ += common;
      ++num_edges_;
      ++result.applied_inserts;
    } else {
      overlay_.RemoveArc(m.u, m.v);
      overlay_.RemoveArc(m.v, m.u);
      triangles_ -= common;
      --num_edges_;
      ++result.applied_deletes;
    }
  }
  ++stats_.batches;
  stats_.inserts_applied += result.applied_inserts;
  stats_.deletes_applied += result.applied_deletes;
  stats_.noops += result.noops;
  stats_.comparisons += result.comparisons;
  stats_.predicted_ops += result.predicted_ops;
  span.Arg("applied", static_cast<int64_t>(result.applied_inserts +
                                           result.applied_deletes));
  span.Arg("comparisons", result.comparisons);
  return result;
}

Graph DynGraph::MaterializeGraph() const {
  std::vector<size_t> offsets(num_nodes_ + 1, 0);
  std::vector<NodeId> neighbors;
  neighbors.reserve(2 * static_cast<size_t>(num_edges_));
  std::vector<NodeId> scratch;
  for (NodeId v = 0; v < num_nodes_; ++v) {
    const std::span<const NodeId> row = Neighbors(v, &scratch);
    neighbors.insert(neighbors.end(), row.begin(), row.end());
    offsets[v + 1] = neighbors.size();
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

bool DynGraph::ShouldCompact(double fraction, size_t min_arcs) const {
  const size_t arcs = overlay_.delta_arcs();
  if (arcs < std::max<size_t>(1, min_arcs)) return false;
  const double base_arcs =
      static_cast<double>(2 * base_.num_edges());
  return static_cast<double>(arcs) >= fraction * std::max(1.0, base_arcs);
}

void DynGraph::Compact() {
  obs::TraceSpan span("dyn_compact");
  span.Arg("overlay_arcs", static_cast<int64_t>(overlay_.delta_arcs()));
  base_ = MaterializeGraph();
  overlay_.Clear();
  ++stats_.compactions;
}

uint64_t CountTriangles(const Graph& g) {
  uint64_t total = 0;
  const auto count = [&total](NodeId) { ++total; };
  const size_t n = g.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    const std::span<const NodeId> row_u = g.Neighbors(u);
    // v ranges over neighbors above u; the apex w above v completes each
    // ordered triple u < v < w exactly once.
    const NodeId* above_u =
        std::upper_bound(row_u.data(), row_u.data() + row_u.size(), u);
    for (const NodeId* pv = above_u; pv < row_u.data() + row_u.size();
         ++pv) {
      const NodeId v = *pv;
      const std::span<const NodeId> row_v = g.Neighbors(v);
      const NodeId* wu = std::upper_bound(
          row_u.data(), row_u.data() + row_u.size(), v);
      const NodeId* wv = std::upper_bound(
          row_v.data(), row_v.data() + row_v.size(), v);
      IntersectAutoT(
          std::span<const NodeId>(wu, row_u.data() + row_u.size()),
          std::span<const NodeId>(wv, row_v.data() + row_v.size()), count);
    }
  }
  return total;
}

}  // namespace trilist::dyn
