#include "src/dyn/overlay.h"

#include <algorithm>

namespace trilist::dyn {

namespace {

bool SortedContains(const std::vector<NodeId>& v, NodeId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

void SortedInsert(std::vector<NodeId>* v, NodeId x) {
  v->insert(std::lower_bound(v->begin(), v->end(), x), x);
}

/// Removes x when present; returns whether it was.
bool SortedErase(std::vector<NodeId>* v, NodeId x) {
  const auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

}  // namespace

void DeltaOverlay::AddArc(NodeId u, NodeId v) {
  NodeDelta& d = deltas_[u];
  if (SortedErase(&d.deleted, v)) {
    // Re-inserting a tombstoned base arc: the base row already carries it.
    --delta_arcs_;
    if (d.inserted.empty() && d.deleted.empty()) deltas_.erase(u);
    return;
  }
  SortedInsert(&d.inserted, v);
  ++delta_arcs_;
}

void DeltaOverlay::RemoveArc(NodeId u, NodeId v) {
  NodeDelta& d = deltas_[u];
  if (SortedErase(&d.inserted, v)) {
    --delta_arcs_;
    if (d.inserted.empty() && d.deleted.empty()) deltas_.erase(u);
    return;
  }
  SortedInsert(&d.deleted, v);
  ++delta_arcs_;
}

bool DeltaOverlay::HasInserted(NodeId u, NodeId v) const {
  const NodeDelta* d = Find(u);
  return d != nullptr && SortedContains(d->inserted, v);
}

bool DeltaOverlay::HasDeleted(NodeId u, NodeId v) const {
  const NodeDelta* d = Find(u);
  return d != nullptr && SortedContains(d->deleted, v);
}

const DeltaOverlay::NodeDelta* DeltaOverlay::Find(NodeId u) const {
  const auto it = deltas_.find(u);
  return it == deltas_.end() ? nullptr : &it->second;
}

int64_t DeltaOverlay::DegreeDelta(NodeId u) const {
  const NodeDelta* d = Find(u);
  if (d == nullptr) return 0;
  return static_cast<int64_t>(d->inserted.size()) -
         static_cast<int64_t>(d->deleted.size());
}

void DeltaOverlay::Clear() {
  deltas_.clear();
  delta_arcs_ = 0;
}

std::span<const NodeId> DeltaOverlay::MergedRow(
    std::span<const NodeId> base_row, NodeId u,
    std::vector<NodeId>* scratch) const {
  const NodeDelta* d = Find(u);
  if (d == nullptr) return base_row;  // untouched node: zero-copy
  scratch->clear();
  scratch->reserve(base_row.size() + d->inserted.size());
  size_t bi = 0, ii = 0, di = 0;
  const std::vector<NodeId>& ins = d->inserted;
  const std::vector<NodeId>& del = d->deleted;
  while (bi < base_row.size()) {
    const NodeId b = base_row[bi];
    // Inserted arcs are disjoint from the base row, so a strict < merge
    // interleaves them without a duplicate check.
    while (ii < ins.size() && ins[ii] < b) scratch->push_back(ins[ii++]);
    if (di < del.size() && del[di] == b) {
      ++di;  // tombstoned base arc
      ++bi;
      continue;
    }
    scratch->push_back(b);
    ++bi;
  }
  while (ii < ins.size()) scratch->push_back(ins[ii++]);
  return *scratch;
}

}  // namespace trilist::dyn
