#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/dyn/mutation_log.h"
#include "src/graph/graph.h"
#include "src/order/pipeline.h"
#include "src/util/status.h"

/// \file replay.h
/// The dynamic-graph exactness proof: replay a recorded mutation log
/// against a base graph through the incremental maintenance path
/// (src/dyn/dyn_graph.h) and cross-check the result two independent
/// ways:
///
///   1. **Counts.** The incrementally maintained triangle count must
///      equal a from-scratch recount of the final graph by two different
///      listing methods (T1 and T2 through the registry — the same code
///      path served queries run).
///   2. **Bytes.** A compaction of the final dynamic state streamed
///      through CompactToTlg must be bit-identical to WriteTlgFile on a
///      Graph rebuilt via FromEdges from the final edge list — proving
///      the overlay/merge machinery leaves no trace in the container.
///
/// Any divergence is a bug in the incremental path, never "expected
/// drift": both checks are exact or they fail.

namespace trilist::dyn {

struct ReplayOptions {
  /// Mutations applied per DynGraph::Apply call.
  size_t batch_size = 256;
  /// Threads for the from-scratch recounts (counts identical for any).
  int threads = 1;
  /// Also run the compaction bit-match (check 2). Needs the two paths.
  bool verify_tlg = true;
  /// Where the compacted container is written (check 2).
  std::string compact_path;
  /// Where the from-scratch container is written (check 2).
  std::string fresh_path;
  /// Orientations embedded in both containers (byte-compared too).
  std::vector<OrientSpec> orientations;
  /// Orientation used for the from-scratch recounts.
  OrientSpec recount_orient;
  /// Compact the DynGraph mid-replay whenever the overlay crosses this
  /// fraction of the base arcs (0 disables; exercises Compact under
  /// churn so the verifier covers the production trigger).
  double compact_overlay_fraction = 0;
  size_t compact_min_arcs = 1;
};

struct ReplayReport {
  uint64_t mutations = 0;         ///< log entries replayed.
  uint64_t applied = 0;           ///< non-noop inserts + deletes.
  uint64_t noops = 0;             ///< already-present / already-absent.
  uint64_t batches = 0;           ///< Apply calls issued.
  uint64_t compactions = 0;       ///< mid-replay compactions triggered.
  uint64_t final_nodes = 0;
  uint64_t final_edges = 0;
  uint64_t incremental_triangles = 0;  ///< the maintained running count.
  uint64_t recount_t1 = 0;        ///< from-scratch T1 on the final graph.
  uint64_t recount_t2 = 0;        ///< from-scratch T2 on the final graph.
  bool counts_match = false;      ///< incremental == T1 == T2.
  bool tlg_checked = false;       ///< check 2 ran (verify_tlg && paths).
  bool tlg_bitmatch = false;      ///< compacted bytes == fresh bytes.
  int64_t comparisons = 0;        ///< measured merge comparisons (cost).
  double predicted_ops = 0;       ///< Σ PredictedMutationOps over the log.
  double apply_wall_s = 0;        ///< incremental maintenance wall time.
  double recount_wall_s = 0;      ///< one full T1 recount wall time.
};

/// True iff both checks the options requested passed.
bool ReplayPassed(const ReplayReport& report);

/// Replays `log` over `base` in batches and runs the checks above.
/// Status errors are infrastructure failures (bad mutation, unwritable
/// path); a *mismatch* is not an error — it comes back as a report with
/// counts_match / tlg_bitmatch false so callers can print both sides.
Result<ReplayReport> ReplayVerify(const Graph& base,
                                  std::span<const EdgeMutation> log,
                                  const ReplayOptions& options = {});

}  // namespace trilist::dyn
