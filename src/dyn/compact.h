#pragma once

#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/order/pipeline.h"
#include "src/util/status.h"

/// \file compact.h
/// Serializes a compacted dynamic graph to a fresh `.tlg` container via
/// the streaming writer (src/graph/binfmt_stream.h), replicating the
/// in-memory writer's section plan exactly — the output is byte-identical
/// to WriteTlgFile on the same graph and options, which is what lets the
/// replay verifier prove a mutation stream's compaction equals a
/// from-scratch convert of the final edge list, bit for bit.

namespace trilist::dyn {

/// Options mirroring TlgWriteOptions (kept separate so the dyn layer
/// does not pull the whole loader into its interface).
struct CompactOptions {
  /// Orientations to rebuild and embed, keyed by OrientSpec.
  std::vector<OrientSpec> orientations;
  /// Concurrency of the orientation builds (result identical for any).
  int threads = 1;
  /// Embed the degree-sequence section (on by default, as in convert).
  bool write_degrees = true;
};

/// Streams `g` (a materialized DynGraph, or any Graph) to `path` as a
/// `.tlg` container. Deterministic; bit-identical to
/// WriteTlgFile(g, path, ...) with the same sections.
Status CompactToTlg(const Graph& g, const std::string& path,
                    const CompactOptions& options = {});

}  // namespace trilist::dyn
