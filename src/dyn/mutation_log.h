#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/util/status.h"

/// \file mutation_log.h
/// The dynamic-graph mutation record and its recorded-log text format.
///
/// A mutation is one undirected edge insert or delete. Logs are plain
/// text, one mutation per line, replayable by `trilist_cli mutate` and
/// the replay verifier (src/dyn/replay.h):
///
///   # comment lines and blank lines are skipped
///   + u v     insert undirected edge (u, v)
///   - u v     delete undirected edge (u, v)
///
/// Endpoint order within a line is irrelevant (edges are undirected);
/// self-loops are rejected at parse time, matching Graph::FromEdges.
/// Re-inserting a present edge or deleting an absent one is legal in a
/// log and applies as a no-op — recorded streams from real systems
/// routinely carry both.

namespace trilist::dyn {

/// One edge insert or delete.
struct EdgeMutation {
  NodeId u = 0;
  NodeId v = 0;
  bool insert = true;

  friend bool operator==(const EdgeMutation&, const EdgeMutation&) = default;
};

/// Parses a mutation log file. Malformed lines (missing fields, non-digit
/// endpoints, self-loops, unknown op characters) fail with
/// InvalidArgument naming the line number.
Result<std::vector<EdgeMutation>> ReadMutationLog(const std::string& path);

/// Writes `log` in the text format above (deterministic output).
Status WriteMutationLog(std::span<const EdgeMutation> log,
                        const std::string& path);

}  // namespace trilist::dyn
