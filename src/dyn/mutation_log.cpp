#include "src/dyn/mutation_log.h"

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

namespace trilist::dyn {

namespace {

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("mutation log line " +
                                 std::to_string(line_no) + ": " + what);
}

/// Parses one decimal node ID; rejects anything a NodeId cannot hold.
bool ParseNode(const std::string& token, NodeId* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (const char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > UINT32_MAX) return false;
  }
  *out = static_cast<NodeId>(value);
  return true;
}

}  // namespace

Result<std::vector<EdgeMutation>> ReadMutationLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open mutation log: " + path);
  }
  std::vector<EdgeMutation> log;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op) || op[0] == '#') continue;  // blank or comment
    if (op != "+" && op != "-") {
      return LineError(line_no, "unknown op '" + op + "' (want + or -)");
    }
    std::string u_token, v_token;
    if (!(fields >> u_token >> v_token)) {
      return LineError(line_no, "want '<op> <u> <v>'");
    }
    EdgeMutation m;
    m.insert = op == "+";
    if (!ParseNode(u_token, &m.u) || !ParseNode(v_token, &m.v)) {
      return LineError(line_no, "bad endpoint in '" + line + "'");
    }
    if (m.u == m.v) {
      return LineError(line_no, "self-loop on node " + u_token);
    }
    std::string trailing;
    if (fields >> trailing && trailing[0] != '#') {
      return LineError(line_no, "trailing field '" + trailing + "'");
    }
    log.push_back(m);
  }
  return log;
}

Status WriteMutationLog(std::span<const EdgeMutation> log,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  for (const EdgeMutation& m : log) {
    out << (m.insert ? '+' : '-') << ' ' << m.u << ' ' << m.v << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace trilist::dyn
