#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"

/// \file overlay.h
/// Mutable adjacency overlay for dynamic graphs: per-node sorted delta
/// arrays layered over an immutable CSR base (src/graph/graph.h).
///
/// Each touched node carries two sorted vectors: `inserted` (arcs present
/// beyond the base) and `deleted` (tombstones over arcs the base has).
/// Untouched nodes carry nothing, so the merged row of a node with no
/// deltas is the base span itself, zero-copy — the common case under
/// sparse churn, and what keeps query-side neighbor iteration as cheap as
/// the static path.
///
/// Invariants (maintained by DynGraph, assumed here):
///   - inserted(u) is disjoint from the base row of u,
///   - deleted(u) is a subset of the base row of u,
///   - the overlay is symmetric: v in inserted(u) iff u in inserted(v),
///     and likewise for tombstones (edges are undirected).
///
/// Merged rows stay sorted ascending, so every existing intersection
/// backend (src/algo/intersect.h) runs on them unchanged.

namespace trilist::dyn {

/// \brief Per-node sorted insert/tombstone deltas over a CSR base.
class DeltaOverlay {
 public:
  /// Deltas of one touched node, both sorted ascending.
  struct NodeDelta {
    std::vector<NodeId> inserted;
    std::vector<NodeId> deleted;  ///< tombstoned base arcs
  };

  /// Records arc u -> v as present beyond the base state: clears a
  /// tombstone when one exists (the arc is a base arc deleted earlier),
  /// otherwise adds v to inserted(u). The caller must have established
  /// that the arc is currently absent.
  void AddArc(NodeId u, NodeId v);

  /// Records arc u -> v as absent: removes it from inserted(u) when it
  /// lives there, otherwise tombstones the base arc. The caller must have
  /// established that the arc is currently present.
  void RemoveArc(NodeId u, NodeId v);

  /// True when v is in inserted(u) / deleted(u).
  bool HasInserted(NodeId u, NodeId v) const;
  bool HasDeleted(NodeId u, NodeId v) const;

  /// The node's deltas, or nullptr when the node is untouched (rows are
  /// pruned as soon as both vectors empty, so nullptr == base row valid).
  const NodeDelta* Find(NodeId u) const;

  /// Net degree change of node u (inserted minus tombstoned arcs).
  int64_t DegreeDelta(NodeId u) const;

  /// Total delta entries (inserted + tombstones) across all nodes — the
  /// compaction trigger's size measure and the /metrics overlay gauge.
  size_t delta_arcs() const { return delta_arcs_; }
  bool empty() const { return delta_arcs_ == 0; }
  /// Drops every delta (after a compaction rebased the graph).
  void Clear();

  /// The merged row of u: `base_row` with tombstones removed and inserts
  /// merged in, sorted ascending. Returns `base_row` itself (zero-copy)
  /// when u has no deltas; otherwise fills and returns `*scratch`.
  std::span<const NodeId> MergedRow(std::span<const NodeId> base_row,
                                    NodeId u,
                                    std::vector<NodeId>* scratch) const;

 private:
  std::unordered_map<NodeId, NodeDelta> deltas_;
  size_t delta_arcs_ = 0;
};

}  // namespace trilist::dyn
