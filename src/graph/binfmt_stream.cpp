#include "src/graph/binfmt_stream.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/graph/binfmt_layout.h"
#include "src/util/crc32.h"

namespace trilist {

using namespace tlg;  // NOLINT(build/namespaces)

Result<TlgStreamWriter> TlgStreamWriter::Create(
    const std::string& path, uint64_t num_nodes, uint64_t num_edges,
    std::vector<TlgStreamSectionPlan> plan,
    const TlgStreamWriterOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(".tlg writing requires a little-endian "
                                  "host");
  }
  TlgStreamWriter w;
  w.path_ = path;
  w.num_nodes_ = num_nodes;
  w.num_edges_ = num_edges;
  w.fail_after_bytes_ = options.debug_fail_after_bytes;
  w.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
  if (w.fd_ < 0) {
    return Status::InvalidArgument("cannot open for writing: " + path +
                                   ": " + std::strerror(errno));
  }
  // Compute section offsets exactly as the in-memory writer does, then
  // reserve the header + directory bytes as zeros. The magic arrives
  // only in Finish(), so an interrupted stream is never a valid `.tlg`.
  uint64_t cursor =
      sizeof(FileHeader) + plan.size() * sizeof(SectionEntry);
  w.offsets_.reserve(plan.size());
  for (const TlgStreamSectionPlan& p : plan) {
    cursor = AlignUp8(cursor);
    w.offsets_.push_back(cursor);
    cursor += p.length;
  }
  w.crcs_.assign(plan.size(), 0);
  w.plan_ = std::move(plan);
  const std::vector<char> placeholder(
      sizeof(FileHeader) + w.plan_.size() * sizeof(SectionEntry), '\0');
  TRILIST_RETURN_NOT_OK(w.WriteRaw(placeholder.data(),
                                   placeholder.size()));
  return w;
}

Status TlgStreamWriter::WriteRaw(const void* data, size_t len) {
  if (fail_after_bytes_ != 0 && file_bytes_ + len > fail_after_bytes_) {
    return Status::Internal("write failed: " + path_ +
                            ": No space left on device (injected)");
  }
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t got = ::write(fd_, p + done, len - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write failed: " + path_ + ": " +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(got);
  }
  file_bytes_ += len;
  return Status::OK();
}

Status TlgStreamWriter::WriteRawAt(const void* data, size_t len,
                                   uint64_t offset) {
  if (fail_after_bytes_ != 0 && file_bytes_ + len > fail_after_bytes_) {
    return Status::Internal("write failed: " + path_ +
                            ": No space left on device (injected)");
  }
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t got = ::pwrite(fd_, p + done, len - done,
                                 static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("write failed: " + path_ + ": " +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(got);
  }
  file_bytes_ += len;
  return Status::OK();
}

Status TlgStreamWriter::Append(const void* data, size_t len) {
  if (fd_ < 0 || finished_) {
    return Status::Internal("TlgStreamWriter: append after close");
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    if (current_ >= plan_.size()) {
      return Status::InvalidArgument(
          "TlgStreamWriter: appended past the planned sections");
    }
    if (plan_[current_].length == 0) {
      ++current_;
      continue;
    }
    // Entering a fresh section: pad the file cursor up to the aligned
    // offset the directory was laid out with.
    if (in_section_ == 0) {
      const uint64_t pos =
          static_cast<uint64_t>(::lseek(fd_, 0, SEEK_CUR));
      if (pos < offsets_[current_]) {
        static constexpr char kPad[8] = {0};
        TRILIST_RETURN_NOT_OK(WriteRaw(kPad, offsets_[current_] - pos));
      }
    }
    const uint64_t room = plan_[current_].length - in_section_;
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(room, len));
    TRILIST_RETURN_NOT_OK(WriteRaw(p, take));
    crcs_[current_] = Crc32Update(crcs_[current_], p, take);
    in_section_ += take;
    payload_written_ += take;
    p += take;
    len -= take;
    if (in_section_ == plan_[current_].length) {
      ++current_;
      in_section_ = 0;
    }
  }
  return Status::OK();
}

Status TlgStreamWriter::Finish() {
  if (fd_ < 0) return Status::Internal("TlgStreamWriter: double Finish");
  if (finished_) return Status::OK();
  // Complete when no section holds a partial payload and every section
  // still pending is zero-length (those never see an Append).
  bool complete = in_section_ == 0;
  for (size_t i = current_; complete && i < plan_.size(); ++i) {
    if (plan_[i].length != 0) complete = false;
  }
  if (!complete) {
    return Status::InvalidArgument(
        "TlgStreamWriter: Finish before all sections were appended");
  }

  std::vector<SectionEntry> table(plan_.size());
  for (size_t i = 0; i < plan_.size(); ++i) {
    table[i] = SectionEntry{plan_[i].type, plan_[i].aux, offsets_[i],
                            plan_[i].length, crcs_[i], 0};
  }
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.section_count = static_cast<uint32_t>(table.size());
  header.num_nodes = num_nodes_;
  header.num_edges = num_edges_;
  header.table_crc =
      Crc32Update(0, table.data(), table.size() * sizeof(SectionEntry));
  header.reserved = 0;

  // Directory first, header (with the magic) last: the file only
  // becomes recognizable once everything before it is in place.
  TRILIST_RETURN_NOT_OK(WriteRawAt(table.data(),
                                   table.size() * sizeof(SectionEntry),
                                   sizeof(FileHeader)));
  TRILIST_RETURN_NOT_OK(WriteRawAt(&header, sizeof(header), 0));
  if (::fsync(fd_) != 0) {
    return Status::Internal("fsync failed: " + path_ + ": " +
                            std::strerror(errno));
  }
  finished_ = true;
  CloseFd();
  return Status::OK();
}

void TlgStreamWriter::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TlgStreamWriter::~TlgStreamWriter() { CloseFd(); }

TlgStreamWriter::TlgStreamWriter(TlgStreamWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      num_nodes_(other.num_nodes_),
      num_edges_(other.num_edges_),
      plan_(std::move(other.plan_)),
      crcs_(std::move(other.crcs_)),
      offsets_(std::move(other.offsets_)),
      current_(other.current_),
      in_section_(other.in_section_),
      payload_written_(other.payload_written_),
      file_bytes_(other.file_bytes_),
      fail_after_bytes_(other.fail_after_bytes_),
      finished_(other.finished_) {}

TlgStreamWriter& TlgStreamWriter::operator=(
    TlgStreamWriter&& other) noexcept {
  if (this != &other) {
    CloseFd();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    num_nodes_ = other.num_nodes_;
    num_edges_ = other.num_edges_;
    plan_ = std::move(other.plan_);
    crcs_ = std::move(other.crcs_);
    offsets_ = std::move(other.offsets_);
    current_ = other.current_;
    in_section_ = other.in_section_;
    payload_written_ = other.payload_written_;
    file_bytes_ = other.file_bytes_;
    fail_after_bytes_ = other.fail_after_bytes_;
    finished_ = other.finished_;
  }
  return *this;
}

}  // namespace trilist
