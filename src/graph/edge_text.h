#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file edge_text.h
/// The tolerant edge-list chunk parser shared by the in-memory ingester
/// (src/graph/ingest.cpp) and the out-of-core conversion pipeline
/// (src/ooc/convert.cpp). Both feed newline-aligned byte ranges through
/// ParseEdgeTextChunk and compose the per-chunk tallies in input order,
/// so the two paths agree line for line on what a dataset contains —
/// same accepted records, same dropped self-loops, same error lines.
///
/// Accepts what real dataset dumps contain: '#'/'%' comments (including
/// the "# nodes N" header), blank lines, CRLF endings, tab separators,
/// and trailing columns (weights, timestamps) which are ignored.

namespace trilist {

/// A raw parsed record, endpoints as written in the input.
using RawEdgeRecord = std::pair<uint64_t, uint64_t>;

/// What one parser chunk produced. Chunks are newline-aligned slices of
/// the input, so every counter composes by summation in chunk order.
struct EdgeTextChunk {
  std::vector<RawEdgeRecord> records;  ///< self-loops already dropped
  std::vector<uint64_t> loop_ids;  ///< endpoints of dropped self-loops
  size_t lines = 0;
  size_t comment_lines = 0;
  size_t blank_lines = 0;
  size_t edges_in = 0;
  size_t self_loops = 0;
  uint64_t max_id = 0;
  bool has_header = false;
  uint64_t header_nodes = 0;
  bool has_error = false;
  size_t error_line = 0;  ///< chunk-local, 1-based
  std::string error_text;

  /// Resets the per-call output fields, keeping vector capacity — the
  /// streaming consumer reuses one chunk across the whole input.
  void Clear() {
    records.clear();
    loop_ids.clear();
    lines = 0;
    comment_lines = 0;
    blank_lines = 0;
    edges_in = 0;
    self_loops = 0;
    max_id = 0;
    has_header = false;
    header_nodes = 0;
    has_error = false;
    error_line = 0;
    error_text.clear();
  }
};

/// Parses the lines in [begin, end) into `out` (appending to its
/// tallies). `end` must be a line boundary or the end of the input.
/// Stops at the first malformed record, reporting it via has_error.
void ParseEdgeTextChunk(const char* begin, const char* end,
                        EdgeTextChunk* out);

}  // namespace trilist
