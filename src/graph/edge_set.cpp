#include "src/graph/edge_set.h"

namespace trilist {

DirectedEdgeSet::DirectedEdgeSet(const OrientedGraph& g)
    : set_(g.num_arcs()) {
  const size_t n = g.num_nodes();
  for (size_t i = 0; i < n; ++i) {
    const auto from = static_cast<NodeId>(i);
    for (NodeId to : g.OutNeighbors(from)) {
      set_.Insert(PackArc(from, to));
    }
  }
}

}  // namespace trilist
