#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

/// \file binfmt_stream.h
/// Incremental `.tlg` writer for out-of-core conversion: sections are
/// streamed through a small buffer instead of materialized in RAM, so a
/// graph much larger than memory can be serialized while the producer
/// (src/ooc/convert.h) holds only its merge buffers.
///
/// The section directory is declared up front (types and exact byte
/// lengths), payload bytes are appended strictly in directory order, and
/// per-section CRCs are folded in on the fly. The header and directory
/// are patched at Finish() — header last — so a file abandoned mid-write
/// (crash, ENOSPC, kill -9) never carries the `.tlg` magic and can never
/// load as a half-valid graph; a file truncated *after* Finish is caught
/// by the loader's bounds and CRC checks. Output is byte-identical to
/// WriteTlgFile for the same sections (both share binfmt_layout.h).

namespace trilist {

/// One planned section: its type/aux key and exact payload length.
struct TlgStreamSectionPlan {
  uint32_t type = 0;
  uint32_t aux = 0;
  uint64_t length = 0;
};

/// Writer knobs.
struct TlgStreamWriterOptions {
  /// Fault injection for tests: when > 0, every write past this many
  /// file bytes fails with an Internal status, simulating a full disk
  /// mid-stream. 0 disables.
  uint64_t debug_fail_after_bytes = 0;
};

/// \brief Streams one `.tlg` container to disk, section by section.
class TlgStreamWriter {
 public:
  /// Creates `path` (truncating) and reserves the header + directory
  /// bytes. `plan` fixes the sections in file order; every section's
  /// payload must subsequently be appended, exactly `length` bytes each.
  static Result<TlgStreamWriter> Create(
      const std::string& path, uint64_t num_nodes, uint64_t num_edges,
      std::vector<TlgStreamSectionPlan> plan,
      const TlgStreamWriterOptions& options = {});

  TlgStreamWriter() = default;
  ~TlgStreamWriter();
  TlgStreamWriter(TlgStreamWriter&& other) noexcept;
  TlgStreamWriter& operator=(TlgStreamWriter&& other) noexcept;
  TlgStreamWriter(const TlgStreamWriter&) = delete;
  TlgStreamWriter& operator=(const TlgStreamWriter&) = delete;

  /// Appends payload bytes. Bytes are attributed to sections in plan
  /// order; a call may span section boundaries (alignment padding is
  /// inserted automatically between sections). Appending more than the
  /// planned total is an error.
  Status Append(const void* data, size_t len);

  /// Payload bytes appended so far (excludes header/directory/padding).
  uint64_t payload_written() const { return payload_written_; }

  /// Completes the file: requires every planned section to be fully
  /// appended, then writes the directory (with the accumulated CRCs)
  /// and finally the header. Idempotent close; the writer is unusable
  /// afterwards.
  Status Finish();

 private:
  Status WriteRaw(const void* data, size_t len);
  Status WriteRawAt(const void* data, size_t len, uint64_t offset);
  void CloseFd();

  int fd_ = -1;
  std::string path_;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<TlgStreamSectionPlan> plan_;
  std::vector<uint32_t> crcs_;        // per section, folded on the fly
  std::vector<uint64_t> offsets_;     // absolute section offsets
  size_t current_ = 0;                // section currently being filled
  uint64_t in_section_ = 0;           // bytes appended to current section
  uint64_t payload_written_ = 0;
  uint64_t file_bytes_ = 0;           // total bytes pushed through fd
  uint64_t fail_after_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace trilist
