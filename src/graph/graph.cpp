#include "src/graph/graph.h"

#include <algorithm>

namespace trilist {

namespace {

/// Owned backing storage for a Graph built from vectors.
struct OwnedCsr {
  std::vector<size_t> offsets;
  std::vector<NodeId> neighbors;
};

}  // namespace

Graph::Graph(std::vector<size_t> offsets, std::vector<NodeId> neighbors) {
  TRILIST_DCHECK(!offsets.empty());
  TRILIST_DCHECK(offsets.back() == neighbors.size());
  auto owned = std::make_shared<OwnedCsr>(
      OwnedCsr{std::move(offsets), std::move(neighbors)});
  offsets_ = owned->offsets;
  neighbors_ = owned->neighbors;
  storage_ = std::move(owned);
}

Graph Graph::FromCsrView(std::span<const size_t> offsets,
                         std::span<const NodeId> neighbors,
                         std::shared_ptr<const void> storage) {
  TRILIST_DCHECK(!offsets.empty());
  TRILIST_DCHECK(offsets.back() == neighbors.size());
  Graph g;
  g.offsets_ = offsets;
  g.neighbors_ = neighbors;
  g.storage_ = std::move(storage);
  return g;
}

Result<Graph> Graph::FromEdges(size_t num_nodes,
                               const std::vector<Edge>& edges) {
  std::vector<size_t> offsets(num_nodes + 1, 0);
  for (const Edge& e : edges) {
    if (e.first >= num_nodes || e.second >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.first == e.second) {
      return Status::InvalidArgument("self-loop not allowed in simple graph");
    }
    ++offsets[e.first + 1];
    ++offsets[e.second + 1];
  }
  for (size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  std::vector<NodeId> neighbors(edges.size() * 2);
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    neighbors[cursor[e.first]++] = e.second;
    neighbors[cursor[e.second]++] = e.first;
  }
  for (size_t v = 0; v < num_nodes; ++v) {
    auto begin = neighbors.begin() + static_cast<int64_t>(offsets[v]);
    auto end = neighbors.begin() + static_cast<int64_t>(offsets[v + 1]);
    std::sort(begin, end);
    if (std::adjacent_find(begin, end) != end) {
      return Status::InvalidArgument("duplicate edge not allowed");
    }
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  // Probe the shorter list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto list = Neighbors(u);
  return std::binary_search(list.begin(), list.end(), v);
}

std::vector<int64_t> Graph::Degrees() const {
  std::vector<int64_t> degrees(num_nodes());
  for (size_t v = 0; v < num_nodes(); ++v) {
    degrees[v] = Degree(static_cast<NodeId>(v));
  }
  return degrees;
}

int64_t Graph::MaxDegree() const {
  int64_t best = 0;
  for (size_t v = 0; v < num_nodes(); ++v) {
    best = std::max(best, Degree(static_cast<NodeId>(v)));
  }
  return best;
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (size_t u = 0; u < num_nodes(); ++u) {
    for (NodeId v : Neighbors(static_cast<NodeId>(u))) {
      if (v > u) edges.emplace_back(static_cast<NodeId>(u), v);
    }
  }
  return edges;
}

}  // namespace trilist
