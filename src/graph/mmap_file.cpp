#include "src/graph/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace trilist {

namespace {

/// Logs the first madvise failure of the process (subsequent ones are
/// silent — the advice is a hint and the mapping still works, but a
/// systematic failure is worth one line of diagnostics instead of the
/// silence it used to get).
void LogMadviseFailureOnce(const char* what, int err) {
  static std::atomic<bool> logged{false};
  if (!logged.exchange(true)) {
    std::fprintf(stderr,
                 "trilist: madvise(%s) failed: %s "
                 "(continuing without the hint; logged once)\n",
                 what, std::strerror(err));
  }
}

/// Reads exactly `size` bytes from `fd` into `dst`, retrying on EINTR and
/// short reads. Returns false on I/O error or premature EOF.
bool ReadAll(int fd, std::byte* dst, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, dst + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // file shrank under us
    done += static_cast<size_t>(got);
  }
  return true;
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, Backing backing,
                                Advice advice) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat failed for " + path + ": " + err);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return out;
  }
  if (backing != Backing::kRead) {
    void* base =
        ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      // kEager: loading a `.tlg` touches every section once, front to
      // back (CRC + validation), so tell the kernel to read ahead
      // aggressively and start faulting pages in now. kPaged: the
      // opposite — a lazily-paging view wants no readahead at all, so
      // touching one adjacency row faults one page, not a window.
      // Advice only — a failure is logged once and changes nothing.
      switch (advice) {
        case Advice::kEager: {
          bool ok = true;
#if defined(MADV_WILLNEED)
          if (::madvise(base, out.size_, MADV_WILLNEED) != 0) {
            LogMadviseFailureOnce("WILLNEED", errno);
            ok = false;
          }
#endif
#if defined(MADV_SEQUENTIAL)
          if (::madvise(base, out.size_, MADV_SEQUENTIAL) != 0) {
            LogMadviseFailureOnce("SEQUENTIAL", errno);
            ok = false;
          }
#endif
#if defined(MADV_WILLNEED) && defined(MADV_SEQUENTIAL)
          out.applied_advice_ = ok ? "willneed+sequential" : "failed";
#else
          out.applied_advice_ = "none";
#endif
          break;
        }
        case Advice::kPaged: {
#if defined(MADV_RANDOM)
          if (::madvise(base, out.size_, MADV_RANDOM) != 0) {
            LogMadviseFailureOnce("RANDOM", errno);
            out.applied_advice_ = "failed";
          } else {
            out.applied_advice_ = "random";
          }
#else
          out.applied_advice_ = "none";
#endif
          break;
        }
        case Advice::kNone:
          break;
      }
      out.data_ = static_cast<const std::byte*>(base);
      out.mapped_ = true;
      ::close(fd);  // the mapping outlives the descriptor
      return out;
    }
    if (backing == Backing::kMmap) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("mmap failed for " + path + ": " + err);
    }
  }
  // Fallback: one contiguous read. new[] guarantees alignment suitable
  // for any fundamental type, which the .tlg section layout relies on.
  out.heap_.reset(new std::byte[out.size_]);
  if (!ReadAll(fd, out.heap_.get(), out.size_)) {
    ::close(fd);
    return Status::Internal("short read for " + path);
  }
  ::close(fd);
  out.data_ = out.heap_.get();
  return out;
}

void MmapFile::Evict(size_t offset, size_t length) const {
  if (!mapped_ || data_ == nullptr || length == 0 || offset >= size_) {
    return;
  }
#if defined(MADV_DONTNEED)
  length = std::min(length, size_ - offset);
  // Shrink to whole pages: DONTNEED on a partial page would also drop
  // bytes outside the requested range.
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = (offset + page - 1) & ~(page - 1);
  const size_t end = (offset + length) & ~(page - 1);
  if (begin >= end) return;
  if (::madvise(const_cast<std::byte*>(data_) + begin, end - begin,
                MADV_DONTNEED) != 0) {
    LogMadviseFailureOnce("DONTNEED", errno);
  }
#else
  (void)offset;
  (void)length;
#endif
}

MmapFile::~MmapFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      applied_advice_(std::exchange(other.applied_advice_, "none")),
      heap_(std::move(other.heap_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    applied_advice_ = std::exchange(other.applied_advice_, "none");
    heap_ = std::move(other.heap_);
  }
  return *this;
}

}  // namespace trilist
