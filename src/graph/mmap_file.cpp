#include "src/graph/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace trilist {

namespace {

/// Reads exactly `size` bytes from `fd` into `dst`, retrying on EINTR and
/// short reads. Returns false on I/O error or premature EOF.
bool ReadAll(int fd, std::byte* dst, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, dst + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // file shrank under us
    done += static_cast<size_t>(got);
  }
  return true;
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path, Backing backing) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Internal("fstat failed for " + path + ": " + err);
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("not a regular file: " + path);
  }
  MmapFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return out;
  }
  if (backing != Backing::kRead) {
    void* base =
        ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      // Loading a `.tlg` touches every section once, front to back
      // (CRC + validation), so tell the kernel to read ahead
      // aggressively and start faulting pages in now. Advice only —
      // failure changes nothing, and platforms without madvise skip it.
#if defined(MADV_WILLNEED)
      (void)::madvise(base, out.size_, MADV_WILLNEED);
#endif
#if defined(MADV_SEQUENTIAL)
      (void)::madvise(base, out.size_, MADV_SEQUENTIAL);
#endif
      out.data_ = static_cast<const std::byte*>(base);
      out.mapped_ = true;
      ::close(fd);  // the mapping outlives the descriptor
      return out;
    }
    if (backing == Backing::kMmap) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::Internal("mmap failed for " + path + ": " + err);
    }
  }
  // Fallback: one contiguous read. new[] guarantees alignment suitable
  // for any fundamental type, which the .tlg section layout relies on.
  out.heap_.reset(new std::byte[out.size_]);
  if (!ReadAll(fd, out.heap_.get(), out.size_)) {
    ::close(fd);
    return Status::Internal("short read for " + path);
  }
  ::close(fd);
  out.data_ = out.heap_.get();
  return out;
}

MmapFile::~MmapFile() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      heap_(std::move(other.heap_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (mapped_ && data_ != nullptr) {
      ::munmap(const_cast<std::byte*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    heap_ = std::move(other.heap_);
  }
  return *this;
}

}  // namespace trilist
