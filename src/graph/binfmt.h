#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/mmap_file.h"
#include "src/graph/oriented_graph.h"
#include "src/order/pipeline.h"
#include "src/util/status.h"

/// \file binfmt.h
/// The `.tlg` binary graph container: ingest a dataset once, then load it
/// in milliseconds, zero-copy, with preprocessing already done.
///
/// Layout (version 1, all fields little-endian, sections 8-byte aligned):
///
///   FileHeader   (40 B)  magic "TLG1\r\n\x1a\n", version, section count,
///                        n, m, CRC-32 of the section table
///   SectionEntry (32 B each)  type, aux, absolute offset, byte length,
///                        CRC-32 of the payload
///   payloads             padded to 8-byte alignment
///
/// Section types:
///   kCsrOffsets    (n+1) x u64  CSR row offsets of the undirected graph
///   kCsrNeighbors  2m x u32     sorted adjacency
///   kDegrees       n x i64      degree sequence (index = node)
///   kOrientation   cached oriented CSR, keyed by OrientSpec (O, theta):
///                  a 24-byte sub-header (permutation code, seed, arc
///                  count) followed by out/in offsets (u64) and out/in
///                  neighbor + original-of arrays (u32)
///
/// Every section is covered by a CRC-32 (src/util/crc32.h) verified at
/// load time, and the loader bounds-checks every offset, length and node
/// ID before handing out views — a corrupt or truncated file yields a
/// clean Status error, never UB. Loading goes through MmapFile, so the
/// returned Graph / OrientedGraph objects are spans into the page cache
/// pinned by a shared handle; copies of them remain valid after the
/// TlgFile itself is destroyed.

namespace trilist {

/// Options for WriteTlgFile.
struct TlgWriteOptions {
  /// Orientations to precompute and embed, each keyed by its OrientSpec.
  /// Loading a `.tlg` that caches (O, theta) skips OrderPipeline
  /// preprocessing entirely: the stored CSR is bit-identical to a fresh
  /// OrientWithSpec run by construction.
  std::vector<OrientSpec> orientations;
  /// Concurrency of the embedded orientation builds (result identical
  /// for any value; see OrientedGraph::FromLabels).
  int threads = 1;
  /// Also embed the degree-sequence section (cheap, on by default).
  bool write_degrees = true;
};

/// Serializes `g` (plus any requested cached orientations) to `path`.
/// Deterministic: the same graph and options always produce the same
/// output bytes.
Status WriteTlgFile(const Graph& g, const std::string& path,
                    const TlgWriteOptions& options = {});

/// Options for TlgFile::Open.
struct TlgLoadOptions {
  bool verify_crc = true;  ///< Check every section CRC (one linear pass).
  bool validate = true;    ///< Structural validation of offsets and IDs.
  MmapFile::Backing backing = MmapFile::Backing::kAuto;
  /// Lazily-paging open: map with MADV_RANDOM instead of eager
  /// readahead, verify only the header and section table (payload CRCs
  /// and deep CSR validation would fault every page of the file, which
  /// is exactly what this mode exists to avoid), and hand out views that
  /// demand-page. Overrides verify_crc/validate for the payloads; the
  /// header, directory bounds and table CRC are always checked. Use for
  /// graphs much larger than RAM (src/ooc) or low-latency catalog
  /// serving; the payload integrity check is deferred to first access.
  bool paged = false;
};

/// \brief A loaded `.tlg` container: the graph, its degree sequence, and
/// any cached orientations, all as zero-copy views of the mapped file.
class TlgFile {
 public:
  /// Directory entry of one section, for `trilist_cli info`.
  struct SectionInfo {
    uint32_t type = 0;
    uint32_t aux = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
    uint32_t crc32 = 0;
  };

  /// Opens and fully validates `path`. All failure modes (missing file,
  /// wrong magic, unsupported version, truncation, CRC mismatch,
  /// out-of-bounds section, malformed CSR) return a Status error.
  static Result<TlgFile> Open(const std::string& path,
                              const TlgLoadOptions& options = {});

  /// The undirected graph (a view into the mapped file; copying the
  /// Graph keeps the mapping alive).
  const Graph& graph() const { return graph_; }

  /// The stored degree sequence; empty if the section is absent.
  std::span<const int64_t> degrees() const { return degrees_; }

  /// The cached orientation for `spec`, or nullptr when not embedded.
  const OrientedGraph* FindOrientation(const OrientSpec& spec) const;

  /// Keys of all cached orientations, in file order.
  const std::vector<OrientSpec>& orientation_specs() const {
    return orientation_specs_;
  }

  /// Section directory, in file order.
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Format version of the file.
  uint32_t version() const { return version_; }
  /// True when the backing view is an actual mmap (vs the read fallback).
  bool mmap_backed() const { return file_ != nullptr && file_->is_mapped(); }
  /// Total container size in bytes.
  size_t file_size() const { return file_ != nullptr ? file_->size() : 0; }
  /// True when opened with TlgLoadOptions::paged.
  bool paged() const { return paged_; }
  /// The backing view (for advice introspection and page eviction);
  /// never null after a successful Open.
  const MmapFile* backing() const { return file_.get(); }

 private:
  std::shared_ptr<MmapFile> file_;
  bool paged_ = false;
  Graph graph_;
  std::span<const int64_t> degrees_;
  std::vector<OrientSpec> orientation_specs_;
  std::vector<OrientedGraph> orientations_;
  std::vector<SectionInfo> sections_;
  uint32_t version_ = 0;
};

/// Cheap sniff: true when `path` exists and starts with the `.tlg` magic.
/// Lets CLI subcommands accept either format through one --in flag.
bool LooksLikeTlgFile(const std::string& path);

/// Human-readable name of a section type ("csr_offsets", ...).
const char* TlgSectionTypeName(uint32_t type);

}  // namespace trilist
