#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

/// \file builder.h
/// Incremental graph construction plus factories for structured graphs
/// (cliques, stars, paths, ...) used throughout tests and examples.

namespace trilist {

/// \brief Collects edges and produces a validated simple Graph.
///
/// Duplicate and self-loop edges are detected at Build() time (via the
/// Graph validation); use Contains() for cheap best-effort dedup during
/// construction when the producer may revisit pairs.
class GraphBuilder {
 public:
  /// \param num_nodes the (fixed) node count of the graph being built.
  explicit GraphBuilder(size_t num_nodes) : num_nodes_(num_nodes) {}

  /// Number of nodes.
  size_t num_nodes() const { return num_nodes_; }
  /// Number of edges added so far.
  size_t num_edges() const { return edges_.size(); }

  /// Appends an undirected edge. Endpoints must be distinct and in range.
  void AddEdge(NodeId u, NodeId v);

  /// Validates and builds the CSR graph. The builder is consumed.
  Result<Graph> Build() &&;

 private:
  size_t num_nodes_;
  std::vector<Edge> edges_;
};

/// Complete graph K_n (every pair connected).
Graph MakeComplete(size_t n);
/// Star: node 0 connected to 1..n-1.
Graph MakeStar(size_t n);
/// Simple path 0-1-...-n-1.
Graph MakePath(size_t n);
/// Cycle 0-1-...-n-1-0 (n >= 3).
Graph MakeCycle(size_t n);
/// Graph with n nodes and no edges.
Graph MakeEmpty(size_t n);
/// Two cliques of size k sharing node 0 (tests high local clustering with
/// an articulation point).
Graph MakeBowTie(size_t k);

}  // namespace trilist
