#include "src/graph/oriented_graph.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/obs/trace.h"
#include "src/util/parallel_for.h"
#include "src/util/status.h"

namespace trilist {

namespace {

/// Owned backing storage for an OrientedGraph built from labels.
struct OwnedArrays {
  std::vector<size_t> out_offsets;
  std::vector<NodeId> out_neighbors;
  std::vector<size_t> in_offsets;
  std::vector<NodeId> in_neighbors;
  std::vector<NodeId> original_of;
};

/// Parallel CSR build: counting with per-label atomic counters, blocked
/// parallel prefix sums, fill through atomic row cursors, then a parallel
/// sort of every row. See FromLabels' header comment for the determinism
/// argument.
void BuildAdjacencyParallel(const Graph& g,
                            const std::vector<NodeId>& labels, int threads,
                            std::vector<size_t>* out_offsets,
                            std::vector<NodeId>* out_neighbors,
                            std::vector<size_t>* in_offsets,
                            std::vector<NodeId>* in_neighbors) {
  const size_t n = g.num_nodes();
  ThreadPool pool(threads);
  const auto num_chunks =
      static_cast<size_t>(pool.num_threads()) * 8;
  const size_t chunk_len = (n + num_chunks - 1) / num_chunks;
  const auto chunk_range = [&](size_t c) {
    const size_t lo = c * chunk_len;
    return std::pair<size_t, size_t>{std::min(n, lo),
                                     std::min(n, lo + chunk_len)};
  };

  // Counting pass: relaxed fetch_add per arc; sums are order-independent.
  std::unique_ptr<std::atomic<size_t>[]> out_count(
      new std::atomic<size_t>[n]);
  std::unique_ptr<std::atomic<size_t>[]> in_count(
      new std::atomic<size_t>[n]);
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      out_count[i].store(0, std::memory_order_relaxed);
      in_count[i].store(0, std::memory_order_relaxed);
    }
  });
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t v = lo; v < hi; ++v) {
      const NodeId lv = labels[v];
      for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
        if (labels[w] < lv) {
          out_count[lv].fetch_add(1, std::memory_order_relaxed);
        } else {
          in_count[lv].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Prefix sums: offsets[i + 1] = sum of counts[0..i].
  out_offsets->assign(n + 1, 0);
  in_offsets->assign(n + 1, 0);
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      (*out_offsets)[i + 1] = out_count[i].load(std::memory_order_relaxed);
      (*in_offsets)[i + 1] = in_count[i].load(std::memory_order_relaxed);
    }
  });
  ParallelInclusivePrefixSum(&pool, out_offsets);
  ParallelInclusivePrefixSum(&pool, in_offsets);
  out_neighbors->resize((*out_offsets)[n]);
  in_neighbors->resize((*in_offsets)[n]);

  // Fill pass: the counters now serve as atomic row cursors.
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      out_count[i].store((*out_offsets)[i], std::memory_order_relaxed);
      in_count[i].store((*in_offsets)[i], std::memory_order_relaxed);
    }
  });
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t v = lo; v < hi; ++v) {
      const NodeId lv = labels[v];
      for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
        const NodeId lw = labels[w];
        if (lw < lv) {
          const size_t slot =
              out_count[lv].fetch_add(1, std::memory_order_relaxed);
          (*out_neighbors)[slot] = lw;
        } else {
          const size_t slot =
              in_count[lv].fetch_add(1, std::memory_order_relaxed);
          (*in_neighbors)[slot] = lw;
        }
      }
    }
  });

  // Sort each row ascending by label (restores determinism).
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      std::sort(out_neighbors->begin() +
                    static_cast<int64_t>((*out_offsets)[i]),
                out_neighbors->begin() +
                    static_cast<int64_t>((*out_offsets)[i + 1]));
      std::sort(in_neighbors->begin() +
                    static_cast<int64_t>((*in_offsets)[i]),
                in_neighbors->begin() +
                    static_cast<int64_t>((*in_offsets)[i + 1]));
    }
  });
}

}  // namespace

OrientedGraph OrientedGraph::FromLabels(const Graph& g,
                                        const std::vector<NodeId>& labels,
                                        int threads) {
  const size_t n = g.num_nodes();
  TRILIST_DCHECK(labels.size() == n);
  auto owned = std::make_shared<OwnedArrays>();
  if (threads > 1 && n > 0) {
    owned->original_of.assign(n, 0);
    // labels is a bijection, so these writes are disjoint.
    ParallelFor(threads, static_cast<size_t>(threads), [&](size_t c) {
      const size_t chunk =
          (n + static_cast<size_t>(threads) - 1) /
          static_cast<size_t>(threads);
      const size_t lo = std::min(n, c * chunk);
      const size_t hi = std::min(n, lo + chunk);
      for (size_t v = lo; v < hi; ++v) {
        TRILIST_DCHECK(labels[v] < n);
        owned->original_of[labels[v]] = static_cast<NodeId>(v);
      }
    });
    {
      obs::TraceSpan span("orient_build");
      span.Arg("threads", static_cast<int64_t>(threads));
      span.Arg("nodes", static_cast<int64_t>(n));
      BuildAdjacencyParallel(g, labels, threads, &owned->out_offsets,
                             &owned->out_neighbors, &owned->in_offsets,
                             &owned->in_neighbors);
    }
    OrientedGraph out;
    out.out_offsets_ = owned->out_offsets;
    out.out_neighbors_ = owned->out_neighbors;
    out.in_offsets_ = owned->in_offsets;
    out.in_neighbors_ = owned->in_neighbors;
    out.original_of_ = owned->original_of;
    out.storage_ = std::move(owned);
    return out;
  }
  owned->original_of.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    TRILIST_DCHECK(labels[v] < n);
    owned->original_of[labels[v]] = static_cast<NodeId>(v);
  }

  // Counting pass over arcs in label space.
  owned->out_offsets.assign(n + 1, 0);
  owned->in_offsets.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        ++owned->out_offsets[lv + 1];
      } else {
        ++owned->in_offsets[lv + 1];
      }
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    owned->out_offsets[i] += owned->out_offsets[i - 1];
    owned->in_offsets[i] += owned->in_offsets[i - 1];
  }
  owned->out_neighbors.resize(owned->out_offsets[n]);
  owned->in_neighbors.resize(owned->in_offsets[n]);

  // Fill pass.
  std::vector<size_t> out_cursor(owned->out_offsets.begin(),
                                 owned->out_offsets.end() - 1);
  std::vector<size_t> in_cursor(owned->in_offsets.begin(),
                                owned->in_offsets.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        owned->out_neighbors[out_cursor[lv]++] = lw;
      } else {
        owned->in_neighbors[in_cursor[lv]++] = lw;
      }
    }
  }

  // Sort each row ascending by label.
  for (size_t i = 0; i < n; ++i) {
    std::sort(owned->out_neighbors.begin() +
                  static_cast<int64_t>(owned->out_offsets[i]),
              owned->out_neighbors.begin() +
                  static_cast<int64_t>(owned->out_offsets[i + 1]));
    std::sort(owned->in_neighbors.begin() +
                  static_cast<int64_t>(owned->in_offsets[i]),
              owned->in_neighbors.begin() +
                  static_cast<int64_t>(owned->in_offsets[i + 1]));
  }
  OrientedGraph out;
  out.out_offsets_ = owned->out_offsets;
  out.out_neighbors_ = owned->out_neighbors;
  out.in_offsets_ = owned->in_offsets;
  out.in_neighbors_ = owned->in_neighbors;
  out.original_of_ = owned->original_of;
  out.storage_ = std::move(owned);
  return out;
}

OrientedGraph OrientedGraph::FromCsrView(
    std::span<const size_t> out_offsets,
    std::span<const NodeId> out_neighbors,
    std::span<const size_t> in_offsets,
    std::span<const NodeId> in_neighbors,
    std::span<const NodeId> original_of,
    std::shared_ptr<const void> storage) {
  TRILIST_DCHECK(out_offsets.size() == in_offsets.size());
  TRILIST_DCHECK(!out_offsets.empty());
  TRILIST_DCHECK(out_offsets.back() == out_neighbors.size());
  TRILIST_DCHECK(in_offsets.back() == in_neighbors.size());
  OrientedGraph out;
  out.out_offsets_ = out_offsets;
  out.out_neighbors_ = out_neighbors;
  out.in_offsets_ = in_offsets;
  out.in_neighbors_ = in_neighbors;
  out.original_of_ = original_of;
  out.storage_ = std::move(storage);
  return out;
}

bool OrientedGraph::HasArc(NodeId from, NodeId to) const {
  if (to >= from) return false;
  const auto list = OutNeighbors(from);
  return std::binary_search(list.begin(), list.end(), to);
}

std::vector<int64_t> OrientedGraph::OutDegrees() const {
  std::vector<int64_t> x(num_nodes());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = OutDegree(static_cast<NodeId>(i));
  }
  return x;
}

std::vector<int64_t> OrientedGraph::InDegrees() const {
  std::vector<int64_t> y(num_nodes());
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = InDegree(static_cast<NodeId>(i));
  }
  return y;
}

}  // namespace trilist
