#include "src/graph/oriented_graph.h"

#include <algorithm>

#include "src/util/status.h"

namespace trilist {

OrientedGraph OrientedGraph::FromLabels(const Graph& g,
                                        const std::vector<NodeId>& labels) {
  const size_t n = g.num_nodes();
  TRILIST_DCHECK(labels.size() == n);
  OrientedGraph out;
  out.original_of_.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    TRILIST_DCHECK(labels[v] < n);
    out.original_of_[labels[v]] = static_cast<NodeId>(v);
  }

  // Counting pass over arcs in label space.
  out.out_offsets_.assign(n + 1, 0);
  out.in_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        ++out.out_offsets_[lv + 1];
      } else {
        ++out.in_offsets_[lv + 1];
      }
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    out.out_offsets_[i] += out.out_offsets_[i - 1];
    out.in_offsets_[i] += out.in_offsets_[i - 1];
  }
  out.out_neighbors_.resize(out.out_offsets_[n]);
  out.in_neighbors_.resize(out.in_offsets_[n]);

  // Fill pass.
  std::vector<size_t> out_cursor(out.out_offsets_.begin(),
                                 out.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(out.in_offsets_.begin(),
                                out.in_offsets_.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        out.out_neighbors_[out_cursor[lv]++] = lw;
      } else {
        out.in_neighbors_[in_cursor[lv]++] = lw;
      }
    }
  }

  // Sort each row ascending by label.
  for (size_t i = 0; i < n; ++i) {
    std::sort(out.out_neighbors_.begin() +
                  static_cast<int64_t>(out.out_offsets_[i]),
              out.out_neighbors_.begin() +
                  static_cast<int64_t>(out.out_offsets_[i + 1]));
    std::sort(out.in_neighbors_.begin() +
                  static_cast<int64_t>(out.in_offsets_[i]),
              out.in_neighbors_.begin() +
                  static_cast<int64_t>(out.in_offsets_[i + 1]));
  }
  return out;
}

bool OrientedGraph::HasArc(NodeId from, NodeId to) const {
  if (to >= from) return false;
  const auto list = OutNeighbors(from);
  return std::binary_search(list.begin(), list.end(), to);
}

std::vector<int64_t> OrientedGraph::OutDegrees() const {
  std::vector<int64_t> x(num_nodes());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = OutDegree(static_cast<NodeId>(i));
  }
  return x;
}

std::vector<int64_t> OrientedGraph::InDegrees() const {
  std::vector<int64_t> y(num_nodes());
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = InDegree(static_cast<NodeId>(i));
  }
  return y;
}

}  // namespace trilist
