#include "src/graph/oriented_graph.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "src/util/parallel_for.h"
#include "src/util/status.h"

namespace trilist {

namespace {

/// Parallel CSR build: counting with per-label atomic counters, blocked
/// parallel prefix sums, fill through atomic row cursors, then a parallel
/// sort of every row. See FromLabels' header comment for the determinism
/// argument.
void BuildAdjacencyParallel(const Graph& g,
                            const std::vector<NodeId>& labels, int threads,
                            std::vector<size_t>* out_offsets,
                            std::vector<NodeId>* out_neighbors,
                            std::vector<size_t>* in_offsets,
                            std::vector<NodeId>* in_neighbors) {
  const size_t n = g.num_nodes();
  ThreadPool pool(threads);
  const auto num_chunks =
      static_cast<size_t>(pool.num_threads()) * 8;
  const size_t chunk_len = (n + num_chunks - 1) / num_chunks;
  const auto chunk_range = [&](size_t c) {
    const size_t lo = c * chunk_len;
    return std::pair<size_t, size_t>{std::min(n, lo),
                                     std::min(n, lo + chunk_len)};
  };

  // Counting pass: relaxed fetch_add per arc; sums are order-independent.
  std::unique_ptr<std::atomic<size_t>[]> out_count(
      new std::atomic<size_t>[n]);
  std::unique_ptr<std::atomic<size_t>[]> in_count(
      new std::atomic<size_t>[n]);
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      out_count[i].store(0, std::memory_order_relaxed);
      in_count[i].store(0, std::memory_order_relaxed);
    }
  });
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t v = lo; v < hi; ++v) {
      const NodeId lv = labels[v];
      for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
        if (labels[w] < lv) {
          out_count[lv].fetch_add(1, std::memory_order_relaxed);
        } else {
          in_count[lv].fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Prefix sums: offsets[i + 1] = sum of counts[0..i].
  out_offsets->assign(n + 1, 0);
  in_offsets->assign(n + 1, 0);
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      (*out_offsets)[i + 1] = out_count[i].load(std::memory_order_relaxed);
      (*in_offsets)[i + 1] = in_count[i].load(std::memory_order_relaxed);
    }
  });
  ParallelInclusivePrefixSum(&pool, out_offsets);
  ParallelInclusivePrefixSum(&pool, in_offsets);
  out_neighbors->resize((*out_offsets)[n]);
  in_neighbors->resize((*in_offsets)[n]);

  // Fill pass: the counters now serve as atomic row cursors.
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      out_count[i].store((*out_offsets)[i], std::memory_order_relaxed);
      in_count[i].store((*in_offsets)[i], std::memory_order_relaxed);
    }
  });
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t v = lo; v < hi; ++v) {
      const NodeId lv = labels[v];
      for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
        const NodeId lw = labels[w];
        if (lw < lv) {
          const size_t slot =
              out_count[lv].fetch_add(1, std::memory_order_relaxed);
          (*out_neighbors)[slot] = lw;
        } else {
          const size_t slot =
              in_count[lv].fetch_add(1, std::memory_order_relaxed);
          (*in_neighbors)[slot] = lw;
        }
      }
    }
  });

  // Sort each row ascending by label (restores determinism).
  pool.ParallelFor(num_chunks, [&](size_t c) {
    const auto [lo, hi] = chunk_range(c);
    for (size_t i = lo; i < hi; ++i) {
      std::sort(out_neighbors->begin() +
                    static_cast<int64_t>((*out_offsets)[i]),
                out_neighbors->begin() +
                    static_cast<int64_t>((*out_offsets)[i + 1]));
      std::sort(in_neighbors->begin() +
                    static_cast<int64_t>((*in_offsets)[i]),
                in_neighbors->begin() +
                    static_cast<int64_t>((*in_offsets)[i + 1]));
    }
  });
}

}  // namespace

OrientedGraph OrientedGraph::FromLabels(const Graph& g,
                                        const std::vector<NodeId>& labels,
                                        int threads) {
  const size_t n = g.num_nodes();
  TRILIST_DCHECK(labels.size() == n);
  OrientedGraph out;
  if (threads > 1 && n > 0) {
    out.original_of_.assign(n, 0);
    // labels is a bijection, so these writes are disjoint.
    ParallelFor(threads, static_cast<size_t>(threads), [&](size_t c) {
      const size_t chunk =
          (n + static_cast<size_t>(threads) - 1) /
          static_cast<size_t>(threads);
      const size_t lo = std::min(n, c * chunk);
      const size_t hi = std::min(n, lo + chunk);
      for (size_t v = lo; v < hi; ++v) {
        TRILIST_DCHECK(labels[v] < n);
        out.original_of_[labels[v]] = static_cast<NodeId>(v);
      }
    });
    BuildAdjacencyParallel(g, labels, threads, &out.out_offsets_,
                           &out.out_neighbors_, &out.in_offsets_,
                           &out.in_neighbors_);
    return out;
  }
  out.original_of_.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    TRILIST_DCHECK(labels[v] < n);
    out.original_of_[labels[v]] = static_cast<NodeId>(v);
  }

  // Counting pass over arcs in label space.
  out.out_offsets_.assign(n + 1, 0);
  out.in_offsets_.assign(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        ++out.out_offsets_[lv + 1];
      } else {
        ++out.in_offsets_[lv + 1];
      }
    }
  }
  for (size_t i = 1; i <= n; ++i) {
    out.out_offsets_[i] += out.out_offsets_[i - 1];
    out.in_offsets_[i] += out.in_offsets_[i - 1];
  }
  out.out_neighbors_.resize(out.out_offsets_[n]);
  out.in_neighbors_.resize(out.in_offsets_[n]);

  // Fill pass.
  std::vector<size_t> out_cursor(out.out_offsets_.begin(),
                                 out.out_offsets_.end() - 1);
  std::vector<size_t> in_cursor(out.in_offsets_.begin(),
                                out.in_offsets_.end() - 1);
  for (size_t v = 0; v < n; ++v) {
    const NodeId lv = labels[v];
    for (NodeId w : g.Neighbors(static_cast<NodeId>(v))) {
      const NodeId lw = labels[w];
      if (lw < lv) {
        out.out_neighbors_[out_cursor[lv]++] = lw;
      } else {
        out.in_neighbors_[in_cursor[lv]++] = lw;
      }
    }
  }

  // Sort each row ascending by label.
  for (size_t i = 0; i < n; ++i) {
    std::sort(out.out_neighbors_.begin() +
                  static_cast<int64_t>(out.out_offsets_[i]),
              out.out_neighbors_.begin() +
                  static_cast<int64_t>(out.out_offsets_[i + 1]));
    std::sort(out.in_neighbors_.begin() +
                  static_cast<int64_t>(out.in_offsets_[i]),
              out.in_neighbors_.begin() +
                  static_cast<int64_t>(out.in_offsets_[i + 1]));
  }
  return out;
}

bool OrientedGraph::HasArc(NodeId from, NodeId to) const {
  if (to >= from) return false;
  const auto list = OutNeighbors(from);
  return std::binary_search(list.begin(), list.end(), to);
}

std::vector<int64_t> OrientedGraph::OutDegrees() const {
  std::vector<int64_t> x(num_nodes());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = OutDegree(static_cast<NodeId>(i));
  }
  return x;
}

std::vector<int64_t> OrientedGraph::InDegrees() const {
  std::vector<int64_t> y(num_nodes());
  for (size_t i = 0; i < y.size(); ++i) {
    y[i] = InDegree(static_cast<NodeId>(i));
  }
  return y;
}

}  // namespace trilist
