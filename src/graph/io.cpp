#include "src/graph/io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace trilist {

void WriteEdgeList(const Graph& g, std::ostream* out) {
  *out << "# nodes " << g.num_nodes() << "\n";
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(static_cast<NodeId>(u))) {
      if (v > u) *out << u << " " << v << "\n";
    }
  }
}

Result<Graph> ReadEdgeList(std::istream* in) {
  std::vector<Edge> edges;
  size_t num_nodes = 0;
  bool explicit_nodes = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#' || line[0] == '%') {
      std::istringstream header(line.substr(1));
      std::string word;
      if (header >> word && word == "nodes") {
        size_t n = 0;
        if (header >> n) {
          num_nodes = n;
          explicit_nodes = true;
        }
      }
      continue;
    }
    std::istringstream fields(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(fields >> u >> v)) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + ": '" +
                                     line + "'");
    }
    const uint64_t id_limit = std::numeric_limits<NodeId>::max();
    if (u >= id_limit || v >= id_limit) {
      return Status::OutOfRange("node ID too large at line " +
                                std::to_string(line_no));
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (!explicit_nodes) {
      num_nodes = std::max({num_nodes, static_cast<size_t>(u) + 1,
                            static_cast<size_t>(v) + 1});
    }
  }
  return Graph::FromEdges(num_nodes, edges);
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  WriteEdgeList(g, &out);
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return ReadEdgeList(&in);
}

}  // namespace trilist
