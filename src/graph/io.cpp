#include "src/graph/io.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace trilist {

namespace {

/// Trims trailing whitespace (space, tab, CR) in place — the tolerant
/// mode's answer to CRLF files and padded columns.
void TrimTrailing(std::string* line) {
  while (!line->empty()) {
    const char c = line->back();
    if (c == '\r' || c == ' ' || c == '\t') {
      line->pop_back();
    } else {
      break;
    }
  }
}

bool IsBlank(const std::string& line) {
  return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

std::string IngestStats::Summary() const {
  std::ostringstream out;
  out << lines << " lines (" << comment_lines << " comments, "
      << blank_lines << " blank), " << edges_in << " edge records -> "
      << num_edges << " edges over " << num_nodes << " nodes";
  if (self_loops_dropped > 0 || duplicates_dropped > 0) {
    out << " (dropped " << self_loops_dropped << " self-loops, "
        << duplicates_dropped << " duplicates)";
  }
  if (relabeled) {
    out << ", sparse IDs relabeled (max input ID " << max_input_id << ")";
  }
  return out.str();
}

void WriteEdgeList(const Graph& g, std::ostream* out) {
  *out << "# nodes " << g.num_nodes() << "\n";
  for (size_t u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(static_cast<NodeId>(u))) {
      if (v > u) *out << u << " " << v << "\n";
    }
  }
}

Result<Graph> ReadEdgeList(std::istream* in, EdgeListMode mode,
                           IngestStats* stats) {
  const bool tolerant = mode == EdgeListMode::kTolerant;
  IngestStats local;
  std::vector<Edge> edges;
  size_t num_nodes = 0;
  bool explicit_nodes = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    ++local.lines;
    if (tolerant) TrimTrailing(&line);
    if (line.empty() || (tolerant && IsBlank(line))) {
      ++local.blank_lines;
      continue;
    }
    if (line[0] == '#' || line[0] == '%') {
      ++local.comment_lines;
      std::istringstream header(line.substr(1));
      std::string word;
      if (header >> word && word == "nodes") {
        size_t n = 0;
        if (header >> n) {
          num_nodes = n;
          explicit_nodes = true;
        }
      }
      continue;
    }
    std::istringstream fields(line);
    uint64_t u = 0;
    uint64_t v = 0;
    if (!(fields >> u >> v)) {
      return Status::InvalidArgument("malformed edge at line " +
                                     std::to_string(line_no) + ": '" +
                                     line + "'");
    }
    ++local.edges_in;
    local.max_input_id = std::max({local.max_input_id, u, v});
    const uint64_t id_limit = std::numeric_limits<NodeId>::max();
    if (u >= id_limit || v >= id_limit) {
      return Status::OutOfRange("node ID too large at line " +
                                std::to_string(line_no));
    }
    // The endpoint extends the implicit node count even when the record
    // itself is a dropped self-loop, so `5 5` keeps node 5 as isolated.
    if (!explicit_nodes) {
      num_nodes = std::max({num_nodes, static_cast<size_t>(u) + 1,
                            static_cast<size_t>(v) + 1});
    }
    if (tolerant && u == v) {
      ++local.self_loops_dropped;
      continue;
    }
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (tolerant) {
    // Canonicalize (min, max), then sort + unique to drop duplicates
    // regardless of the direction they were written in.
    for (Edge& e : edges) {
      if (e.first > e.second) std::swap(e.first, e.second);
    }
    std::sort(edges.begin(), edges.end());
    const auto last = std::unique(edges.begin(), edges.end());
    local.duplicates_dropped =
        static_cast<size_t>(edges.end() - last);
    edges.erase(last, edges.end());
  }
  local.num_nodes = num_nodes;
  local.num_edges = edges.size();
  if (stats != nullptr) *stats = local;
  return Graph::FromEdges(num_nodes, edges);
}

Status WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  WriteEdgeList(g, &out);
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<Graph> ReadEdgeListFile(const std::string& path, EdgeListMode mode,
                               IngestStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  return ReadEdgeList(&in, mode, stats);
}

}  // namespace trilist
