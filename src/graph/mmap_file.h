#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "src/util/status.h"

/// \file mmap_file.h
/// RAII read-only file mapping for zero-copy graph loading.
///
/// The `.tlg` loader (src/graph/binfmt.h) maps the container and hands out
/// spans pointing straight into the page cache, so a multi-gigabyte graph
/// "loads" in the time it takes to validate its checksums. When mmap is
/// unavailable (special files, exotic filesystems) — or when explicitly
/// requested for testing — the file is read into an 8-byte-aligned heap
/// buffer instead; callers see the same `bytes()` span either way.

namespace trilist {

/// \brief Read-only byte view of a file, mmap-backed when possible.
class MmapFile {
 public:
  /// How to back the view.
  enum class Backing {
    kAuto,  ///< Try mmap, silently fall back to read() on failure.
    kMmap,  ///< mmap only; Open fails if the file cannot be mapped.
    kRead,  ///< Plain read() into a heap buffer (fallback path, testable).
  };

  /// Opens `path` and materializes its contents. Rejects directories and
  /// other non-regular files; an empty file yields an empty span.
  static Result<MmapFile> Open(const std::string& path,
                               Backing backing = Backing::kAuto);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The whole file. Mmap-backed spans are page-aligned; heap-backed
  /// spans are aligned to at least alignof(std::max_align_t).
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  /// File size in bytes.
  size_t size() const { return size_; }
  /// True when the view is an actual memory mapping (zero-copy).
  bool is_mapped() const { return mapped_; }

 private:
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<std::byte[]> heap_;  ///< Owns the read() fallback buffer.
};

}  // namespace trilist
