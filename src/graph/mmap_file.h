#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "src/util/status.h"

/// \file mmap_file.h
/// RAII read-only file mapping for zero-copy graph loading.
///
/// The `.tlg` loader (src/graph/binfmt.h) maps the container and hands out
/// spans pointing straight into the page cache, so a multi-gigabyte graph
/// "loads" in the time it takes to validate its checksums. When mmap is
/// unavailable (special files, exotic filesystems) — or when explicitly
/// requested for testing — the file is read into an 8-byte-aligned heap
/// buffer instead; callers see the same `bytes()` span either way.

namespace trilist {

/// \brief Read-only byte view of a file, mmap-backed when possible.
class MmapFile {
 public:
  /// How to back the view.
  enum class Backing {
    kAuto,  ///< Try mmap, silently fall back to read() on failure.
    kMmap,  ///< mmap only; Open fails if the file cannot be mapped.
    kRead,  ///< Plain read() into a heap buffer (fallback path, testable).
  };

  /// Access-pattern hint applied to a fresh mapping (madvise).
  enum class Advice {
    kEager,   ///< MADV_WILLNEED + MADV_SEQUENTIAL: fault everything now
              ///< (the eager `.tlg` load touches every section once).
    kPaged,   ///< MADV_RANDOM: demand-page, no readahead — lazily paging
              ///< catalog entries and out-of-core counting.
    kNone,    ///< No hint.
  };

  /// Opens `path` and materializes its contents. Rejects directories and
  /// other non-regular files; an empty file yields an empty span.
  /// `advice` applies to mmap-backed views only; if the kernel rejects
  /// the hint the failure is logged once per process (the view still
  /// works, just without the hint) and `applied_advice()` says so.
  static Result<MmapFile> Open(const std::string& path,
                               Backing backing = Backing::kAuto,
                               Advice advice = Advice::kEager);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The whole file. Mmap-backed spans are page-aligned; heap-backed
  /// spans are aligned to at least alignof(std::max_align_t).
  std::span<const std::byte> bytes() const { return {data_, size_}; }
  /// File size in bytes.
  size_t size() const { return size_; }
  /// True when the view is an actual memory mapping (zero-copy).
  bool is_mapped() const { return mapped_; }

  /// The madvise hints actually in effect on this view, for
  /// introspection (`trilist_cli info`): "willneed+sequential", "random",
  /// "none" (no hint requested, heap-backed, or platform lacks madvise),
  /// or "failed" when the kernel rejected the requested hint.
  const char* applied_advice() const { return applied_advice_; }

  /// Drops the resident pages of `[offset, offset + length)` from this
  /// view (MADV_DONTNEED on the containing whole pages; partial pages at
  /// the edges stay). File-backed read-only pages refault from the page
  /// cache or disk on next access, so this is purely an RSS release —
  /// the out-of-core counter calls it behind its streaming cursor to
  /// stay under its memory budget. No-op for heap-backed views.
  void Evict(size_t offset, size_t length) const;

 private:
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  const char* applied_advice_ = "none";
  std::unique_ptr<std::byte[]> heap_;  ///< Owns the read() fallback buffer.
};

}  // namespace trilist
