#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/io.h"
#include "src/util/status.h"

/// \file ingest.h
/// Tolerant, chunked, parallel text-edge-list ingestion — the front door
/// for real datasets (SNAP, KONECT, WebGraph dumps) whose files routinely
/// contain duplicate edges (often once per direction), self-loops, sparse
/// or huge node IDs, CRLF endings, tab separators and trailing columns
/// (weights, timestamps).
///
/// The input is split at newline boundaries into chunks parsed in
/// parallel (src/util/parallel_for.h) with std::from_chars; normalization
/// (compact relabeling of sparse IDs, canonicalization, deduplication,
/// self-loop removal) is deterministic for every thread count, so the
/// same input bytes always produce the same Graph — the property the
/// `convert` CLI relies on for reproducible `.tlg` artifacts. Dropped
/// self-loops still contribute their endpoint to the node universe, so a
/// node incident only to self-loops survives as an isolated node.
///
/// A "# nodes N" (or "% nodes N") header is honored when the input IDs
/// are already compact within [0, N), preserving isolated nodes; sparse
/// inputs are relabeled by ascending original ID and the header ignored.

namespace trilist {

/// Knobs for the ingester.
struct IngestOptions {
  /// Parser concurrency; <= 1 runs single-threaded. The result is
  /// identical for any value.
  int threads = 1;
};

/// A normalized graph plus the provenance needed to interpret it.
struct IngestedGraph {
  Graph graph;
  /// original_id[v] = the input's node ID for compact node v, ascending.
  /// Identity (0..n-1) when the input was already compact.
  std::vector<uint64_t> original_id;
  IngestStats stats;
};

/// Ingests an in-memory edge-list text. Lines must be '\n'-separated
/// ('\r\n' accepted); a record is two unsigned integers, any further
/// fields on the line are ignored. Malformed records are InvalidArgument
/// with a line number.
Result<IngestedGraph> IngestEdgeList(std::string_view text,
                                     const IngestOptions& options = {});

/// File variant: maps the file read-only (falling back to read(); see
/// src/graph/mmap_file.h) and ingests it without copying the text.
Result<IngestedGraph> IngestEdgeListFile(const std::string& path,
                                         const IngestOptions& options = {});

}  // namespace trilist
