#pragma once

#include <cstdint>
#include <cstddef>

#include "src/order/named_orders.h"

/// \file binfmt_layout.h
/// On-disk layout of the `.tlg` container (version 1), shared by the
/// in-memory writer/loader (src/graph/binfmt.cpp) and the streaming
/// writer (src/graph/binfmt_stream.h) so the two paths cannot drift: a
/// graph serialized by either writer is byte-identical given the same
/// sections. Internal header — the public API stays in binfmt.h.
///
/// All fields are little-endian; sections are 8-byte aligned within the
/// file and located through the directory, never by position.

namespace trilist::tlg {

inline constexpr char kMagic[8] = {'T', 'L', 'G', '1',
                                   '\r', '\n', '\x1a', '\n'};
inline constexpr uint32_t kVersion = 1;

// Section types.
inline constexpr uint32_t kSecCsrOffsets = 1;
inline constexpr uint32_t kSecCsrNeighbors = 2;
inline constexpr uint32_t kSecDegrees = 3;
inline constexpr uint32_t kSecOrientation = 4;

/// 40-byte file header. Field types are chosen so the struct has no
/// padding; the static_asserts pin the on-disk ABI.
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t num_nodes;
  uint64_t num_edges;
  uint32_t table_crc;  ///< CRC-32 of the section-table bytes.
  uint32_t reserved;
};
static_assert(sizeof(FileHeader) == 40, ".tlg header ABI");

/// 32-byte section directory entry.
struct SectionEntry {
  uint32_t type;
  uint32_t aux;      ///< Orientation slot index; 0 elsewhere.
  uint64_t offset;   ///< Absolute, 8-byte aligned.
  uint64_t length;   ///< Payload bytes (excludes alignment padding).
  uint32_t crc32;    ///< CRC-32 of the payload.
  uint32_t reserved;
};
static_assert(sizeof(SectionEntry) == 32, ".tlg section entry ABI");

/// 24-byte sub-header of an orientation section.
struct OrientHeader {
  uint32_t perm_code;  ///< Stable on-disk code, see PermKindToCode.
  uint32_t reserved;
  uint64_t seed;       ///< Meaningful for the uniform order only.
  uint64_t num_arcs;
};
static_assert(sizeof(OrientHeader) == 24, ".tlg orientation header ABI");

/// Stable on-disk permutation codes — deliberately decoupled from the
/// PermutationKind enum values so reordering the enum cannot silently
/// change the format.
inline uint32_t PermKindToCode(PermutationKind kind) {
  switch (kind) {
    case PermutationKind::kAscending: return 1;
    case PermutationKind::kDescending: return 2;
    case PermutationKind::kRoundRobin: return 3;
    case PermutationKind::kComplementaryRoundRobin: return 4;
    case PermutationKind::kUniform: return 5;
    case PermutationKind::kDegenerate: return 6;
    case PermutationKind::kAot: return 7;
    case PermutationKind::kSplit: return 8;
  }
  return 0;
}

inline bool PermKindFromCode(uint32_t code, PermutationKind* out) {
  switch (code) {
    case 1: *out = PermutationKind::kAscending; return true;
    case 2: *out = PermutationKind::kDescending; return true;
    case 3: *out = PermutationKind::kRoundRobin; return true;
    case 4: *out = PermutationKind::kComplementaryRoundRobin; return true;
    case 5: *out = PermutationKind::kUniform; return true;
    case 6: *out = PermutationKind::kDegenerate; return true;
    case 7: *out = PermutationKind::kAot; return true;
    case 8: *out = PermutationKind::kSplit; return true;
    default: return false;
  }
}

inline size_t AlignUp8(size_t x) { return (x + 7u) & ~size_t{7}; }

/// Byte length of an orientation section for an (n, m) graph: the
/// sub-header, out/in offsets (u64), out/in neighbors (u32) and the
/// original-of map (u32).
inline uint64_t OrientationSectionLength(uint64_t n, uint64_t m) {
  return sizeof(OrientHeader) + 2 * (n + 1) * sizeof(uint64_t) +
         2 * m * sizeof(uint32_t) + n * sizeof(uint32_t);
}

}  // namespace trilist::tlg
