#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/graph/graph.h"

/// \file oriented_graph.h
/// Acyclically oriented graph after relabeling (steps 1-2 of the paper's
/// three-step framework, Section 2.1).
///
/// Every node is renamed to its label under the chosen global order; the
/// undirected edge (u, v) becomes an arc from the larger label to the
/// smaller (y -> x iff x < y). Nodes in this structure ARE labels: node i
/// of an OrientedGraph is the node whose new ID is i. Both the out-list
/// N+(i) (labels < i) and the in-list N-(i) (labels > i) are stored in CSR
/// form, sorted ascending, which is exactly the layout the 18 triangle
/// listing patterns traverse.
///
/// Like Graph, storage is span-backed: an OrientedGraph either owns its
/// arrays (FromLabels) or is a zero-copy view of a cached orientation
/// inside an mmap'ed `.tlg` container (FromCsrView), so preprocessing can
/// be skipped entirely on reload.

namespace trilist {

/// \brief Relabeled + oriented view of a simple undirected graph.
class OrientedGraph {
 public:
  OrientedGraph() = default;

  /// Builds the oriented graph from `g` and a bijective label assignment.
  /// \param g the undirected graph.
  /// \param labels labels[v] is the new ID of original node v; must be a
  ///        permutation of [0, n).
  /// \param threads concurrency of the build: with threads > 1 the degree
  ///        counting, prefix sums, adjacency fill and row sorting run on a
  ///        thread pool (see src/util/parallel_for.h). The result is
  ///        identical to the serial build for any thread count: fill order
  ///        within a row is nondeterministic but every row is sorted
  ///        afterwards, and a row's content is a set.
  static OrientedGraph FromLabels(const Graph& g,
                                  const std::vector<NodeId>& labels,
                                  int threads = 1);

  /// Zero-copy view over externally owned, already validated CSR arrays
  /// (a cached orientation section of a `.tlg` file). `storage` pins the
  /// backing memory. The caller must have verified the orientation
  /// invariants (see binfmt.cpp): out-rows sorted < i, in-rows sorted > i,
  /// original_of a permutation image of [0, n).
  static OrientedGraph FromCsrView(std::span<const size_t> out_offsets,
                                   std::span<const NodeId> out_neighbors,
                                   std::span<const size_t> in_offsets,
                                   std::span<const NodeId> in_neighbors,
                                   std::span<const NodeId> original_of,
                                   std::shared_ptr<const void> storage);

  /// Number of nodes n.
  size_t num_nodes() const {
    return out_offsets_.empty() ? 0 : out_offsets_.size() - 1;
  }
  /// Number of arcs (= undirected edges m).
  size_t num_arcs() const { return out_neighbors_.size(); }

  /// Out-neighbors N+(i): labels smaller than i, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId i) const {
    return out_neighbors_.subspan(out_offsets_[i],
                                  out_offsets_[i + 1] - out_offsets_[i]);
  }
  /// In-neighbors N-(i): labels larger than i, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId i) const {
    return in_neighbors_.subspan(in_offsets_[i],
                                 in_offsets_[i + 1] - in_offsets_[i]);
  }

  /// Out-degree X_i.
  int64_t OutDegree(NodeId i) const {
    return static_cast<int64_t>(out_offsets_[i + 1] - out_offsets_[i]);
  }
  /// In-degree Y_i.
  int64_t InDegree(NodeId i) const {
    return static_cast<int64_t>(in_offsets_[i + 1] - in_offsets_[i]);
  }
  /// Total degree d_i = X_i + Y_i.
  int64_t TotalDegree(NodeId i) const {
    return OutDegree(i) + InDegree(i);
  }

  /// Arc-existence test y -> x (requires x < y): binary search in N+(y).
  bool HasArc(NodeId from, NodeId to) const;

  /// Original node ID of label i (for reporting triangles in input IDs).
  NodeId OriginalOf(NodeId i) const { return original_of_[i]; }
  /// The label -> original map.
  std::span<const NodeId> original_of() const { return original_of_; }

  /// Out-degree vector (X_1, ..., X_n) indexed by label.
  std::vector<int64_t> OutDegrees() const;
  /// In-degree vector (Y_1, ..., Y_n) indexed by label.
  std::vector<int64_t> InDegrees() const;

  /// Raw CSR arrays, for serialization (offsets have size n+1; neighbor
  /// arrays have size m).
  std::span<const size_t> RawOutOffsets() const { return out_offsets_; }
  std::span<const size_t> RawInOffsets() const { return in_offsets_; }
  std::span<const NodeId> RawOutNeighbors() const { return out_neighbors_; }
  std::span<const NodeId> RawInNeighbors() const { return in_neighbors_; }

 private:
  std::span<const size_t> out_offsets_;
  std::span<const NodeId> out_neighbors_;
  std::span<const size_t> in_offsets_;
  std::span<const NodeId> in_neighbors_;
  std::span<const NodeId> original_of_;
  std::shared_ptr<const void> storage_;  // owns (or pins) the arrays
};

}  // namespace trilist
