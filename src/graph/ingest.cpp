#include "src/graph/ingest.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <numeric>
#include <utility>

#include "src/graph/edge_text.h"
#include "src/graph/mmap_file.h"
#include "src/obs/trace.h"
#include "src/util/parallel_for.h"

namespace trilist {

namespace {

// The chunk parser itself lives in src/graph/edge_text.h, shared with
// the out-of-core conversion pipeline (src/ooc) so both front doors
// accept exactly the same dialect.
using RawEdge = RawEdgeRecord;
using ChunkResult = EdgeTextChunk;

}  // namespace

Result<IngestedGraph> IngestEdgeList(std::string_view text,
                                     const IngestOptions& options) {
  const int threads = std::max(1, options.threads);
  const char* base = text.data();
  const size_t size = text.size();

  // Cut the input into newline-aligned chunks, one slice per unit of
  // parallelism (over-decomposed so a comment-dense region cannot stall
  // the pool).
  const size_t want_chunks =
      threads == 1 ? 1
                   : std::min<size_t>(static_cast<size_t>(threads) * 4,
                                      std::max<size_t>(1, size / 4096));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t c = 1; c < want_chunks; ++c) {
    size_t pos = size * c / want_chunks;
    if (pos <= bounds.back()) continue;
    const void* nl = std::memchr(base + pos, '\n', size - pos);
    if (nl == nullptr) break;
    pos = static_cast<size_t>(static_cast<const char*>(nl) - base) + 1;
    if (pos > bounds.back() && pos < size) bounds.push_back(pos);
  }
  bounds.push_back(size);
  const size_t num_chunks = bounds.size() - 1;

  std::vector<ChunkResult> chunks(num_chunks);
  ParallelFor(threads, num_chunks, [&](size_t c) {
    obs::TraceSpan span("ingest_chunk");
    span.Arg("chunk", static_cast<int64_t>(c));
    span.Arg("bytes", static_cast<int64_t>(bounds[c + 1] - bounds[c]));
    ParseEdgeTextChunk(base + bounds[c], base + bounds[c + 1],
                       &chunks[c]);
    span.Arg("edges", static_cast<int64_t>(chunks[c].records.size()));
  });

  // Surface the earliest malformed line with its global line number
  // (chunks before the failing one always parsed to completion).
  IngestStats stats;
  bool has_header = false;
  uint64_t header_nodes = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const ChunkResult& r = chunks[c];
    if (r.has_error) {
      return Status::InvalidArgument(
          "malformed edge at line " + std::to_string(stats.lines +
                                                     r.error_line) +
          ": '" + r.error_text + "'");
    }
    stats.lines += r.lines;
    stats.comment_lines += r.comment_lines;
    stats.blank_lines += r.blank_lines;
    stats.edges_in += r.edges_in;
    stats.self_loops_dropped += r.self_loops;
    stats.max_input_id = std::max(stats.max_input_id, r.max_id);
    if (r.has_header && !has_header) {
      has_header = true;
      header_nodes = r.header_nodes;
    }
  }

  // Concatenate the per-chunk records (chunk order keeps this
  // deterministic; the later sort makes order irrelevant anyway).
  size_t total_records = 0;
  for (const ChunkResult& r : chunks) total_records += r.records.size();
  std::vector<RawEdge> records;
  records.reserve(total_records);
  for (ChunkResult& r : chunks) {
    records.insert(records.end(), r.records.begin(), r.records.end());
    r.records.clear();
    r.records.shrink_to_fit();
  }

  // The node-ID universe: sorted distinct endpoints, including the
  // endpoints of dropped self-loops. Input is "compact" when they
  // already form a prefix of the naturals, in which case the original
  // numbering (and any header-declared isolated nodes) is kept.
  size_t total_loop_ids = 0;
  for (const ChunkResult& r : chunks) total_loop_ids += r.loop_ids.size();
  std::vector<uint64_t> ids;
  ids.reserve(records.size() * 2 + total_loop_ids);
  for (const RawEdge& e : records) {
    ids.push_back(e.first);
    ids.push_back(e.second);
  }
  for (const ChunkResult& r : chunks) {
    ids.insert(ids.end(), r.loop_ids.begin(), r.loop_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const bool compact =
      ids.empty() || (ids.front() == 0 && ids.back() == ids.size() - 1);

  size_t num_nodes = 0;
  std::vector<Edge> edges(records.size());
  if (compact) {
    num_nodes = ids.empty() ? 0 : static_cast<size_t>(ids.back()) + 1;
    if (has_header) num_nodes = std::max<size_t>(num_nodes, header_nodes);
    if (num_nodes >= std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange("graph too large for 32-bit node IDs: " +
                                std::to_string(num_nodes) + " nodes");
    }
    for (size_t i = 0; i < records.size(); ++i) {
      NodeId a = static_cast<NodeId>(records[i].first);
      NodeId b = static_cast<NodeId>(records[i].second);
      if (a > b) std::swap(a, b);
      edges[i] = {a, b};
    }
  } else {
    stats.relabeled = true;
    num_nodes = ids.size();
    if (num_nodes >= std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange("graph too large for 32-bit node IDs: " +
                                std::to_string(num_nodes) + " nodes");
    }
    // Relabel by rank of the original ID (binary search into `ids`),
    // parallel over records.
    const size_t relabel_chunks =
        std::max<size_t>(1, static_cast<size_t>(threads) * 4);
    const size_t chunk_len =
        (records.size() + relabel_chunks - 1) / relabel_chunks;
    ParallelFor(threads, relabel_chunks, [&](size_t c) {
      const size_t lo = std::min(records.size(), c * chunk_len);
      const size_t hi = std::min(records.size(), lo + chunk_len);
      for (size_t i = lo; i < hi; ++i) {
        const auto rank = [&](uint64_t id) {
          return static_cast<NodeId>(
              std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
        };
        NodeId a = rank(records[i].first);
        NodeId b = rank(records[i].second);
        if (a > b) std::swap(a, b);
        edges[i] = {a, b};
      }
    });
  }
  records.clear();
  records.shrink_to_fit();

  // Dedupe: canonical (min, max) pairs, sorted; repeats in either
  // direction collapse to one edge.
  std::sort(edges.begin(), edges.end());
  const auto last = std::unique(edges.begin(), edges.end());
  stats.duplicates_dropped = static_cast<size_t>(edges.end() - last);
  edges.erase(last, edges.end());

  auto graph = Graph::FromEdges(num_nodes, edges);
  if (!graph.ok()) return graph.status();

  IngestedGraph out;
  out.graph = std::move(graph).ValueOrDie();
  if (compact) {
    out.original_id.resize(num_nodes);
    std::iota(out.original_id.begin(), out.original_id.end(), 0u);
  } else {
    out.original_id = std::move(ids);
  }
  stats.num_nodes = out.graph.num_nodes();
  stats.num_edges = out.graph.num_edges();
  out.stats = stats;
  return out;
}

Result<IngestedGraph> IngestEdgeListFile(const std::string& path,
                                         const IngestOptions& options) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  const std::span<const std::byte> bytes = file->bytes();
  const std::string_view text(
      reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return IngestEdgeList(text, options);
}

}  // namespace trilist
