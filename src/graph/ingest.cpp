#include "src/graph/ingest.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <limits>
#include <numeric>
#include <utility>

#include "src/graph/mmap_file.h"
#include "src/obs/trace.h"
#include "src/util/parallel_for.h"

namespace trilist {

namespace {

using RawEdge = std::pair<uint64_t, uint64_t>;

/// What one parser chunk produced. Chunks are newline-aligned slices of
/// the input, so every counter composes by summation in chunk order.
struct ChunkResult {
  std::vector<RawEdge> records;  // self-loops already dropped
  std::vector<uint64_t> loop_ids;  // endpoints of dropped self-loops
  size_t lines = 0;
  size_t comment_lines = 0;
  size_t blank_lines = 0;
  size_t edges_in = 0;
  size_t self_loops = 0;
  uint64_t max_id = 0;
  bool has_header = false;
  uint64_t header_nodes = 0;
  bool has_error = false;
  size_t error_line = 0;  // chunk-local, 1-based
  std::string error_text;
};

bool IsSep(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Parses one unsigned field at `p` (within [p, end)), returns the
/// position past the field or nullptr on failure. Requires the field to
/// be terminated by whitespace or end-of-line so "12abc" is malformed.
const char* ParseField(const char* p, const char* end, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(p, end, *out);
  if (ec != std::errc() || ptr == p) return nullptr;
  if (ptr != end && !IsSep(*ptr)) return nullptr;
  return ptr;
}

/// Parses the lines in [begin, end) into `r`. `end` is a line boundary
/// (or the end of the input).
void ParseChunk(const char* begin, const char* end, ChunkResult* r) {
  const char* p = begin;
  while (p < end) {
    const char* nl =
        static_cast<const char*>(std::memchr(p, '\n', end - p));
    const char* line_end = nl != nullptr ? nl : end;
    ++r->lines;
    const char* s = p;
    while (s < line_end && IsSep(*s)) ++s;
    if (s == line_end) {
      ++r->blank_lines;
    } else if (*s == '#' || *s == '%') {
      ++r->comment_lines;
      // Recognize the "nodes N" header our own writer emits.
      ++s;
      while (s < line_end && IsSep(*s)) ++s;
      static constexpr char kWord[] = "nodes";
      if (line_end - s > 5 && std::memcmp(s, kWord, 5) == 0 &&
          IsSep(s[5])) {
        s += 5;
        while (s < line_end && IsSep(*s)) ++s;
        uint64_t n = 0;
        if (ParseField(s, line_end, &n) != nullptr) {
          r->has_header = true;
          r->header_nodes = n;
        }
      }
    } else {
      uint64_t u = 0;
      uint64_t v = 0;
      const char* after_u = ParseField(s, line_end, &u);
      const char* q = after_u;
      if (q != nullptr) {
        while (q < line_end && IsSep(*q)) ++q;
        q = ParseField(q, line_end, &v);
      }
      if (q == nullptr) {
        r->has_error = true;
        r->error_line = r->lines;
        r->error_text.assign(p, line_end);
        return;
      }
      // Anything after the second field (weights, timestamps) is ignored.
      ++r->edges_in;
      r->max_id = std::max({r->max_id, u, v});
      if (u == v) {
        ++r->self_loops;
        // The record is dropped but its endpoint still names a node, so
        // a vertex whose only incident records are self-loops survives
        // as an isolated node instead of vanishing.
        r->loop_ids.push_back(u);
      } else {
        r->records.emplace_back(u, v);
      }
    }
    if (nl == nullptr) break;
    p = nl + 1;
  }
}

}  // namespace

Result<IngestedGraph> IngestEdgeList(std::string_view text,
                                     const IngestOptions& options) {
  const int threads = std::max(1, options.threads);
  const char* base = text.data();
  const size_t size = text.size();

  // Cut the input into newline-aligned chunks, one slice per unit of
  // parallelism (over-decomposed so a comment-dense region cannot stall
  // the pool).
  const size_t want_chunks =
      threads == 1 ? 1
                   : std::min<size_t>(static_cast<size_t>(threads) * 4,
                                      std::max<size_t>(1, size / 4096));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t c = 1; c < want_chunks; ++c) {
    size_t pos = size * c / want_chunks;
    if (pos <= bounds.back()) continue;
    const void* nl = std::memchr(base + pos, '\n', size - pos);
    if (nl == nullptr) break;
    pos = static_cast<size_t>(static_cast<const char*>(nl) - base) + 1;
    if (pos > bounds.back() && pos < size) bounds.push_back(pos);
  }
  bounds.push_back(size);
  const size_t num_chunks = bounds.size() - 1;

  std::vector<ChunkResult> chunks(num_chunks);
  ParallelFor(threads, num_chunks, [&](size_t c) {
    obs::TraceSpan span("ingest_chunk");
    span.Arg("chunk", static_cast<int64_t>(c));
    span.Arg("bytes", static_cast<int64_t>(bounds[c + 1] - bounds[c]));
    ParseChunk(base + bounds[c], base + bounds[c + 1], &chunks[c]);
    span.Arg("edges", static_cast<int64_t>(chunks[c].records.size()));
  });

  // Surface the earliest malformed line with its global line number
  // (chunks before the failing one always parsed to completion).
  IngestStats stats;
  bool has_header = false;
  uint64_t header_nodes = 0;
  for (size_t c = 0; c < num_chunks; ++c) {
    const ChunkResult& r = chunks[c];
    if (r.has_error) {
      return Status::InvalidArgument(
          "malformed edge at line " + std::to_string(stats.lines +
                                                     r.error_line) +
          ": '" + r.error_text + "'");
    }
    stats.lines += r.lines;
    stats.comment_lines += r.comment_lines;
    stats.blank_lines += r.blank_lines;
    stats.edges_in += r.edges_in;
    stats.self_loops_dropped += r.self_loops;
    stats.max_input_id = std::max(stats.max_input_id, r.max_id);
    if (r.has_header && !has_header) {
      has_header = true;
      header_nodes = r.header_nodes;
    }
  }

  // Concatenate the per-chunk records (chunk order keeps this
  // deterministic; the later sort makes order irrelevant anyway).
  size_t total_records = 0;
  for (const ChunkResult& r : chunks) total_records += r.records.size();
  std::vector<RawEdge> records;
  records.reserve(total_records);
  for (ChunkResult& r : chunks) {
    records.insert(records.end(), r.records.begin(), r.records.end());
    r.records.clear();
    r.records.shrink_to_fit();
  }

  // The node-ID universe: sorted distinct endpoints, including the
  // endpoints of dropped self-loops. Input is "compact" when they
  // already form a prefix of the naturals, in which case the original
  // numbering (and any header-declared isolated nodes) is kept.
  size_t total_loop_ids = 0;
  for (const ChunkResult& r : chunks) total_loop_ids += r.loop_ids.size();
  std::vector<uint64_t> ids;
  ids.reserve(records.size() * 2 + total_loop_ids);
  for (const RawEdge& e : records) {
    ids.push_back(e.first);
    ids.push_back(e.second);
  }
  for (const ChunkResult& r : chunks) {
    ids.insert(ids.end(), r.loop_ids.begin(), r.loop_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const bool compact =
      ids.empty() || (ids.front() == 0 && ids.back() == ids.size() - 1);

  size_t num_nodes = 0;
  std::vector<Edge> edges(records.size());
  if (compact) {
    num_nodes = ids.empty() ? 0 : static_cast<size_t>(ids.back()) + 1;
    if (has_header) num_nodes = std::max<size_t>(num_nodes, header_nodes);
    if (num_nodes >= std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange("graph too large for 32-bit node IDs: " +
                                std::to_string(num_nodes) + " nodes");
    }
    for (size_t i = 0; i < records.size(); ++i) {
      NodeId a = static_cast<NodeId>(records[i].first);
      NodeId b = static_cast<NodeId>(records[i].second);
      if (a > b) std::swap(a, b);
      edges[i] = {a, b};
    }
  } else {
    stats.relabeled = true;
    num_nodes = ids.size();
    if (num_nodes >= std::numeric_limits<NodeId>::max()) {
      return Status::OutOfRange("graph too large for 32-bit node IDs: " +
                                std::to_string(num_nodes) + " nodes");
    }
    // Relabel by rank of the original ID (binary search into `ids`),
    // parallel over records.
    const size_t relabel_chunks =
        std::max<size_t>(1, static_cast<size_t>(threads) * 4);
    const size_t chunk_len =
        (records.size() + relabel_chunks - 1) / relabel_chunks;
    ParallelFor(threads, relabel_chunks, [&](size_t c) {
      const size_t lo = std::min(records.size(), c * chunk_len);
      const size_t hi = std::min(records.size(), lo + chunk_len);
      for (size_t i = lo; i < hi; ++i) {
        const auto rank = [&](uint64_t id) {
          return static_cast<NodeId>(
              std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
        };
        NodeId a = rank(records[i].first);
        NodeId b = rank(records[i].second);
        if (a > b) std::swap(a, b);
        edges[i] = {a, b};
      }
    });
  }
  records.clear();
  records.shrink_to_fit();

  // Dedupe: canonical (min, max) pairs, sorted; repeats in either
  // direction collapse to one edge.
  std::sort(edges.begin(), edges.end());
  const auto last = std::unique(edges.begin(), edges.end());
  stats.duplicates_dropped = static_cast<size_t>(edges.end() - last);
  edges.erase(last, edges.end());

  auto graph = Graph::FromEdges(num_nodes, edges);
  if (!graph.ok()) return graph.status();

  IngestedGraph out;
  out.graph = std::move(graph).ValueOrDie();
  if (compact) {
    out.original_id.resize(num_nodes);
    std::iota(out.original_id.begin(), out.original_id.end(), 0u);
  } else {
    out.original_id = std::move(ids);
  }
  stats.num_nodes = out.graph.num_nodes();
  stats.num_edges = out.graph.num_edges();
  out.stats = stats;
  return out;
}

Result<IngestedGraph> IngestEdgeListFile(const std::string& path,
                                         const IngestOptions& options) {
  auto file = MmapFile::Open(path);
  if (!file.ok()) return file.status();
  const std::span<const std::byte> bytes = file->bytes();
  const std::string_view text(
      reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return IngestEdgeList(text, options);
}

}  // namespace trilist
