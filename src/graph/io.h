#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"
#include "src/util/status.h"

/// \file io.h
/// Plain-text edge-list serialization, the lingua franca of graph datasets
/// (SNAP, KONECT, the Twitter crawl of Section 7.5 all ship this way).
///
/// Format: one "u v" pair per line, whitespace separated, 0-based IDs;
/// lines starting with '#' or '%' are comments. The node count is
/// max ID + 1 unless a "# nodes N" header is present.

namespace trilist {

/// Writes `g` as an edge list with a "# nodes N" header. Each undirected
/// edge appears once as "u v" with u < v.
void WriteEdgeList(const Graph& g, std::ostream* out);

/// Parses an edge list. Self-loops and duplicate edges are rejected
/// (InvalidArgument), matching the library's simple-graph contract.
Result<Graph> ReadEdgeList(std::istream* in);

/// Convenience file wrappers.
Status WriteEdgeListFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListFile(const std::string& path);

}  // namespace trilist
