#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/graph/graph.h"
#include "src/util/status.h"

/// \file io.h
/// Plain-text edge-list serialization, the lingua franca of graph datasets
/// (SNAP, KONECT, the Twitter crawl of Section 7.5 all ship this way).
///
/// Format: one "u v" pair per line, whitespace separated, 0-based IDs;
/// lines starting with '#' or '%' are comments. The node count is
/// max ID + 1 unless a "# nodes N" header is present.
///
/// Two parsing modes: kStrict (the default) enforces the library's
/// simple-graph contract and is the round-trip inverse of WriteEdgeList;
/// kTolerant accepts what real dataset dumps actually contain — duplicate
/// edges (either direction), self-loops, CRLF line endings, tab
/// separators, trailing whitespace — normalizing away the noise and
/// reporting what it dropped. For large files prefer the chunked parallel
/// ingester in src/graph/ingest.h, which additionally relabels sparse
/// node IDs.

namespace trilist {

/// What a tolerant parse / ingest run saw and did. All counters refer to
/// the input; `num_nodes` / `num_edges` describe the normalized output.
struct IngestStats {
  size_t lines = 0;               ///< Total input lines.
  size_t comment_lines = 0;       ///< '#'/'%' lines (headers included).
  size_t blank_lines = 0;         ///< Empty or whitespace-only lines.
  size_t edges_in = 0;            ///< Parsed "u v" records.
  size_t self_loops_dropped = 0;  ///< Records with u == v.
  size_t duplicates_dropped = 0;  ///< Repeats of an edge, either direction.
  uint64_t max_input_id = 0;      ///< Largest node ID seen in the input.
  bool relabeled = false;         ///< Input IDs were compacted to [0, n).
  size_t num_nodes = 0;           ///< Nodes in the normalized graph.
  size_t num_edges = 0;           ///< Edges in the normalized graph.

  /// One-line human-readable summary for CLI reports.
  std::string Summary() const;
};

/// Parsing strictness of ReadEdgeList.
enum class EdgeListMode {
  kStrict,    ///< Reject self-loops and duplicates (simple-graph contract).
  kTolerant,  ///< Drop self-loops/duplicates, accept CRLF/tabs/whitespace.
};

/// Writes `g` as an edge list with a "# nodes N" header. Each undirected
/// edge appears once as "u v" with u < v.
void WriteEdgeList(const Graph& g, std::ostream* out);

/// Parses an edge list. In kStrict mode self-loops and duplicate edges
/// are rejected (InvalidArgument), matching the library's simple-graph
/// contract; in kTolerant mode they are dropped and tallied in `stats`
/// (which may be null). A dropped self-loop's endpoint still counts
/// toward the implicit node count, so a node whose only incident records
/// are self-loops is kept as an isolated node. Malformed lines are
/// errors in both modes.
Result<Graph> ReadEdgeList(std::istream* in,
                           EdgeListMode mode = EdgeListMode::kStrict,
                           IngestStats* stats = nullptr);

/// Convenience file wrappers.
Status WriteEdgeListFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListFile(const std::string& path,
                               EdgeListMode mode = EdgeListMode::kStrict,
                               IngestStats* stats = nullptr);

}  // namespace trilist
