#include "src/graph/builder.h"

#include <utility>

#include "src/util/status.h"

namespace trilist {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  TRILIST_DCHECK(u != v);
  TRILIST_DCHECK(u < num_nodes_ && v < num_nodes_);
  edges_.emplace_back(u, v);
}

Result<Graph> GraphBuilder::Build() && {
  return Graph::FromEdges(num_nodes_, edges_);
}

Graph MakeComplete(size_t n) {
  GraphBuilder b(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return std::move(b).Build().ValueOrDie();
}

Graph MakeStar(size_t n) {
  GraphBuilder b(n);
  for (size_t v = 1; v < n; ++v) {
    b.AddEdge(0, static_cast<NodeId>(v));
  }
  return std::move(b).Build().ValueOrDie();
}

Graph MakePath(size_t n) {
  GraphBuilder b(n);
  for (size_t v = 1; v < n; ++v) {
    b.AddEdge(static_cast<NodeId>(v - 1), static_cast<NodeId>(v));
  }
  return std::move(b).Build().ValueOrDie();
}

Graph MakeCycle(size_t n) {
  TRILIST_DCHECK(n >= 3);
  GraphBuilder b(n);
  for (size_t v = 1; v < n; ++v) {
    b.AddEdge(static_cast<NodeId>(v - 1), static_cast<NodeId>(v));
  }
  b.AddEdge(static_cast<NodeId>(n - 1), 0);
  return std::move(b).Build().ValueOrDie();
}

Graph MakeEmpty(size_t n) {
  GraphBuilder b(n);
  return std::move(b).Build().ValueOrDie();
}

Graph MakeBowTie(size_t k) {
  TRILIST_DCHECK(k >= 2);
  // Nodes: 0 shared; 1..k-1 left clique; k..2k-2 right clique.
  const size_t n = 2 * k - 1;
  GraphBuilder b(n);
  auto add_clique = [&](size_t lo, size_t hi) {  // [lo, hi) plus node 0
    for (size_t u = lo; u < hi; ++u) {
      b.AddEdge(0, static_cast<NodeId>(u));
      for (size_t v = u + 1; v < hi; ++v) {
        b.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  };
  add_clique(1, k);
  add_clique(k, 2 * k - 1);
  return std::move(b).Build().ValueOrDie();
}

}  // namespace trilist
