#include "src/graph/edge_text.h"

#include <algorithm>
#include <charconv>
#include <cstring>

namespace trilist {

namespace {

bool IsSep(char c) { return c == ' ' || c == '\t' || c == '\r'; }

/// Parses one unsigned field at `p` (within [p, end)), returns the
/// position past the field or nullptr on failure. Requires the field to
/// be terminated by whitespace or end-of-line so "12abc" is malformed.
const char* ParseField(const char* p, const char* end, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(p, end, *out);
  if (ec != std::errc() || ptr == p) return nullptr;
  if (ptr != end && !IsSep(*ptr)) return nullptr;
  return ptr;
}

}  // namespace

void ParseEdgeTextChunk(const char* begin, const char* end,
                        EdgeTextChunk* r) {
  const char* p = begin;
  while (p < end) {
    const char* nl =
        static_cast<const char*>(std::memchr(p, '\n', end - p));
    const char* line_end = nl != nullptr ? nl : end;
    ++r->lines;
    const char* s = p;
    while (s < line_end && IsSep(*s)) ++s;
    if (s == line_end) {
      ++r->blank_lines;
    } else if (*s == '#' || *s == '%') {
      ++r->comment_lines;
      // Recognize the "nodes N" header our own writer emits.
      ++s;
      while (s < line_end && IsSep(*s)) ++s;
      static constexpr char kWord[] = "nodes";
      if (line_end - s > 5 && std::memcmp(s, kWord, 5) == 0 &&
          IsSep(s[5])) {
        s += 5;
        while (s < line_end && IsSep(*s)) ++s;
        uint64_t n = 0;
        if (ParseField(s, line_end, &n) != nullptr) {
          r->has_header = true;
          r->header_nodes = n;
        }
      }
    } else {
      uint64_t u = 0;
      uint64_t v = 0;
      const char* after_u = ParseField(s, line_end, &u);
      const char* q = after_u;
      if (q != nullptr) {
        while (q < line_end && IsSep(*q)) ++q;
        q = ParseField(q, line_end, &v);
      }
      if (q == nullptr) {
        r->has_error = true;
        r->error_line = r->lines;
        r->error_text.assign(p, line_end);
        return;
      }
      // Anything after the second field (weights, timestamps) is ignored.
      ++r->edges_in;
      r->max_id = std::max({r->max_id, u, v});
      if (u == v) {
        ++r->self_loops;
        // The record is dropped but its endpoint still names a node, so
        // a vertex whose only incident records are self-loops survives
        // as an isolated node instead of vanishing.
        r->loop_ids.push_back(u);
      } else {
        r->records.emplace_back(u, v);
      }
    }
    if (nl == nullptr) break;
    p = nl + 1;
  }
}

}  // namespace trilist
