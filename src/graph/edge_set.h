#pragma once

#include <cstdint>

#include "src/graph/oriented_graph.h"
#include "src/util/flat_hash_set.h"

/// \file edge_set.h
/// Hash-based arc-existence index over an oriented graph.
///
/// Vertex iterators (T1..T6) generate candidate arcs and "check them
/// against E(theta_n) using a hash table" (Section 2.2); lookup edge
/// iterators hash one neighbor list per node. This type is the shared
/// whole-graph variant: arcs packed as (from << 32) | to in a
/// FlatHashSet64, built once per oriented graph in O(m).

namespace trilist {

/// Packs a directed arc into a 64-bit hash key.
inline uint64_t PackArc(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

/// \brief Whole-graph directed-arc membership index.
class DirectedEdgeSet {
 public:
  /// Indexes every arc of `g` (O(m) build, <= 50% table load).
  explicit DirectedEdgeSet(const OrientedGraph& g);

  /// True iff the arc from -> to exists.
  bool Contains(NodeId from, NodeId to) const {
    return set_.Contains(PackArc(from, to));
  }

  /// Number of arcs indexed.
  size_t size() const { return set_.size(); }

 private:
  FlatHashSet64 set_;
};

}  // namespace trilist
