#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/util/status.h"

/// \file graph.h
/// Immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Adjacency lists are sorted ascending by node ID, matching the paper's
/// standing assumption (Section 2). The structure is the substrate for the
/// relabel/orient preprocessing pipeline and the 18 listing algorithms.
///
/// Storage is span-backed: a Graph either owns its CSR arrays (built from
/// edges or vectors) or is a zero-copy view into externally owned memory —
/// typically a section of an mmap'ed `.tlg` container (src/graph/binfmt.h)
/// — kept alive through a type-erased shared holder. Copies are cheap and
/// share the immutable backing storage.

namespace trilist {

/// Node identifier. 32 bits cover every graph size this library targets
/// (the paper's largest experiment graph has 4.1e7 nodes) while halving the
/// adjacency-array footprint relative to 64-bit IDs.
using NodeId = uint32_t;

/// An undirected edge as an unordered pair (stored with u < v canonically
/// by the builder, but either order is accepted as input).
using Edge = std::pair<NodeId, NodeId>;

/// \brief Immutable simple undirected graph (CSR, sorted adjacency).
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  /// Builds from an edge list. Self-loops and duplicate edges are rejected
  /// with InvalidArgument; node IDs must be < num_nodes.
  static Result<Graph> FromEdges(size_t num_nodes,
                                 const std::vector<Edge>& edges);

  /// Internal constructor from validated CSR arrays (used by builders).
  /// Takes ownership of the vectors.
  Graph(std::vector<size_t> offsets, std::vector<NodeId> neighbors);

  /// Zero-copy view over externally owned CSR arrays. `storage` keeps the
  /// backing memory (e.g. an MmapFile) alive for the Graph's lifetime and
  /// that of every copy. The caller is responsible for having validated
  /// the arrays (monotone offsets, in-range sorted rows); the `.tlg`
  /// loader does so before calling.
  static Graph FromCsrView(std::span<const size_t> offsets,
                           std::span<const NodeId> neighbors,
                           std::shared_ptr<const void> storage);

  /// Number of nodes n.
  size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges m.
  size_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree of node v.
  int64_t Degree(NodeId v) const {
    return static_cast<int64_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> Neighbors(NodeId v) const {
    return neighbors_.subspan(offsets_[v], offsets_[v + 1] - offsets_[v]);
  }

  /// Edge-existence test via binary search: O(log deg).
  bool HasEdge(NodeId u, NodeId v) const;

  /// All degrees as a vector (index = node).
  std::vector<int64_t> Degrees() const;

  /// Maximum degree, 0 for an empty graph.
  int64_t MaxDegree() const;

  /// The undirected edge list with u < v in each pair, ordered by (u, v).
  std::vector<Edge> EdgeList() const;

  /// Raw CSR arrays, for serialization (offsets has size n+1, neighbors
  /// size 2m with each row sorted ascending).
  std::span<const size_t> RawOffsets() const { return offsets_; }
  std::span<const NodeId> RawNeighbors() const { return neighbors_; }

 private:
  std::span<const size_t> offsets_;    // size n+1
  std::span<const NodeId> neighbors_;  // size 2m, each row sorted ascending
  std::shared_ptr<const void> storage_;  // owns (or pins) the arrays
};

}  // namespace trilist
