#include "src/graph/binfmt.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "src/graph/binfmt_layout.h"
#include "src/util/crc32.h"

namespace trilist {

// The on-disk structs and constants live in binfmt_layout.h, shared with
// the streaming writer (binfmt_stream.cpp) so both emit the same bytes.
using namespace tlg;  // NOLINT(build/namespaces)

namespace {

// The container is defined as little-endian with 64-bit offsets viewed
// in place as size_t; both hold on every platform this library targets.
static_assert(sizeof(size_t) == sizeof(uint64_t),
              ".tlg zero-copy loading requires 64-bit size_t");

/// Appends raw bytes to the stream and folds them into a running CRC.
void WritePiece(std::ofstream* out, uint32_t* crc, const void* data,
                size_t len) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(len));
  *crc = Crc32Update(*crc, data, len);
}

Status CorruptError(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("corrupt .tlg file " + path + ": " + what);
}

/// Bounds-checked typed view of a byte sub-range of the mapped file.
/// Alignment is guaranteed by the 8-byte section alignment plus the
/// layout of each section (64-bit arrays precede 32-bit ones).
template <typename T>
std::span<const T> TypedView(std::span<const std::byte> bytes,
                             size_t offset, size_t count) {
  return {reinterpret_cast<const T*>(bytes.data() + offset), count};
}

/// Validates one CSR half: offsets monotone from 0 to `expected_total`,
/// every row sorted strictly ascending with IDs below `num_nodes`.
Status ValidateCsr(std::span<const size_t> offsets,
                   std::span<const NodeId> neighbors, uint64_t num_nodes,
                   const std::string& path, const char* what) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size()) {
    return CorruptError(path, std::string(what) + " offsets malformed");
  }
  // Full monotonicity first: only then is offsets[i + 1] <= back() a safe
  // bound for the row scans below.
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i] > offsets[i + 1]) {
      return CorruptError(path,
                          std::string(what) + " offsets not monotone");
    }
  }
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    for (size_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      if (neighbors[j] >= num_nodes) {
        return CorruptError(path,
                            std::string(what) + " neighbor out of range");
      }
      if (j > offsets[i] && neighbors[j - 1] >= neighbors[j]) {
        return CorruptError(path,
                            std::string(what) + " row not sorted");
      }
    }
  }
  return Status::OK();
}

}  // namespace

const char* TlgSectionTypeName(uint32_t type) {
  switch (type) {
    case kSecCsrOffsets: return "csr_offsets";
    case kSecCsrNeighbors: return "csr_neighbors";
    case kSecDegrees: return "degrees";
    case kSecOrientation: return "orientation";
    default: return "unknown";
  }
}

Status WriteTlgFile(const Graph& g, const std::string& path,
                    const TlgWriteOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(".tlg writing requires a little-endian "
                                  "host");
  }
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  // A default-constructed Graph has an empty offsets array; serialize it
  // as the canonical empty graph (offsets = {0}).
  static constexpr size_t kZeroOffset = 0;
  const std::span<const size_t> g_offsets =
      g.RawOffsets().empty() ? std::span<const size_t>(&kZeroOffset, 1)
                             : g.RawOffsets();

  // Precompute the requested orientations (deterministic for any thread
  // count, so `convert` output is reproducible byte for byte).
  std::vector<OrientedGraph> oriented;
  oriented.reserve(options.orientations.size());
  for (const OrientSpec& spec : options.orientations) {
    oriented.push_back(OrientWithSpec(g, spec, options.threads));
  }
  std::vector<int64_t> degrees;
  if (options.write_degrees) degrees = g.Degrees();

  // Lay out the section directory.
  struct Plan {
    uint32_t type;
    uint32_t aux;
    uint64_t length;
  };
  std::vector<Plan> plan;
  plan.push_back({kSecCsrOffsets, 0, (n + 1) * sizeof(uint64_t)});
  plan.push_back({kSecCsrNeighbors, 0, 2 * m * sizeof(NodeId)});
  if (options.write_degrees) {
    plan.push_back({kSecDegrees, 0, n * sizeof(int64_t)});
  }
  for (size_t i = 0; i < oriented.size(); ++i) {
    const uint64_t arcs = oriented[i].num_arcs();
    const uint64_t len = sizeof(OrientHeader) +
                         2 * (n + 1) * sizeof(uint64_t) +
                         2 * arcs * sizeof(NodeId) + n * sizeof(NodeId);
    plan.push_back({kSecOrientation, static_cast<uint32_t>(i), len});
  }

  std::vector<SectionEntry> table(plan.size());
  uint64_t cursor =
      sizeof(FileHeader) + plan.size() * sizeof(SectionEntry);
  for (size_t i = 0; i < plan.size(); ++i) {
    cursor = AlignUp8(cursor);
    table[i] = SectionEntry{plan[i].type, plan[i].aux, cursor,
                            plan[i].length, 0, 0};
    cursor += plan[i].length;
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }

  // Header and table are rewritten at the end once the CRCs are known;
  // reserve their bytes now so payload offsets are final.
  const std::vector<char> table_placeholder(
      sizeof(FileHeader) + table.size() * sizeof(SectionEntry), '\0');
  out.write(table_placeholder.data(),
            static_cast<std::streamsize>(table_placeholder.size()));

  uint64_t written = table_placeholder.size();
  const char pad[8] = {0};
  size_t orient_idx = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    const uint64_t aligned = AlignUp8(written);
    out.write(pad, static_cast<std::streamsize>(aligned - written));
    written = aligned;
    uint32_t crc = 0;
    switch (table[i].type) {
      case kSecCsrOffsets:
        WritePiece(&out, &crc, g_offsets.data(), g_offsets.size_bytes());
        break;
      case kSecCsrNeighbors:
        WritePiece(&out, &crc, g.RawNeighbors().data(),
                   g.RawNeighbors().size_bytes());
        break;
      case kSecDegrees:
        WritePiece(&out, &crc, degrees.data(),
                   degrees.size() * sizeof(int64_t));
        break;
      case kSecOrientation: {
        const OrientSpec& spec = options.orientations[orient_idx];
        const OrientedGraph& og = oriented[orient_idx];
        ++orient_idx;
        const OrientHeader oh{
            PermKindToCode(spec.kind), 0,
            spec.kind == PermutationKind::kUniform ? spec.seed : 0,
            og.num_arcs()};
        WritePiece(&out, &crc, &oh, sizeof(oh));
        WritePiece(&out, &crc, og.RawOutOffsets().data(),
                   og.RawOutOffsets().size_bytes());
        WritePiece(&out, &crc, og.RawInOffsets().data(),
                   og.RawInOffsets().size_bytes());
        WritePiece(&out, &crc, og.RawOutNeighbors().data(),
                   og.RawOutNeighbors().size_bytes());
        WritePiece(&out, &crc, og.RawInNeighbors().data(),
                   og.RawInNeighbors().size_bytes());
        WritePiece(&out, &crc, og.original_of().data(),
                   og.original_of().size_bytes());
        break;
      }
    }
    table[i].crc32 = crc;
    written += table[i].length;
  }

  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.section_count = static_cast<uint32_t>(table.size());
  header.num_nodes = n;
  header.num_edges = m;
  header.table_crc =
      Crc32Update(0, table.data(), table.size() * sizeof(SectionEntry));
  header.reserved = 0;

  out.seekp(0);
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(table.data()),
            static_cast<std::streamsize>(table.size() *
                                         sizeof(SectionEntry)));
  out.flush();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

const OrientedGraph* TlgFile::FindOrientation(const OrientSpec& spec) const {
  for (size_t i = 0; i < orientation_specs_.size(); ++i) {
    if (orientation_specs_[i] == spec) return &orientations_[i];
  }
  return nullptr;
}

Result<TlgFile> TlgFile::Open(const std::string& path,
                              const TlgLoadOptions& options) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::NotImplemented(".tlg loading requires a little-endian "
                                  "host");
  }
  // Paged opens demand-page: no readahead hint, and the payload checks
  // below are skipped (they would touch every byte of the file).
  const bool paged = options.paged;
  const bool verify_crc = options.verify_crc && !paged;
  const bool validate = options.validate && !paged;
  auto file = MmapFile::Open(path, options.backing,
                             paged ? MmapFile::Advice::kPaged
                                   : MmapFile::Advice::kEager);
  if (!file.ok()) return file.status();
  TlgFile out;
  out.paged_ = paged;
  out.file_ = std::make_shared<MmapFile>(std::move(file).ValueOrDie());
  const std::span<const std::byte> bytes = out.file_->bytes();

  if (bytes.size() < sizeof(FileHeader)) {
    return CorruptError(path, "shorter than the 40-byte header");
  }
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a .tlg file (bad magic): " + path);
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument(
        "unsupported .tlg version " + std::to_string(header.version) +
        " in " + path);
  }
  out.version_ = header.version;
  const uint64_t n = header.num_nodes;
  const uint64_t m = header.num_edges;
  if (n >= std::numeric_limits<NodeId>::max()) {
    return CorruptError(path, "node count exceeds 32-bit ID space");
  }

  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) * sizeof(SectionEntry);
  if (table_bytes > bytes.size() - sizeof(FileHeader)) {
    return CorruptError(path, "section table extends past end of file");
  }
  std::vector<SectionEntry> table(header.section_count);
  std::memcpy(table.data(), bytes.data() + sizeof(FileHeader),
              table_bytes);
  // The directory CRC is always cheap (32 B per section), so paged opens
  // keep it; only the payload passes below are gated.
  if (options.verify_crc) {
    const uint32_t got = Crc32Update(0, table.data(), table_bytes);
    if (got != header.table_crc) {
      return CorruptError(path, "section table CRC mismatch");
    }
  }

  // Bounds-check every directory entry before touching any payload.
  for (const SectionEntry& e : table) {
    if (e.offset % 8 != 0) {
      return CorruptError(path, "section offset not 8-byte aligned");
    }
    if (e.offset > bytes.size() || e.length > bytes.size() - e.offset) {
      return CorruptError(path, "section extends past end of file");
    }
  }
  if (verify_crc) {
    for (const SectionEntry& e : table) {
      const uint32_t got =
          Crc32Update(0, bytes.data() + e.offset, e.length);
      if (got != e.crc32) {
        return CorruptError(
            path, std::string(TlgSectionTypeName(e.type)) +
                      " section CRC mismatch");
      }
    }
  }
  out.sections_.reserve(table.size());
  for (const SectionEntry& e : table) {
    out.sections_.push_back({e.type, e.aux, e.offset, e.length, e.crc32});
  }

  // Locate and wire the mandatory CSR sections.
  const SectionEntry* sec_offsets = nullptr;
  const SectionEntry* sec_neighbors = nullptr;
  for (const SectionEntry& e : table) {
    if (e.type == kSecCsrOffsets) sec_offsets = &e;
    if (e.type == kSecCsrNeighbors) sec_neighbors = &e;
  }
  if (sec_offsets == nullptr || sec_neighbors == nullptr) {
    return CorruptError(path, "missing CSR sections");
  }
  // Reject counts whose sections could not possibly fit in the file
  // BEFORE any length arithmetic: with m near 2^62 an expression like
  // `2 * m * sizeof(NodeId)` below (and in the orientation `want`
  // computation) wraps mod 2^64, so a forged header could otherwise
  // pass every length/bounds/CRC check with a tiny section and hand the
  // validator a ~2^62-element view (the CRC is not a defense — it is
  // trivially recomputable by an attacker).
  if (m > bytes.size() / (2 * sizeof(NodeId))) {
    return CorruptError(path, "edge count impossible for file size");
  }
  if (n + 1 > bytes.size() / sizeof(uint64_t)) {
    return CorruptError(path, "node count impossible for file size");
  }
  if (sec_offsets->length != (n + 1) * sizeof(uint64_t)) {
    return CorruptError(path, "csr_offsets length disagrees with header");
  }
  if (sec_neighbors->length != 2 * m * sizeof(NodeId)) {
    return CorruptError(path,
                        "csr_neighbors length disagrees with header");
  }
  const auto offsets =
      TypedView<size_t>(bytes, sec_offsets->offset, n + 1);
  const auto neighbors =
      TypedView<NodeId>(bytes, sec_neighbors->offset, 2 * m);
  if (validate) {
    TRILIST_RETURN_NOT_OK(
        ValidateCsr(offsets, neighbors, n, path, "graph"));
  }
  out.graph_ = Graph::FromCsrView(offsets, neighbors, out.file_);

  // Optional degree-sequence and orientation sections.
  for (const SectionEntry& e : table) {
    if (e.type == kSecDegrees) {
      if (e.length != n * sizeof(int64_t)) {
        return CorruptError(path, "degrees length disagrees with header");
      }
      out.degrees_ = TypedView<int64_t>(bytes, e.offset, n);
      if (validate) {
        for (uint64_t v = 0; v < n; ++v) {
          if (out.degrees_[v] !=
              static_cast<int64_t>(offsets[v + 1] - offsets[v])) {
            return CorruptError(path, "degrees disagree with CSR");
          }
        }
      }
    } else if (e.type == kSecOrientation) {
      if (e.length < sizeof(OrientHeader)) {
        return CorruptError(path, "orientation section too short");
      }
      OrientHeader oh;
      std::memcpy(&oh, bytes.data() + e.offset, sizeof(oh));
      PermutationKind kind;
      if (!PermKindFromCode(oh.perm_code, &kind)) {
        return CorruptError(path, "unknown orientation permutation code");
      }
      if (oh.num_arcs != m) {
        return CorruptError(path,
                            "orientation arc count disagrees with header");
      }
      const uint64_t want = sizeof(OrientHeader) +
                            2 * (n + 1) * sizeof(uint64_t) +
                            2 * m * sizeof(NodeId) + n * sizeof(NodeId);
      if (e.length != want) {
        return CorruptError(path, "orientation section length mismatch");
      }
      // 64-bit arrays first, then the 32-bit ones, so every view is
      // naturally aligned within the 8-byte-aligned section.
      uint64_t at = e.offset + sizeof(OrientHeader);
      const auto out_offsets = TypedView<size_t>(bytes, at, n + 1);
      at += (n + 1) * sizeof(uint64_t);
      const auto in_offsets = TypedView<size_t>(bytes, at, n + 1);
      at += (n + 1) * sizeof(uint64_t);
      const auto out_neighbors = TypedView<NodeId>(bytes, at, m);
      at += m * sizeof(NodeId);
      const auto in_neighbors = TypedView<NodeId>(bytes, at, m);
      at += m * sizeof(NodeId);
      const auto original_of = TypedView<NodeId>(bytes, at, n);
      if (validate) {
        TRILIST_RETURN_NOT_OK(ValidateCsr(out_offsets, out_neighbors, n,
                                          path, "orientation out"));
        TRILIST_RETURN_NOT_OK(ValidateCsr(in_offsets, in_neighbors, n,
                                          path, "orientation in"));
        for (uint64_t i = 0; i < n; ++i) {
          // The acyclic-orientation invariant the listing kernels assume:
          // out-rows below the node, in-rows above it.
          const auto row_out = out_offsets[i + 1];
          if (row_out > out_offsets[i] &&
              out_neighbors[row_out - 1] >= i) {
            return CorruptError(path, "orientation out-arc not downward");
          }
          if (in_offsets[i + 1] > in_offsets[i] &&
              in_neighbors[in_offsets[i]] <= i) {
            return CorruptError(path, "orientation in-arc not upward");
          }
          if (original_of[i] >= n) {
            return CorruptError(path,
                                "orientation original-of out of range");
          }
        }
      }
      out.orientation_specs_.push_back(OrientSpec{kind, oh.seed});
      out.orientations_.push_back(OrientedGraph::FromCsrView(
          out_offsets, out_neighbors, in_offsets, in_neighbors,
          original_of, out.file_));
    }
  }
  return out;
}

bool LooksLikeTlgFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[8];
  const bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
                  std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace trilist
