#pragma once

#include <cstdint>
#include <vector>

#include "src/algo/triangle_sink.h"
#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/graph/oriented_graph.h"

/// \file partitioned.h
/// Partitioned (out-of-core style) execution of the scanning edge
/// iterators — the extension direction the paper defers to its companion
/// work ("deciding between E1 and E2 requires modeling I/O complexity
/// under a specific graph-partitioning scheme", Section 2.3; "design of
/// better external-memory partitioning schemes, and modeling of I/O
/// complexity", Section 8).
///
/// Model: the oriented graph's out-list CSR lives on "disk". The label
/// space is split into K contiguous ranges. One *pass* per partition:
///
///   * E1-style (local = first-visited z): load partition P's out-lists
///     into RAM, then stream every node's out-list once in label order;
///     for each streamed y, complete wedges whose apex z lies in P
///     (z in N-(y) ∩ P, both lists now available).
///   * E2-style (local = middle y): load P's out-lists, stream every z's
///     out-list; for each streamed z, process its out-neighbors y that
///     fall in P.
///
/// Both produce exactly the triangles of in-memory E1/E2 and the same
/// CPU-cost counters; what changes is the I/O ledger: resident bytes are
/// loaded once per partition (sum = graph size), streamed bytes cost a
/// full scan per pass (K * graph size). The IoStats struct exposes this
/// ledger so partitioning policies can be compared quantitatively.

namespace trilist {

/// I/O ledger of a partitioned run (bytes of adjacency data moved).
struct IoStats {
  int64_t passes = 0;          ///< number of partitions processed
  int64_t bytes_loaded = 0;    ///< resident partition loads (sum = |G|)
  int64_t bytes_streamed = 0;  ///< sequential scan traffic (= passes * |G|)

  int64_t TotalBytes() const { return bytes_loaded + bytes_streamed; }
};

/// Contiguous label-range partitioning of [0, n) into at most K ranges
/// balanced by out-list volume (not node count), mirroring how disk pages
/// are sized by bytes.
class Partitioning {
 public:
  /// \param g oriented graph; \param max_partitions K (>= 1).
  Partitioning(const OrientedGraph& g, size_t max_partitions);

  /// Builds the partitioning that fits a RAM budget of `budget_bytes`
  /// for the resident lists (K = ceil(graph bytes / budget)).
  static Partitioning ForMemoryBudget(const OrientedGraph& g,
                                      int64_t budget_bytes);

  /// Number of ranges actually created (<= requested K).
  size_t num_partitions() const { return bounds_.size() - 1; }
  /// Label range of partition p: [lower(p), upper(p)).
  NodeId lower(size_t p) const { return bounds_[p]; }
  NodeId upper(size_t p) const { return bounds_[p + 1]; }

 private:
  explicit Partitioning(std::vector<NodeId> bounds)
      : bounds_(std::move(bounds)) {}
  std::vector<NodeId> bounds_;  // size num_partitions + 1
};

/// Partitioned E1: identical output and CPU counters to RunE1, plus the
/// I/O ledger in *io.
OpCounts RunPartitionedE1(const OrientedGraph& g, const Partitioning& parts,
                          TriangleSink* sink, IoStats* io);

/// Partitioned E2: identical output and CPU counters to RunE2.
OpCounts RunPartitionedE2(const OrientedGraph& g, const Partitioning& parts,
                          TriangleSink* sink, IoStats* io);

}  // namespace trilist
