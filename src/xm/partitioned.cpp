#include "src/xm/partitioned.h"

#include <algorithm>
#include <span>

#include "src/util/status.h"

namespace trilist {

namespace {

constexpr int64_t kBytesPerId = static_cast<int64_t>(sizeof(NodeId));

std::span<const NodeId> PrefixBelow(std::span<const NodeId> list,
                                    NodeId bound) {
  const auto it = std::lower_bound(list.begin(), list.end(), bound);
  return list.first(static_cast<size_t>(it - list.begin()));
}

/// Subrange of a sorted list with values in [lo, hi).
std::span<const NodeId> RangeWithin(std::span<const NodeId> list, NodeId lo,
                                    NodeId hi) {
  const auto first = std::lower_bound(list.begin(), list.end(), lo);
  const auto last = std::lower_bound(first, list.end(), hi);
  return list.subspan(static_cast<size_t>(first - list.begin()),
                      static_cast<size_t>(last - first));
}

template <typename Emit>
void MergeIntersect(std::span<const NodeId> a, std::span<const NodeId> b,
                    int64_t* comparisons, Emit&& emit) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++*comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
}

int64_t OutListBytes(const OrientedGraph& g, NodeId lo, NodeId hi) {
  int64_t bytes = 0;
  for (NodeId v = lo; v < hi; ++v) {
    bytes += g.OutDegree(v) * kBytesPerId;
  }
  return bytes;
}

}  // namespace

Partitioning::Partitioning(const OrientedGraph& g, size_t max_partitions) {
  TRILIST_DCHECK(max_partitions >= 1);
  const size_t n = g.num_nodes();
  bounds_.push_back(0);
  if (n == 0) {
    bounds_.push_back(0);
    return;
  }
  const int64_t total = OutListBytes(g, 0, static_cast<NodeId>(n));
  const int64_t target = std::max<int64_t>(
      1, (total + static_cast<int64_t>(max_partitions) - 1) /
             static_cast<int64_t>(max_partitions));
  int64_t acc = 0;
  for (size_t v = 0; v < n; ++v) {
    acc += g.OutDegree(static_cast<NodeId>(v)) * kBytesPerId;
    const bool last_node = v + 1 == n;
    if (!last_node && acc >= target &&
        bounds_.size() < max_partitions) {
      bounds_.push_back(static_cast<NodeId>(v + 1));
      acc = 0;
    }
  }
  bounds_.push_back(static_cast<NodeId>(n));
}

Partitioning Partitioning::ForMemoryBudget(const OrientedGraph& g,
                                           int64_t budget_bytes) {
  TRILIST_DCHECK(budget_bytes > 0);
  const int64_t total =
      OutListBytes(g, 0, static_cast<NodeId>(g.num_nodes()));
  const auto k = static_cast<size_t>(
      std::max<int64_t>(1, (total + budget_bytes - 1) / budget_bytes));
  return Partitioning(g, k);
}

OpCounts RunPartitionedE1(const OrientedGraph& g, const Partitioning& parts,
                          TriangleSink* sink, IoStats* io) {
  OpCounts ops;
  IoStats ledger;
  const size_t n = g.num_nodes();
  for (size_t p = 0; p < parts.num_partitions(); ++p) {
    const NodeId lo = parts.lower(p);
    const NodeId hi = parts.upper(p);
    ++ledger.passes;
    ledger.bytes_loaded += OutListBytes(g, lo, hi);
    // Stream every out-list once; complete wedges with apex z in [lo, hi).
    for (size_t yi = 0; yi < n; ++yi) {
      const auto y = static_cast<NodeId>(yi);
      const auto remote = g.OutNeighbors(y);
      ledger.bytes_streamed +=
          static_cast<int64_t>(remote.size()) * kBytesPerId;
      for (const NodeId z : RangeWithin(g.InNeighbors(y), lo, hi)) {
        const auto local = PrefixBelow(g.OutNeighbors(z), y);
        ops.local_scans += static_cast<int64_t>(local.size());
        ops.remote_scans += static_cast<int64_t>(remote.size());
        MergeIntersect(local, remote, &ops.merge_comparisons,
                       [&](NodeId x) {
                         ++ops.triangles;
                         sink->Consume(x, y, z);
                       });
      }
    }
  }
  if (io != nullptr) *io = ledger;
  return ops;
}

OpCounts RunPartitionedE2(const OrientedGraph& g, const Partitioning& parts,
                          TriangleSink* sink, IoStats* io) {
  OpCounts ops;
  IoStats ledger;
  const size_t n = g.num_nodes();
  for (size_t p = 0; p < parts.num_partitions(); ++p) {
    const NodeId lo = parts.lower(p);
    const NodeId hi = parts.upper(p);
    ++ledger.passes;
    ledger.bytes_loaded += OutListBytes(g, lo, hi);
    for (size_t zi = 0; zi < n; ++zi) {
      const auto z = static_cast<NodeId>(zi);
      const auto streamed = g.OutNeighbors(z);
      ledger.bytes_streamed +=
          static_cast<int64_t>(streamed.size()) * kBytesPerId;
      for (const NodeId y : RangeWithin(streamed, lo, hi)) {
        const auto local = g.OutNeighbors(y);  // resident
        const auto remote = PrefixBelow(streamed, y);
        ops.local_scans += static_cast<int64_t>(local.size());
        ops.remote_scans += static_cast<int64_t>(remote.size());
        MergeIntersect(local, remote, &ops.merge_comparisons,
                       [&](NodeId x) {
                         ++ops.triangles;
                         sink->Consume(x, y, z);
                       });
      }
    }
  }
  if (io != nullptr) *io = ledger;
  return ops;
}

}  // namespace trilist
