#pragma once

#include <cstdint>
#include <vector>

#include "src/algo/cost.h"
#include "src/graph/graph.h"
#include "src/order/named_orders.h"
#include "src/util/rng.h"

/// \file cost_measurement.h
/// Measuring c_n(M, theta) on realized graphs.
///
/// The paper's cost metric is a deterministic function of the oriented
/// degrees (Eqs. (7)-(9) and Tables 1-2), so once a graph is oriented the
/// measurement is an O(n) sum — no triangle listing required. This is what
/// lets the harness average over thousands of graph instances.

namespace trilist {

/// Per-node cost of each requested method under one orientation of `g`.
/// The orientation is computed once and shared across methods.
/// \param g undirected graph.
/// \param methods methods to evaluate.
/// \param kind named permutation (kUniform uses `rng`).
/// \param rng randomness for kUniform (may be null otherwise).
/// \return per-node costs, parallel to `methods`.
std::vector<double> MeasurePerNodeCosts(const Graph& g,
                                        const std::vector<Method>& methods,
                                        PermutationKind kind, Rng* rng);

/// Convenience for one method.
double MeasurePerNodeCost(const Graph& g, Method m, PermutationKind kind,
                          Rng* rng);

}  // namespace trilist
