#include "src/sim/report.h"

#include <ostream>

#include "src/degree/truncated.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace trilist {

std::string CellLabel(const ExperimentCell& cell) {
  return std::string(MethodName(cell.method)) + "+" +
         PermutationKindName(cell.order);
}

void RunAndPrintPaperTable(const PaperTableSpec& spec, std::ostream& out) {
  out << "=== " << spec.title << " ===\n";
  out << "config: alpha=" << spec.base.alpha
      << " beta=" << ResolveBeta(spec.base)
      << " truncation=" << TruncationKindName(spec.base.truncation)
      << " sequences=" << spec.base.num_sequences
      << " graphs/seq=" << spec.base.graphs_per_sequence
      << " seed=" << spec.base.seed << "\n";

  std::vector<std::string> headers = {"n"};
  for (const ExperimentCell& cell : spec.cells) {
    const std::string label = CellLabel(cell);
    if (!spec.error_only) {
      headers.push_back(label + " sim");
      headers.push_back(label + " (50)");
    }
    headers.push_back(label + " error");
  }
  TablePrinter table(headers);

  std::vector<CellResult> last_results;
  StageClock stages;
  Timer timer;
  for (size_t n : spec.sizes) {
    ExperimentConfig config = spec.base;
    config.n = n;
    const std::vector<CellResult> results =
        RunExperiment(config, spec.cells, &stages);
    std::vector<std::string> row = {FormatCount(n)};
    for (const CellResult& r : results) {
      if (!spec.error_only) {
        row.push_back(FormatNumber(r.sim.Mean(), 1));
        row.push_back(FormatNumber(r.model, 1));
      }
      row.push_back(FormatPercent(r.ErrorPercent(), 1));
    }
    table.AddRow(std::move(row));
    last_results = results;
  }
  // Asymptotic-limit row (model only; simulation undefined at n = inf).
  if (!spec.error_only && !last_results.empty()) {
    std::vector<std::string> row = {"inf"};
    for (const CellResult& r : last_results) {
      row.push_back("");
      row.push_back(FormatNumber(r.limit, 1));
      row.push_back("");
    }
    table.AddRow(std::move(row));
  }
  table.Print(out);
  out << "stages:";
  for (const StageSample& s : stages.stages()) {
    out << " " << s.name << " " << FormatNumber(s.wall_s, 2) << "s";
  }
  out << "\nelapsed: " << FormatNumber(timer.ElapsedSeconds(), 2) << "s\n\n";
}

}  // namespace trilist
