#include "src/sim/experiment.h"

#include <limits>
#include <map>

#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/pareto.h"
#include "src/run/runner.h"
#include "src/sim/cost_measurement.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace trilist {

double CellResult::ErrorPercent() const {
  // The paper's convention: (model - sim) / sim, e.g. Table 6 reports
  // -2.2% when the model sits 2.2% below the simulation.
  return RelativeErrorPercent(model, sim.Mean());
}

GenerateSpec ToGenerateSpec(const ExperimentConfig& config) {
  GenerateSpec spec;
  spec.n = config.n;
  spec.alpha = config.alpha;
  spec.beta = config.beta;
  spec.truncation = config.truncation;
  spec.strict = false;  // tolerate rare one-stub shortfalls
  return spec;
}

double ResolveBeta(const ExperimentConfig& config) {
  return ToGenerateSpec(config).ResolvedBeta();
}

std::vector<CellResult> RunExperiment(const ExperimentConfig& config,
                                      const std::vector<ExperimentCell>& cells,
                                      StageClock* stages) {
  StageClock clock;
  const GenerateSpec gen = ToGenerateSpec(config);
  const DiscretePareto base(gen.alpha, gen.ResolvedBeta());
  const int64_t t_n = TruncationPoint(gen.truncation,
                                      static_cast<int64_t>(gen.n));
  const TruncatedDistribution fn(base, t_n);

  std::vector<CellResult> results(cells.size());
  // Models are graph-independent: compute once per cell.
  clock.Time("model", [&] {
    for (size_t c = 0; c < cells.size(); ++c) {
      const XiMap xi = XiMap::FromKind(cells[c].order);
      results[c].model = ExactDiscreteCost(fn, t_n, cells[c].method, xi,
                                           config.weight);
      results[c].limit =
          IsFiniteAsymptoticCost(cells[c].method, xi, config.alpha)
              ? AsymptoticCost(base, cells[c].method, xi, config.weight)
              : std::numeric_limits<double>::infinity();
    }
  });

  // Group cells by permutation so each graph is oriented once per order.
  std::map<PermutationKind, std::vector<size_t>> by_order;
  for (size_t c = 0; c < cells.size(); ++c) {
    by_order[cells[c].order].push_back(c);
  }

  Rng master(config.seed);
  for (int s = 0; s < config.num_sequences; ++s) {
    Rng seq_rng = master.Fork();
    std::vector<int64_t> degrees = clock.Time("sample", [&] {
      return SampleGraphicDegrees(gen, &seq_rng);
    });
    for (int gi = 0; gi < config.graphs_per_sequence; ++gi) {
      Rng graph_rng = seq_rng.Fork();
      Result<Graph> graph = clock.Time("generate", [&] {
        return RealizeGraph(gen, degrees, &graph_rng);
      });
      TRILIST_DCHECK(graph.ok());
      if (!graph.ok()) continue;
      clock.Time("measure", [&] {
        for (const auto& [order, cell_ids] : by_order) {
          std::vector<Method> methods;
          methods.reserve(cell_ids.size());
          for (size_t c : cell_ids) methods.push_back(cells[c].method);
          const std::vector<double> costs =
              MeasurePerNodeCosts(*graph, methods, order, &graph_rng);
          for (size_t k = 0; k < cell_ids.size(); ++k) {
            results[cell_ids[k]].sim.Add(costs[k]);
          }
        }
      });
    }
  }
  if (stages != nullptr) stages->Merge(clock);
  return results;
}

}  // namespace trilist
