#include "src/sim/experiment.h"

#include <map>

#include <limits>

#include "src/core/discrete_model.h"
#include "src/core/fast_model.h"
#include "src/core/limits.h"
#include "src/degree/degree_sequence.h"
#include "src/degree/graphicality.h"
#include "src/degree/pareto.h"
#include "src/gen/residual_generator.h"
#include "src/sim/cost_measurement.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace trilist {

double CellResult::ErrorPercent() const {
  // The paper's convention: (model - sim) / sim, e.g. Table 6 reports
  // -2.2% when the model sits 2.2% below the simulation.
  return RelativeErrorPercent(model, sim.Mean());
}

double ResolveBeta(const ExperimentConfig& config) {
  return config.beta > 0.0 ? config.beta : 30.0 * (config.alpha - 1.0);
}

std::vector<CellResult> RunExperiment(
    const ExperimentConfig& config,
    const std::vector<ExperimentCell>& cells) {
  const double beta = ResolveBeta(config);
  const DiscretePareto base(config.alpha, beta);
  const int64_t t_n = TruncationPoint(config.truncation,
                                      static_cast<int64_t>(config.n));
  const TruncatedDistribution fn(base, t_n);

  std::vector<CellResult> results(cells.size());
  // Models are graph-independent: compute once per cell.
  for (size_t c = 0; c < cells.size(); ++c) {
    const XiMap xi = XiMap::FromKind(cells[c].order);
    results[c].model = ExactDiscreteCost(fn, t_n, cells[c].method, xi,
                                         config.weight);
    results[c].limit =
        IsFiniteAsymptoticCost(cells[c].method, xi, config.alpha)
            ? AsymptoticCost(base, cells[c].method, xi, config.weight)
            : std::numeric_limits<double>::infinity();
  }

  // Group cells by permutation so each graph is oriented once per order.
  std::map<PermutationKind, std::vector<size_t>> by_order;
  for (size_t c = 0; c < cells.size(); ++c) {
    by_order[cells[c].order].push_back(c);
  }

  Rng master(config.seed);
  for (int s = 0; s < config.num_sequences; ++s) {
    Rng seq_rng = master.Fork();
    DegreeSequence seq =
        DegreeSequence::SampleIid(fn, config.n, &seq_rng);
    std::vector<int64_t> degrees = seq.degrees();
    MakeGraphic(&degrees);
    for (int gi = 0; gi < config.graphs_per_sequence; ++gi) {
      Rng graph_rng = seq_rng.Fork();
      ResidualGenOptions gen_options;
      gen_options.strict = false;  // tolerate rare one-stub shortfalls
      Result<Graph> graph =
          GenerateExactDegree(degrees, &graph_rng, nullptr, gen_options);
      TRILIST_DCHECK(graph.ok());
      if (!graph.ok()) continue;
      for (const auto& [order, cell_ids] : by_order) {
        std::vector<Method> methods;
        methods.reserve(cell_ids.size());
        for (size_t c : cell_ids) methods.push_back(cells[c].method);
        const std::vector<double> costs =
            MeasurePerNodeCosts(*graph, methods, order, &graph_rng);
        for (size_t k = 0; k < cell_ids.size(); ++k) {
          results[cell_ids[k]].sim.Add(costs[k]);
        }
      }
    }
  }
  return results;
}

}  // namespace trilist
