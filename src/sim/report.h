#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/sim/experiment.h"

/// \file report.h
/// Rendering of model-vs-simulation tables in the paper's row/column
/// layout (Tables 6-11): one row per graph size n, and per cell the
/// simulated cost, the exact model Eq. (50), and the relative error,
/// closed by the asymptotic-limit row (n = inf).

namespace trilist {

/// Declarative description of one paper table.
struct PaperTableSpec {
  std::string title;                  ///< e.g. "Table 6: alpha=1.5, root".
  ExperimentConfig base;              ///< alpha/truncation/reps/seed.
  std::vector<ExperimentCell> cells;  ///< columns (method + permutation).
  std::vector<size_t> sizes;          ///< the n values (rows).
  bool error_only = false;            ///< Table 11 style: only error cols.
};

/// Runs every row of the table and renders it to `out`. Also prints the
/// configuration line (alpha, beta, truncation, reps, seed) so runs can be
/// replayed.
void RunAndPrintPaperTable(const PaperTableSpec& spec, std::ostream& out);

/// Column label for a cell, e.g. "T1+theta_D".
std::string CellLabel(const ExperimentCell& cell);

}  // namespace trilist
