#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/algo/cost.h"
#include "src/core/spread.h"
#include "src/degree/truncated.h"
#include "src/order/named_orders.h"
#include "src/run/run_spec.h"
#include "src/util/metrics.h"
#include "src/util/stats.h"

/// \file experiment.h
/// The Section 7 experiment loop: sample D_n from the truncated Pareto,
/// make it graphic, realize it exactly with the residual generator, orient
/// under each permutation, and accumulate the per-node cost; then compare
/// against the exact discrete model Eq. (50) and the asymptotic limit.

namespace trilist {

/// One (method, permutation) cell of a paper table.
struct ExperimentCell {
  Method method;
  PermutationKind order;
};

/// Configuration of a table row (fixed n, alpha, truncation).
struct ExperimentConfig {
  double alpha = 1.5;        ///< Pareto shape.
  double beta = -1.0;        ///< Pareto scale; < 0 means 30 * (alpha - 1).
  TruncationKind truncation = TruncationKind::kRoot;
  size_t n = 10000;          ///< graph size.
  int num_sequences = 3;     ///< degree sequences D_n per row.
  int graphs_per_sequence = 2;  ///< graph instances per sequence.
  uint64_t seed = 1;         ///< RNG seed (printed by benches for replay).
  WeightFn weight = WeightFn::Identity();  ///< w(x) of the model.
};

/// Simulated and modeled cost for one cell.
struct CellResult {
  RunningStats sim;        ///< per-node cost across instances.
  double model = 0.0;      ///< exact discrete model Eq. (50) at this n.
  double limit = 0.0;      ///< asymptotic limit (Algorithm 2, huge t).

  /// (sim - model)/model in percent (the paper's error columns).
  double ErrorPercent() const;
};

/// Runs the experiment for all cells at a single configuration. Graphs and
/// orientations are shared across cells where possible (one orientation
/// per distinct permutation per graph). When `stages` is non-null, wall
/// time is accumulated into it per phase — "model" (Eq. (50) + limit),
/// "sample" (degree sequences), "generate" (graph realization), "measure"
/// (orientation + cost accounting) — so table harnesses can report where
/// a row's time went.
std::vector<CellResult> RunExperiment(const ExperimentConfig& config,
                                      const std::vector<ExperimentCell>& cells,
                                      StageClock* stages = nullptr);

/// The run-layer generation spec equivalent to `config` (same Pareto
/// parameterization, non-strict residual realization); RunExperiment
/// feeds it to the shared SampleGraphicDegrees/RealizeGraph helpers.
GenerateSpec ToGenerateSpec(const ExperimentConfig& config);

/// Resolves beta (applying the 30(alpha-1) default).
double ResolveBeta(const ExperimentConfig& config);

}  // namespace trilist
