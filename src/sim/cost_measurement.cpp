#include "src/sim/cost_measurement.h"

#include "src/graph/oriented_graph.h"
#include "src/order/pipeline.h"

namespace trilist {

std::vector<double> MeasurePerNodeCosts(const Graph& g,
                                        const std::vector<Method>& methods,
                                        PermutationKind kind, Rng* rng) {
  const OrientedGraph og = OrientNamed(g, kind, rng);
  const std::vector<int64_t> x = og.OutDegrees();
  const std::vector<int64_t> y = og.InDegrees();
  const double n = static_cast<double>(g.num_nodes());
  std::vector<double> costs;
  costs.reserve(methods.size());
  for (Method m : methods) {
    costs.push_back(n == 0 ? 0.0 : MethodCostTotal(x, y, m) / n);
  }
  return costs;
}

double MeasurePerNodeCost(const Graph& g, Method m, PermutationKind kind,
                          Rng* rng) {
  return MeasurePerNodeCosts(g, {m}, kind, rng)[0];
}

}  // namespace trilist
