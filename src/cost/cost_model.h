#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/algo/cost.h"
#include "src/algo/exec_policy.h"
#include "src/order/pipeline.h"

/// \file cost_model.h
/// The Section-3 pricing layer: one CostModel per resident degree
/// sequence, able to price any (method, ordering, backend) triple before
/// anything runs. Hoisted out of the serve catalog so the planner
/// (src/run/planner.h), the admission controller (trilistd) and the
/// benches all consult the same arithmetic.
///
/// Two currencies:
///   - PredictedOps: the paper metric, n * (1/n) sum_i g(d_i(theta))
///     h(q_i(theta)) (Proposition 4) — elementary operations of the
///     method's own kind, comparable only within a family.
///   - PredictedCost: ops scaled by per-operation weights so families
///     become comparable (Table 3: scanning intersection steps are ~95x
///     cheaper than hash probes or candidate-tuple checks — the
///     advisor's sei_speedup convention), then divided by the backend
///     speedup for scanning edge iterators (SIMD/bitmap accelerate the
///     intersection loop only; vertex and lookup iterators never touch
///     it).

namespace trilist::cost {

/// Per-operation weights and backend speedups. The defaults encode the
/// paper's measured Table-3 ratios; zero or negative simd_speedup means
/// "derive from the CPU level this process actually dispatches to".
struct CostModelParams {
  /// Weight of one vertex-iterator candidate-tuple check, relative to one
  /// scanning-intersection step (the advisor's sei_speedup = 95).
  double vertex_op_weight = 95.0;
  /// Weight of one scanning-intersection step (the numeraire).
  double scan_op_weight = 1.0;
  /// Weight of one hash probe (lookup edge iterators).
  double lookup_op_weight = 95.0;

  /// SEI-only backend speedups (divide the weighted SEI cost).
  /// simd_speedup <= 0 derives from ActiveSimdLevel(): scalar 1, AVX2 4,
  /// AVX-512 8 (lane width over the scalar two-pointer merge).
  double simd_speedup = 0.0;
  double bitmap_speedup = 2.0;
  double gallop_speedup = 1.0;
};

/// \brief Prices (method, ordering, backend) triples for one degree
/// sequence. Thread-safe; memoizes per (ordering key, method) up to a cap
/// (the uniform seed is part of the key, so a seed-sweeping client could
/// otherwise grow the memo without bound).
class CostModel {
 public:
  /// Memoized (ordering, method) entries kept; past the cap, estimates
  /// are recomputed instead of cached.
  static constexpr size_t kMaxMemo = 256;

  /// \param ascending_degrees the realized degree sequence sorted
  ///        ascending (the paper's A_n vector).
  explicit CostModel(std::vector<int64_t> ascending_degrees,
                     CostModelParams params = {});

  const std::vector<int64_t>& ascending_degrees() const {
    return ascending_degrees_;
  }
  const CostModelParams& params() const { return params_; }

  /// Section-3 predicted total operations (paper metric) of running `m`
  /// under `orient`: n * SequenceConditionalCost with the ordering's
  /// pricing permutation. Graph-dependent orderings (degen, aot) price
  /// via their registry-documented theta_D proxy.
  double PredictedOps(const OrientSpec& orient, Method m) const;

  /// PredictedOps scaled to comparable CPU cost: weighted per family,
  /// divided by the backend speedup when (and only when) `m` is a
  /// scanning edge iterator.
  double PredictedCost(const OrientSpec& orient, Method m,
                       IntersectBackend backend) const;

  /// Sum of PredictedCost over `methods` — the admission controller's
  /// one-number estimate for a whole request.
  double PredictedTotalCost(const OrientSpec& orient,
                            const std::vector<Method>& methods,
                            IntersectBackend backend) const;

  /// The per-operation weight of `m`'s family (no backend division).
  double FamilyWeight(Method m) const;

  /// The effective SEI divisor of `backend` under these params (1 for
  /// merge/gallop and for the adaptive picker, which runs scalar code).
  double BackendSpeedup(IntersectBackend backend) const;

  /// Measured-side companion: the same weighting applied to a measured
  /// operation count, so predicted and measured costs land in the same
  /// currency and regret is a plain ratio.
  double WeightedCost(double ops, Method m, IntersectBackend backend) const;

 private:
  std::vector<int64_t> ascending_degrees_;
  CostModelParams params_;

  mutable std::mutex mu_;
  /// Key: (kind, seed-if-seeded, method).
  mutable std::map<std::tuple<int, uint64_t, int>, double> memo_;
};

/// Section-3 price of maintaining the triangle count across one edge
/// mutation (u, v): the incremental path intersects the two merged
/// adjacency rows once, so the Σ g(d) h(q) sum over touched nodes
/// reduces to g(d_u) + g(d_v) with g the identity and h ≡ 1 — the merge
/// kernel's worst-case scan bound. Measured comparisons (see
/// dyn::ApplyResult) land in the same currency, so predicted-vs-measured
/// mutation cost is a plain ratio exactly like the listing paths.
double PredictedMutationOps(int64_t degree_u, int64_t degree_v);

}  // namespace trilist::cost
