#include "src/cost/cost_model.h"

#include <algorithm>
#include <utility>

#include "src/core/out_degree_model.h"
#include "src/order/registry.h"
#include "src/util/cpu_features.h"

namespace trilist::cost {

namespace {

double DerivedSimdSpeedup() {
  switch (ActiveSimdLevel()) {
    case SimdLevel::kScalar: return 1.0;
    case SimdLevel::kAvx2: return 4.0;
    case SimdLevel::kAvx512: return 8.0;
  }
  return 1.0;
}

}  // namespace

CostModel::CostModel(std::vector<int64_t> ascending_degrees,
                     CostModelParams params)
    : ascending_degrees_(std::move(ascending_degrees)), params_(params) {
  if (params_.simd_speedup <= 0) {
    params_.simd_speedup = DerivedSimdSpeedup();
  }
}

double CostModel::PredictedOps(const OrientSpec& orient, Method m) const {
  const size_t n = ascending_degrees_.size();
  if (n == 0) return 0;
  const OrderingProvider& provider =
      OrderingRegistry::Instance().Of(orient.kind);
  const uint64_t seed_key = provider.seeded() ? orient.seed : 0;
  const auto key = std::make_tuple(static_cast<int>(orient.kind), seed_key,
                                   static_cast<int>(m));
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  const Permutation theta =
      provider.PricingPermutation(ascending_degrees_, orient.seed);
  const double ops =
      SequenceConditionalCost(ascending_degrees_, theta, m) *
      static_cast<double>(n);
  std::lock_guard<std::mutex> lock(mu_);
  if (memo_.size() < kMaxMemo) memo_.emplace(key, ops);
  return ops;
}

double CostModel::FamilyWeight(Method m) const {
  switch (MethodFamily(m)) {
    case Family::kVertexIterator: return params_.vertex_op_weight;
    case Family::kScanningEdgeIterator: return params_.scan_op_weight;
    case Family::kLookupEdgeIterator: return params_.lookup_op_weight;
  }
  return 1.0;
}

double CostModel::BackendSpeedup(IntersectBackend backend) const {
  switch (backend) {
    case IntersectBackend::kSimd: return params_.simd_speedup;
    case IntersectBackend::kBitmap: return params_.bitmap_speedup;
    case IntersectBackend::kGallop: return params_.gallop_speedup;
    case IntersectBackend::kMerge:
    case IntersectBackend::kAuto:
      return 1.0;
  }
  return 1.0;
}

double CostModel::WeightedCost(double ops, Method m,
                               IntersectBackend backend) const {
  double cost = ops * FamilyWeight(m);
  if (MethodFamily(m) == Family::kScanningEdgeIterator) {
    cost /= BackendSpeedup(backend);
  }
  return cost;
}

double CostModel::PredictedCost(const OrientSpec& orient, Method m,
                                IntersectBackend backend) const {
  return WeightedCost(PredictedOps(orient, m), m, backend);
}

double CostModel::PredictedTotalCost(const OrientSpec& orient,
                                     const std::vector<Method>& methods,
                                     IntersectBackend backend) const {
  double total = 0;
  for (const Method m : methods) {
    total += PredictedCost(orient, m, backend);
  }
  return total;
}

double PredictedMutationOps(int64_t degree_u, int64_t degree_v) {
  const int64_t du = std::max<int64_t>(0, degree_u);
  const int64_t dv = std::max<int64_t>(0, degree_v);
  return static_cast<double>(du + dv);
}

}  // namespace trilist::cost
