#pragma once

#include <cstdint>
#include <string>

#include "src/algo/vertex_iterator.h"  // OpCounts
#include "src/order/pipeline.h"        // OrientSpec
#include "src/util/status.h"
#include "src/xm/partitioned.h"        // IoStats

/// \file paged_count.h
/// T1 triangle counting over a `.tlg` file that never fully enters
/// memory: the container is opened in paged mode (demand-paged mmap, no
/// readahead — see TlgLoadOptions::paged), the label space is split into
/// partitions that fit the budget, and the partitioned E1/E2 executors'
/// access pattern is replayed with MADV_DONTNEED eviction chasing the
/// stream cursor, so pages behind it are handed back to the kernel
/// instead of accumulating in RSS.
///
/// This is the priced realization of the src/xm cost model: the IoStats
/// ledger those simulated executors report (bytes loaded per partition,
/// bytes streamed per pass) here corresponds to actual page traffic —
/// the resident partition's out-lists stay mapped for the whole pass
/// while every streamed list is touched once and then evicted. Triangle
/// counts and CPU OpCounts are identical to the in-memory RunE1/RunE2 by
/// construction (the loop is the same; only page residency differs).

namespace trilist::ooc {

/// Knobs for OocCountTlg.
struct OocCountOptions {
  /// Hard budget for edge-sized resident data. Half funds the resident
  /// partition (Partitioning::ForMemoryBudget), half the streaming
  /// window ahead of the eviction cursor. Floor 1 MiB.
  int64_t mem_budget_bytes = 256ll << 20;
  /// Which embedded orientation to run on; the file must cache it
  /// (`convert` embeds theta_D by default).
  OrientSpec spec;
  /// E2-style passes instead of E1-style.
  bool use_e2 = false;
};

/// What a paged counting run did.
struct OocCountResult {
  OpCounts ops;            ///< identical to the in-memory executor's
  IoStats io;              ///< the realized I/O ledger
  int64_t partitions = 0;  ///< passes over the streamed lists
  int64_t evictions = 0;   ///< MADV_DONTNEED calls issued
  bool mmap_backed = false;  ///< eviction only works on a real mapping
};

/// Counts triangles in `path` (a .tlg with the requested orientation
/// embedded) under the memory budget. Fails with InvalidArgument when
/// the file lacks the orientation — out-of-core re-orientation belongs
/// to `convert`, not to the counting path.
Result<OocCountResult> OocCountTlg(const std::string& path,
                                   const OocCountOptions& options);

}  // namespace trilist::ooc
