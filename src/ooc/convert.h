#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/io.h"
#include "src/order/pipeline.h"
#include "src/util/status.h"

/// \file convert.h
/// Out-of-core edge-list → .tlg conversion under a hard memory budget.
///
/// The pipeline is semi-external in the sense of Abello et al.:
/// node-indexed arrays (degrees, labels, ranks — a few words per node)
/// stay resident, while every edge-sized structure (the raw records, the
/// CSR neighbor stream, oriented arc lists — 8-16 bytes per arc) lives
/// on disk and is only ever streamed. `mem_budget_bytes` governs the
/// edge-sized working set: sort runs, merge read buffers and I/O chunks
/// all come out of it, so a graph whose edge data is many times the
/// budget converts with peak RSS near the budget, not near the graph.
///
/// Stages (each priced separately in OocReport):
///   1. parse   — ChunkReader (O_DIRECT + pread worker queue) feeds the
///                shared tolerant parser; every kept record contributes
///                both directed arcs, packed (src << 32 | dst), to an
///                ExternalU64Sorter. Sorted runs spill to `tmpdir`.
///   2. merge   — k-way merge with fused dedupe. Because both arc
///                directions were inserted, the global u64 dedupe IS the
///                either-direction edge dedupe, and the merged stream in
///                (src, dst) order is the CSR neighbor stream verbatim.
///                Degrees accumulate on the fly; neighbors go to an
///                unlinked CSR temp file.
///   3. write   — TlgStreamWriter emits csr_offsets (prefix sums),
///                csr_neighbors (CSR temp replayed), degrees.
///   4. orient  — per requested orientation: labels from the
///                (degree, id) rank + positional permutation, then the
///                CSR temp is replayed once, splitting labeled arcs into
///                two more external sorts (out-arcs, in-arcs) whose
///                merged streams are the oriented CSR rows. Every
///                PermutationKind except kDegenerate (which needs the
///                whole graph for its core decomposition) is supported.
///
/// Output is byte-identical to Graph::FromEdges + WriteTlgFile on the
/// same input: same sections, same payloads, same CRCs. The one semantic
/// divergence from the in-memory ingester (src/graph/ingest.h) is
/// deliberate: sparse node IDs are NOT compacted — IDs are kept as
/// written and gaps become isolated nodes, because the rank-of-ID
/// relabel table is an edge-sized structure the budget disallows. For
/// compact inputs (IDs forming a prefix of the naturals — every dataset
/// this library ships experiments for) the two paths agree exactly.

namespace trilist::ooc {

/// Conversion knobs. The defaults convert any real graph; only
/// `mem_budget_bytes` and `tmpdir` matter operationally.
struct OocConvertOptions {
  /// Hard budget for edge-sized working memory (sort runs, merge
  /// buffers, I/O chunks). Node-indexed arrays are exempt (see file
  /// comment). Floor 1 MiB.
  uint64_t mem_budget_bytes = 256ull << 20;
  /// Directory for spill + CSR temp files (all unlinked at creation, so
  /// crashes leave no debris). Must have free space for roughly
  /// 24 bytes/edge plus 16 bytes/edge per orientation; Convert checks
  /// this up front via statvfs and fails fast with a clear message
  /// instead of dying mid-sort on ENOSPC.
  std::string tmpdir = "/tmp";
  /// pread workers for the input reader.
  int io_workers = 2;
  /// Read chunk size and queue depth (reader memory = chunk * depth).
  size_t chunk_bytes = 1 << 20;
  int queue_depth = 4;
  /// Try O_DIRECT for the input scan (transparent fallback).
  bool direct_io = true;
  /// Orientations to embed; kDegenerate is rejected.
  std::vector<OrientSpec> orientations;
  /// Emit the degrees section (CLI convert always does).
  bool write_degrees = true;
  /// Test hook: pretend statvfs reported this many free bytes in
  /// `tmpdir` (0 = ask the filesystem).
  uint64_t free_bytes_override = 0;
  /// Test hook: forwarded to TlgStreamWriter — fail the Nth output byte.
  uint64_t debug_fail_after_bytes = 0;
};

/// What a conversion did: the familiar ingest tallies plus the
/// out-of-core byte ledger, per stage.
struct OocReport {
  IngestStats ingest;          ///< Same semantics as the in-memory path.
  uint64_t mem_budget_bytes = 0;
  bool direct_io = false;      ///< O_DIRECT actually in effect.
  int64_t input_bytes = 0;     ///< Edge-list bytes scanned.
  int64_t spill_runs = 0;      ///< Sorted runs spilled (all sorters).
  int64_t spill_bytes = 0;     ///< Bytes written to spill files.
  int64_t csr_temp_bytes = 0;  ///< CSR neighbor temp file size.
  int64_t output_bytes = 0;    ///< Final .tlg size.
  double parse_seconds = 0;
  double merge_seconds = 0;
  double write_seconds = 0;
  double orient_seconds = 0;
  double total_seconds = 0;

  /// Serializes the report as a JSON object (for `convert --report`).
  std::string ToJson() const;
};

/// Converts `input_path` (edge-list text) to `output_path` (.tlg v1)
/// without ever materializing the graph in memory. See the file comment
/// for the pipeline and the budget contract.
Result<OocReport> OocConvertFile(const std::string& input_path,
                                 const std::string& output_path,
                                 const OocConvertOptions& options = {});

/// The up-front tmpdir free-space check, exposed for tests and for the
/// CLI's dry-run diagnostics: projects total temp usage from the input
/// size (sampling average line length from the file's head) and fails
/// with InvalidArgument naming both numbers when the projection does not
/// fit. `free_bytes_override` substitutes for statvfs when nonzero.
Status CheckTmpdirSpace(const std::string& input_path,
                        const std::string& tmpdir, size_t num_orientations,
                        uint64_t free_bytes_override = 0);

}  // namespace trilist::ooc
