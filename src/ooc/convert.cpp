#include "src/ooc/convert.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <span>

#include "src/graph/binfmt_layout.h"
#include "src/graph/binfmt_stream.h"
#include "src/graph/edge_text.h"
#include "src/ooc/chunk_reader.h"
#include "src/ooc/external_sort.h"
#include "src/ooc/temp_file.h"
#include "src/order/named_orders.h"
#include "src/order/split.h"
#include "src/util/json_writer.h"
#include "src/util/rng.h"

namespace trilist::ooc {

namespace {

using std::chrono::steady_clock;

double SecondsSince(steady_clock::time_point t0) {
  return std::chrono::duration<double>(steady_clock::now() - t0).count();
}

constexpr uint64_t kMinBudget = 1ull << 20;

/// An unlinked temp file used as an append-then-replay byte stream (the
/// CSR neighbor staging area between the merge and write stages).
class TempStream {
 public:
  ~TempStream() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Create(const std::string& tmpdir) {
    Result<int> fd = MakeUnlinkedTempFile(tmpdir, "trilist-csr");
    if (!fd.ok()) return fd.status();
    fd_ = *fd;
    return Status::OK();
  }

  Status Append(const void* data, size_t len) {
    const char* p = static_cast<const char*>(data);
    size_t done = 0;
    while (done < len) {
      const ssize_t put =
          ::pwrite(fd_, p + done, len - done,
                   static_cast<off_t>(size_ + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("temp write failed: ") +
                                std::strerror(errno));
      }
      done += static_cast<size_t>(put);
    }
    size_ += len;
    return Status::OK();
  }

  /// Streams the whole file back through `consume` in bounded chunks.
  Status Replay(size_t chunk_bytes,
                const std::function<Status(std::span<const char>)>&
                    consume) const {
    // Round the buffer up and every non-final chunk down to a multiple
    // of 8 so consumers that parse fixed-size records (u32 neighbors,
    // u64 packed arcs) never see one split across a chunk boundary.
    std::vector<char> buf((std::max<size_t>(chunk_bytes, 4096) + 7) &
                          ~size_t{7});
    uint64_t at = 0;
    while (at < size_) {
      size_t want = static_cast<size_t>(
          std::min<uint64_t>(buf.size(), size_ - at));
      if (at + want < size_) want &= ~size_t{7};
      size_t done = 0;
      while (done < want) {
        const ssize_t got =
            ::pread(fd_, buf.data() + done, want - done,
                    static_cast<off_t>(at + done));
        if (got < 0) {
          if (errno == EINTR) continue;
          return Status::Internal(std::string("temp read failed: ") +
                                  std::strerror(errno));
        }
        if (got == 0) return Status::Internal("temp file truncated");
        done += static_cast<size_t>(got);
      }
      TRILIST_RETURN_NOT_OK(
          consume(std::span<const char>(buf.data(), want)));
      at += want;
    }
    return Status::OK();
  }

  uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
};

/// Walks the CSR neighbor temp stream as (src, dst) arcs, recovering the
/// source from the degree counts (the stream is the concatenation of the
/// sorted rows in node order).
Status ReplayArcs(const TempStream& csr, std::span<const uint32_t> degrees,
                  size_t chunk_bytes,
                  const std::function<Status(NodeId, NodeId)>& arc) {
  NodeId src = 0;
  uint64_t left = degrees.empty() ? 0 : degrees[0];
  return csr.Replay(chunk_bytes, [&](std::span<const char> bytes) {
    const auto* dst = reinterpret_cast<const NodeId*>(bytes.data());
    if (bytes.size() % sizeof(NodeId) != 0) {
      return Status::Internal("csr temp chunk not record-aligned");
    }
    const size_t count = bytes.size() / sizeof(NodeId);
    for (size_t i = 0; i < count; ++i) {
      while (left == 0) {
        if (++src >= degrees.size()) {
          return Status::Internal(
              "csr temp stream longer than the degree sum");
        }
        left = degrees[src];
      }
      TRILIST_RETURN_NOT_OK(arc(src, dst[i]));
      --left;
    }
    return Status::OK();
  });
}

/// Labels for one orientation spec: rank nodes by (degree asc, id asc)
/// and apply the positional permutation — the exact math of
/// order/pipeline.cpp, reproduced from the degree array alone so the
/// result (and thus the .tlg bytes) matches the in-memory path.
Result<std::vector<NodeId>> LabelsForSpec(
    std::span<const uint32_t> degrees, const OrientSpec& spec) {
  if (spec.kind == PermutationKind::kDegenerate ||
      spec.kind == PermutationKind::kAot) {
    return Status::InvalidArgument(
        std::string("out-of-core convert cannot embed the ") +
        PermutationKindName(spec.kind) +
        " order (it needs the whole graph in memory for its core "
        "decomposition)");
  }
  const size_t n = degrees.size();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degrees[a] != degrees[b]) return degrees[a] < degrees[b];
    return a < b;
  });
  const Permutation theta = [&]() -> Permutation {
    if (spec.kind == PermutationKind::kSplit) {
      // Positional: a pure function of the ascending degree sequence,
      // which the sorted rank array gives us directly.
      std::vector<int64_t> ascending(n);
      for (size_t pos = 0; pos < n; ++pos) {
        ascending[pos] = static_cast<int64_t>(degrees[order[pos]]);
      }
      return TailoredSplitPermutation(ascending);
    }
    Rng rng(spec.seed);
    return MakePermutation(spec.kind, n, &rng);
  }();
  std::vector<NodeId> labels(n);
  for (size_t pos = 0; pos < n; ++pos) {
    labels[order[pos]] = theta(static_cast<NodeId>(pos));
  }
  return labels;
}

Status AppendU64Span(TlgStreamWriter* w, std::span<const uint64_t> v) {
  return w->Append(v.data(), v.size_bytes());
}

}  // namespace

std::string OocReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", "trilist.ooc_convert_report");
  w.Field("schema_version", 1);
  w.Key("input");
  w.BeginObject();
  w.Field("bytes", input_bytes);
  w.Field("lines", static_cast<uint64_t>(ingest.lines));
  w.Field("edges_in", static_cast<uint64_t>(ingest.edges_in));
  w.Field("self_loops_dropped",
          static_cast<uint64_t>(ingest.self_loops_dropped));
  w.Field("duplicates_dropped",
          static_cast<uint64_t>(ingest.duplicates_dropped));
  w.EndObject();
  w.Key("graph");
  w.BeginObject();
  w.Field("num_nodes", static_cast<uint64_t>(ingest.num_nodes));
  w.Field("num_edges", static_cast<uint64_t>(ingest.num_edges));
  w.EndObject();
  w.Key("ooc");
  w.BeginObject();
  w.Field("mem_budget_bytes", mem_budget_bytes);
  w.Field("direct_io", direct_io);
  w.Field("spill_runs", spill_runs);
  w.Field("spill_bytes", spill_bytes);
  w.Field("csr_temp_bytes", csr_temp_bytes);
  w.Field("output_bytes", output_bytes);
  w.EndObject();
  w.Key("seconds");
  w.BeginObject();
  w.FieldDouble("parse", parse_seconds);
  w.FieldDouble("merge", merge_seconds);
  w.FieldDouble("write", write_seconds);
  w.FieldDouble("orient", orient_seconds);
  w.FieldDouble("total", total_seconds);
  w.EndObject();
  w.EndObject();
  return std::move(w).Finish();
}

Status CheckTmpdirSpace(const std::string& input_path,
                        const std::string& tmpdir, size_t num_orientations,
                        uint64_t free_bytes_override) {
  struct stat st;
  if (::stat(input_path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::InvalidArgument("cannot stat input: " + input_path);
  }
  const uint64_t input_bytes = static_cast<uint64_t>(st.st_size);

  // Project the record count from the head of the file: sample up to
  // 1 MiB, count newline-terminated data lines, scale by size. Crude but
  // it only needs to be right within the safety factor.
  uint64_t sample_bytes = 0;
  uint64_t sample_records = 0;
  {
    const int fd = ::open(input_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::InvalidArgument("cannot open input: " + input_path);
    }
    std::vector<char> buf(std::min<uint64_t>(input_bytes, 1u << 20));
    ssize_t got = ::pread(fd, buf.data(), buf.size(), 0);
    ::close(fd);
    if (got < 0) got = 0;
    // Count only complete lines so the trailing fragment does not skew
    // the average line length.
    const char* p = buf.data();
    const char* end = buf.data() + got;
    while (p < end) {
      const char* nl =
          static_cast<const char*>(std::memchr(p, '\n', end - p));
      if (nl == nullptr) break;
      const char* s = p;
      while (s < nl && (*s == ' ' || *s == '\t' || *s == '\r')) ++s;
      if (s < nl && *s != '#' && *s != '%') ++sample_records;
      sample_bytes += static_cast<uint64_t>(nl - p) + 1;
      p = nl + 1;
    }
  }
  uint64_t est_edges = 0;
  if (sample_records > 0 && sample_bytes > 0) {
    const double avg_line =
        static_cast<double>(sample_bytes) /
        static_cast<double>(sample_records);
    est_edges = static_cast<uint64_t>(
        static_cast<double>(input_bytes) / avg_line);
  }

  // Temp usage: edge spill 16 B/edge (both arcs), CSR temp 8 B/edge,
  // plus 16 B/edge of oriented-arc spill per embedded orientation.
  // 1.25x covers projection error.
  const uint64_t projected = static_cast<uint64_t>(
      static_cast<double>(est_edges) *
      (24.0 + 16.0 * static_cast<double>(num_orientations)) * 1.25);

  uint64_t free_bytes = free_bytes_override;
  if (free_bytes == 0) {
    struct statvfs vfs;
    if (::statvfs(tmpdir.c_str(), &vfs) != 0) {
      return Status::InvalidArgument("cannot statvfs tmpdir " + tmpdir +
                                     ": " + std::strerror(errno));
    }
    free_bytes = static_cast<uint64_t>(vfs.f_bavail) *
                 static_cast<uint64_t>(vfs.f_frsize);
  }
  if (projected > free_bytes) {
    return Status::InvalidArgument(
        "tmpdir " + tmpdir + " has " + std::to_string(free_bytes) +
        " bytes free but the conversion is projected to spill about " +
        std::to_string(projected) +
        " bytes (~" + std::to_string(est_edges) +
        " edges); point --tmpdir at a larger filesystem");
  }
  return Status::OK();
}

Result<OocReport> OocConvertFile(const std::string& input_path,
                                 const std::string& output_path,
                                 const OocConvertOptions& options) {
  const auto t_start = steady_clock::now();
  OocReport report;
  const uint64_t budget =
      std::max<uint64_t>(options.mem_budget_bytes, kMinBudget);
  report.mem_budget_bytes = budget;

  for (const OrientSpec& spec : options.orientations) {
    if (spec.kind == PermutationKind::kDegenerate ||
        spec.kind == PermutationKind::kAot) {
      return Status::InvalidArgument(
          std::string("out-of-core convert cannot embed the ") +
          PermutationKindName(spec.kind) + " order");
    }
  }
  TRILIST_RETURN_NOT_OK(CheckTmpdirSpace(input_path, options.tmpdir,
                                         options.orientations.size(),
                                         options.free_bytes_override));

  // ---- Stage 1: parse + spill -------------------------------------
  // Budget split: the reader ring is capped at budget/8, the sort
  // buffer gets half of the remainder so the merge stage (whose read
  // buffers replace it) never overlaps with it at full size.
  ChunkReaderOptions reader_opts;
  reader_opts.workers = options.io_workers;
  reader_opts.queue_depth = std::max(1, options.queue_depth);
  reader_opts.chunk_bytes = std::min<uint64_t>(
      options.chunk_bytes,
      std::max<uint64_t>(budget / 8 /
                             static_cast<uint64_t>(reader_opts.queue_depth),
                         4096));
  reader_opts.direct_io = options.direct_io;
  auto reader_or = ChunkReader::Open(input_path, reader_opts);
  if (!reader_or.ok()) return reader_or.status();
  // Held in an optional so the ring buffers can be released the moment
  // parsing ends — they would otherwise count against every later
  // stage's share of the budget.
  std::optional<ChunkReader> reader(std::move(reader_or).ValueOrDie());
  report.input_bytes = static_cast<int64_t>(reader->file_size());

  ExternalU64Sorter edge_sorter(options.tmpdir, budget / 2, budget / 4);

  constexpr uint64_t kMaxRawId =
      std::numeric_limits<NodeId>::max() - 1;  // n = id + 1 must fit
  IngestStats stats;
  bool has_header = false;
  uint64_t header_nodes = 0;
  bool any_id = false;
  uint64_t max_id = 0;
  std::string carry;  // partial final line of the previous chunk
  EdgeTextChunk parsed;

  const auto consume_parsed = [&]() -> Status {
    if (parsed.has_error) {
      return Status::InvalidArgument(
          "malformed edge at line " +
          std::to_string(stats.lines + parsed.error_line) + ": '" +
          parsed.error_text + "'");
    }
    for (const RawEdgeRecord& e : parsed.records) {
      if (e.first > kMaxRawId || e.second > kMaxRawId) {
        return Status::OutOfRange(
            "graph too large for 32-bit node IDs: saw node " +
            std::to_string(std::max(e.first, e.second)));
      }
      TRILIST_RETURN_NOT_OK(
          edge_sorter.Add(e.first << 32 | e.second));
      TRILIST_RETURN_NOT_OK(
          edge_sorter.Add(e.second << 32 | e.first));
    }
    stats.lines += parsed.lines;
    stats.comment_lines += parsed.comment_lines;
    stats.blank_lines += parsed.blank_lines;
    stats.edges_in += parsed.edges_in;
    stats.self_loops_dropped += parsed.self_loops;
    if (parsed.edges_in > 0 || !parsed.loop_ids.empty()) any_id = true;
    max_id = std::max(max_id, parsed.max_id);
    if (parsed.has_header && !has_header) {
      has_header = true;
      header_nodes = parsed.header_nodes;
    }
    parsed.Clear();
    return Status::OK();
  };

  for (;;) {
    auto chunk_or = reader->Next();
    if (!chunk_or.ok()) return chunk_or.status();
    const std::span<const char> chunk = chunk_or.ValueOrDie();
    if (chunk.empty()) break;
    // Split the chunk at its last newline: everything before it parses
    // now (prefixed by the carried partial line), the tail carries over.
    const char* begin = chunk.data();
    const char* end = begin + chunk.size();
    const char* last_nl = nullptr;
    for (const char* p = end; p > begin;) {
      --p;
      if (*p == '\n') {
        last_nl = p;
        break;
      }
    }
    if (last_nl == nullptr) {
      carry.append(begin, end);
      continue;
    }
    if (!carry.empty()) {
      // Complete the carried line and parse it on its own.
      const char* first_nl =
          static_cast<const char*>(std::memchr(begin, '\n', chunk.size()));
      carry.append(begin, first_nl + 1);
      ParseEdgeTextChunk(carry.data(), carry.data() + carry.size(),
                         &parsed);
      TRILIST_RETURN_NOT_OK(consume_parsed());
      carry.clear();
      begin = first_nl + 1;
    }
    if (begin <= last_nl) {
      ParseEdgeTextChunk(begin, last_nl + 1, &parsed);
      TRILIST_RETURN_NOT_OK(consume_parsed());
    }
    carry.assign(last_nl + 1, end);
  }
  if (!carry.empty()) {
    ParseEdgeTextChunk(carry.data(), carry.data() + carry.size(),
                       &parsed);
    TRILIST_RETURN_NOT_OK(consume_parsed());
    carry.clear();
  }
  stats.max_input_id = max_id;
  report.direct_io = reader->stats().direct_io;
  reader.reset();  // parsing is done; return the ring to the budget
  report.parse_seconds = SecondsSince(t_start);

  uint64_t n = any_id ? max_id + 1 : 0;
  if (has_header) n = std::max(n, header_nodes);
  if (n >= std::numeric_limits<NodeId>::max()) {
    return Status::OutOfRange("graph too large for 32-bit node IDs: " +
                              std::to_string(n) + " nodes");
  }

  // ---- Stage 2: merge → degrees + CSR temp ------------------------
  const auto t_merge = steady_clock::now();
  std::vector<uint32_t> degrees(n, 0);  // node-indexed, budget-exempt
  TempStream csr;
  TRILIST_RETURN_NOT_OK(csr.Create(options.tmpdir));
  std::vector<NodeId> dst_batch;
  dst_batch.reserve(64 << 10);
  TRILIST_RETURN_NOT_OK(edge_sorter.Drain(
      [&](std::span<const uint64_t> records) -> Status {
        dst_batch.clear();
        for (const uint64_t r : records) {
          degrees[static_cast<size_t>(r >> 32)]++;
          dst_batch.push_back(static_cast<NodeId>(r));
        }
        return csr.Append(dst_batch.data(),
                          dst_batch.size() * sizeof(NodeId));
      }));
  const int64_t merged = edge_sorter.stats().merged_records;
  const uint64_t m = static_cast<uint64_t>(merged) / 2;
  stats.duplicates_dropped = static_cast<size_t>(
      (edge_sorter.stats().records_in - merged) / 2);
  stats.num_nodes = static_cast<size_t>(n);
  stats.num_edges = static_cast<size_t>(m);
  report.spill_runs = edge_sorter.stats().runs;
  report.spill_bytes = edge_sorter.stats().spilled_bytes;
  report.csr_temp_bytes = static_cast<int64_t>(csr.size());
  report.merge_seconds = SecondsSince(t_merge);

  // ---- Stage 3: streamed .tlg write -------------------------------
  const auto t_write = steady_clock::now();
  std::vector<TlgStreamSectionPlan> plan;
  plan.push_back({tlg::kSecCsrOffsets, 0, (n + 1) * sizeof(uint64_t)});
  plan.push_back({tlg::kSecCsrNeighbors, 0, 2 * m * sizeof(NodeId)});
  if (options.write_degrees) {
    plan.push_back({tlg::kSecDegrees, 0, n * sizeof(int64_t)});
  }
  for (size_t i = 0; i < options.orientations.size(); ++i) {
    plan.push_back({tlg::kSecOrientation, static_cast<uint32_t>(i),
                    tlg::OrientationSectionLength(n, m)});
  }
  TlgStreamWriterOptions wopts;
  wopts.debug_fail_after_bytes = options.debug_fail_after_bytes;
  auto writer_or =
      TlgStreamWriter::Create(output_path, n, m, std::move(plan), wopts);
  if (!writer_or.ok()) return writer_or.status();
  TlgStreamWriter writer = std::move(writer_or).ValueOrDie();

  // csr_offsets: prefix sums of the degree counts.
  {
    std::vector<uint64_t> offsets(n + 1, 0);
    for (uint64_t v = 0; v < n; ++v) {
      offsets[v + 1] = offsets[v] + degrees[v];
    }
    TRILIST_RETURN_NOT_OK(AppendU64Span(&writer, offsets));
  }
  // csr_neighbors: the CSR temp verbatim.
  const size_t replay_chunk = static_cast<size_t>(
      std::clamp<uint64_t>(budget / 8, 1u << 16, 8u << 20));
  TRILIST_RETURN_NOT_OK(
      csr.Replay(replay_chunk, [&](std::span<const char> bytes) {
        return writer.Append(bytes.data(), bytes.size());
      }));
  // degrees: widened to the i64 the section stores.
  if (options.write_degrees) {
    std::vector<int64_t> batch;
    batch.reserve(64 << 10);
    for (uint64_t v = 0; v < n; ++v) {
      batch.push_back(static_cast<int64_t>(degrees[v]));
      if (batch.size() == batch.capacity()) {
        TRILIST_RETURN_NOT_OK(
            writer.Append(batch.data(), batch.size() * sizeof(int64_t)));
        batch.clear();
      }
    }
    if (!batch.empty()) {
      TRILIST_RETURN_NOT_OK(
          writer.Append(batch.data(), batch.size() * sizeof(int64_t)));
    }
  }
  report.write_seconds = SecondsSince(t_write);

  // ---- Stage 4: orientations --------------------------------------
  const auto t_orient = steady_clock::now();
  for (const OrientSpec& spec : options.orientations) {
    auto labels_or = LabelsForSpec(degrees, spec);
    if (!labels_or.ok()) return labels_or.status();
    const std::vector<NodeId> labels = std::move(labels_or).ValueOrDie();

    // Split the labeled arcs into the two directed sorts. Each arc
    // (src, dst) belongs to exactly one row family of labels[src]: an
    // out-arc when the neighbor's label is smaller, an in-arc
    // otherwise — the same test FromLabels applies.
    // Both sorters are live while the arcs replay, so each gets an
    // eighth of the budget for its sort buffer (a sixteenth for merge):
    // together they stay within the half the edge sorter used alone.
    ExternalU64Sorter out_sorter(options.tmpdir, budget / 8, budget / 16);
    ExternalU64Sorter in_sorter(options.tmpdir, budget / 8, budget / 16);
    std::vector<uint32_t> out_count(n, 0);
    TRILIST_RETURN_NOT_OK(ReplayArcs(
        csr, degrees, replay_chunk,
        [&](NodeId src, NodeId dst) -> Status {
          const uint64_t ls = labels[src];
          const uint64_t ld = labels[dst];
          if (ld < ls) {
            ++out_count[ls];
            return out_sorter.Add(ls << 32 | ld);
          }
          return in_sorter.Add(ls << 32 | ld);
        }));

    const tlg::OrientHeader oh{
        tlg::PermKindToCode(spec.kind), 0,
        spec.kind == PermutationKind::kUniform ? spec.seed : 0, m};
    TRILIST_RETURN_NOT_OK(writer.Append(&oh, sizeof(oh)));
    {
      std::vector<NodeId> original_of(n);
      for (uint64_t v = 0; v < n; ++v) {
        original_of[labels[v]] = static_cast<NodeId>(v);
      }
      // Out-offsets from the counts; in-counts follow for free because
      // out + in per label equals the degree of its original node.
      std::vector<uint64_t> offsets(n + 1, 0);
      for (uint64_t l = 0; l < n; ++l) {
        offsets[l + 1] = offsets[l] + out_count[l];
      }
      TRILIST_RETURN_NOT_OK(AppendU64Span(&writer, offsets));
      for (uint64_t l = 0; l < n; ++l) {
        const uint32_t in_count =
            degrees[original_of[l]] - out_count[l];
        offsets[l + 1] = offsets[l] + in_count;
      }
      TRILIST_RETURN_NOT_OK(AppendU64Span(&writer, offsets));
      // Out-neighbors then in-neighbors: each merged stream in
      // (label, neighbor) order is the concatenated sorted rows.
      const auto emit_dsts =
          [&](std::span<const uint64_t> records) -> Status {
        dst_batch.clear();
        for (const uint64_t r : records) {
          dst_batch.push_back(static_cast<NodeId>(r));
        }
        return writer.Append(dst_batch.data(),
                             dst_batch.size() * sizeof(NodeId));
      };
      TRILIST_RETURN_NOT_OK(out_sorter.Drain(emit_dsts));
      TRILIST_RETURN_NOT_OK(in_sorter.Drain(emit_dsts));
      TRILIST_RETURN_NOT_OK(writer.Append(
          original_of.data(), original_of.size() * sizeof(NodeId)));
    }
    report.spill_runs +=
        out_sorter.stats().runs + in_sorter.stats().runs;
    report.spill_bytes += out_sorter.stats().spilled_bytes +
                          in_sorter.stats().spilled_bytes;
  }
  TRILIST_RETURN_NOT_OK(writer.Finish());
  report.orient_seconds = SecondsSince(t_orient);

  struct stat out_st;
  if (::stat(output_path.c_str(), &out_st) == 0) {
    report.output_bytes = static_cast<int64_t>(out_st.st_size);
  }
  report.ingest = stats;
  report.total_seconds = SecondsSince(t_start);
  return report;
}

}  // namespace trilist::ooc
