#include "src/ooc/paged_count.h"

#include <algorithm>
#include <span>

#include "src/algo/triangle_sink.h"
#include "src/graph/binfmt.h"

namespace trilist::ooc {

namespace {

constexpr int64_t kBytesPerId = static_cast<int64_t>(sizeof(NodeId));

std::span<const NodeId> PrefixBelow(std::span<const NodeId> list,
                                    NodeId bound) {
  const auto it = std::lower_bound(list.begin(), list.end(), bound);
  return list.first(static_cast<size_t>(it - list.begin()));
}

std::span<const NodeId> RangeWithin(std::span<const NodeId> list, NodeId lo,
                                    NodeId hi) {
  const auto first = std::lower_bound(list.begin(), list.end(), lo);
  const auto last = std::lower_bound(first, list.end(), hi);
  return list.subspan(static_cast<size_t>(first - list.begin()),
                      static_cast<size_t>(last - first));
}

template <typename Emit>
void MergeIntersect(std::span<const NodeId> a, std::span<const NodeId> b,
                    int64_t* comparisons, Emit&& emit) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    ++*comparisons;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      emit(a[i]);
      ++i;
      ++j;
    }
  }
}

int64_t OutListBytes(const OrientedGraph& g, NodeId lo, NodeId hi) {
  int64_t bytes = 0;
  for (NodeId v = lo; v < hi; ++v) {
    bytes += g.OutDegree(v) * kBytesPerId;
  }
  return bytes;
}

/// Evicts page-cache residency of a neighbor-array slice, excluding the
/// overlap with a protected (resident-partition) slice of the same
/// array. All pointers live inside the mapped file.
class Evictor {
 public:
  Evictor(const MmapFile* file, int64_t* evictions)
      : file_(file),
        base_(reinterpret_cast<const char*>(file->bytes().data())),
        evictions_(evictions) {}

  /// Protects [keep_begin, keep_end): Evict calls never drop it.
  void Protect(const NodeId* keep_begin, const NodeId* keep_end) {
    keep_begin_ = reinterpret_cast<const char*>(keep_begin);
    keep_end_ = reinterpret_cast<const char*>(keep_end);
  }

  void Evict(const NodeId* begin, const NodeId* end) {
    const char* lo = reinterpret_cast<const char*>(begin);
    const char* hi = reinterpret_cast<const char*>(end);
    if (keep_begin_ < keep_end_ && lo < keep_end_ && keep_begin_ < hi) {
      // Split around the protected range.
      EvictBytes(lo, std::min(hi, keep_begin_));
      EvictBytes(std::max(lo, keep_end_), hi);
      return;
    }
    EvictBytes(lo, hi);
  }

 private:
  void EvictBytes(const char* lo, const char* hi) {
    if (lo >= hi) return;
    file_->Evict(static_cast<size_t>(lo - base_),
                 static_cast<size_t>(hi - lo));
    ++*evictions_;
  }

  const MmapFile* file_;
  const char* base_;
  const char* keep_begin_ = nullptr;
  const char* keep_end_ = nullptr;
  int64_t* evictions_;
};

/// One E1- or E2-style partitioned run with eviction chasing the stream
/// cursor. The loop body mirrors src/xm/partitioned.cpp statement for
/// statement, so OpCounts and the IoStats ledger come out identical to
/// the simulated executors — what changes is that streamed pages are
/// dropped once the cursor has moved `window_bytes` past them.
OocCountResult RunPaged(const OrientedGraph& g, const MmapFile* file,
                        const Partitioning& parts, int64_t window_bytes,
                        bool use_e2, TriangleSink* sink) {
  OocCountResult result;
  result.mmap_backed = file->is_mapped();
  const size_t n = g.num_nodes();
  const std::span<const NodeId> all_out = g.RawOutNeighbors();
  const std::span<const NodeId> all_in = g.RawInNeighbors();

  for (size_t p = 0; p < parts.num_partitions(); ++p) {
    const NodeId lo = parts.lower(p);
    const NodeId hi = parts.upper(p);
    ++result.io.passes;
    result.io.bytes_loaded += OutListBytes(g, lo, hi);
    ++result.partitions;

    Evictor evictor(file, &result.evictions);
    // The resident partition: out-lists of [lo, hi) stay mapped for the
    // whole pass (E1 probes them as wedge apexes / E2 as local lists).
    const NodeId* keep_begin = all_out.data() + g.RawOutOffsets()[lo];
    const NodeId* keep_end = all_out.data() + g.RawOutOffsets()[hi];
    evictor.Protect(keep_begin, keep_end);

    // Stream cursor bookkeeping: rows [evict_mark, cursor) have been
    // streamed but not yet dropped.
    size_t out_evict_mark = 0;  // row start index into all_out
    size_t in_evict_mark = 0;   // row start index into all_in
    int64_t pending = 0;        // bytes streamed since the last drop

    for (size_t yi = 0; yi < n; ++yi) {
      const auto y = static_cast<NodeId>(yi);
      const auto streamed = g.OutNeighbors(y);
      result.io.bytes_streamed +=
          static_cast<int64_t>(streamed.size()) * kBytesPerId;
      if (!use_e2) {
        for (const NodeId z : RangeWithin(g.InNeighbors(y), lo, hi)) {
          const auto local = PrefixBelow(g.OutNeighbors(z), y);
          result.ops.local_scans += static_cast<int64_t>(local.size());
          result.ops.remote_scans +=
              static_cast<int64_t>(streamed.size());
          MergeIntersect(local, streamed,
                         &result.ops.merge_comparisons, [&](NodeId x) {
                           ++result.ops.triangles;
                           sink->Consume(x, y, z);
                         });
        }
      } else {
        for (const NodeId w : RangeWithin(streamed, lo, hi)) {
          const auto local = g.OutNeighbors(w);  // resident
          const auto remote = PrefixBelow(streamed, w);
          result.ops.local_scans += static_cast<int64_t>(local.size());
          result.ops.remote_scans += static_cast<int64_t>(remote.size());
          MergeIntersect(local, remote, &result.ops.merge_comparisons,
                         [&](NodeId x) {
                           ++result.ops.triangles;
                           // In E2 the streamed node y is the top of the
                           // triangle; w (the resident middle) sits
                           // between.
                           sink->Consume(x, w, y);
                         });
        }
      }
      pending +=
          static_cast<int64_t>(streamed.size() + g.InNeighbors(y).size()) *
          kBytesPerId;
      if (pending >= window_bytes) {
        // Drop everything strictly behind the cursor; row y itself may
        // still be partially needed by the merge above, so stop at its
        // start.
        const size_t out_row = g.RawOutOffsets()[y];
        const size_t in_row = g.RawInOffsets()[y];
        evictor.Evict(all_out.data() + out_evict_mark,
                      all_out.data() + out_row);
        evictor.Evict(all_in.data() + in_evict_mark,
                      all_in.data() + in_row);
        out_evict_mark = out_row;
        in_evict_mark = in_row;
        pending = 0;
      }
    }
    // End of pass: release the rest of the streamed window (the next
    // pass restarts from label 0) and the old resident partition.
    evictor.Evict(all_out.data() + out_evict_mark,
                  all_out.data() + all_out.size());
    evictor.Evict(all_in.data() + in_evict_mark,
                  all_in.data() + all_in.size());
    evictor.Protect(nullptr, nullptr);
    evictor.Evict(keep_begin, keep_end);
  }
  return result;
}

}  // namespace

Result<OocCountResult> OocCountTlg(const std::string& path,
                                   const OocCountOptions& options) {
  TlgLoadOptions load;
  load.paged = true;
  auto file_or = TlgFile::Open(path, load);
  if (!file_or.ok()) return file_or.status();
  const TlgFile file = std::move(file_or).ValueOrDie();
  const OrientedGraph* og = file.FindOrientation(options.spec);
  if (og == nullptr) {
    return Status::InvalidArgument(
        path + " does not embed the requested orientation; re-run "
        "`trilist_cli convert` with matching --orient flags");
  }
  const int64_t budget =
      std::max<int64_t>(options.mem_budget_bytes, 1ll << 20);
  // Half the budget holds the resident partition; the streamed window
  // between evictions gets an eighth, leaving the rest as headroom for
  // the node-indexed sections (offsets, original_of) that every pass
  // touches and that cannot be evicted while the pass runs.
  const Partitioning parts =
      Partitioning::ForMemoryBudget(*og, budget / 2);
  const int64_t window = std::max<int64_t>(budget / 8, 1ll << 20);
  CountingSink sink;
  OocCountResult result =
      RunPaged(*og, file.backing(), parts, window, options.use_e2, &sink);
  return result;
}

}  // namespace trilist::ooc
