#include "src/ooc/external_sort.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <utility>

#include "src/ooc/temp_file.h"

namespace trilist::ooc {

namespace {

constexpr size_t kMinBufferBytes = 64 << 10;

/// EINTR-safe full positional write.
Status PwriteFull(int fd, const void* data, size_t len, uint64_t offset) {
  const char* p = static_cast<const char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t put = ::pwrite(fd, p + done, len - done,
                                 static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill write failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  return Status::OK();
}

/// EINTR-safe full positional read (spill files never shrink).
Status PreadFullStrict(int fd, void* data, size_t len, uint64_t offset) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < len) {
    const ssize_t got = ::pread(fd, p + done, len - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("spill read failed: ") +
                              std::strerror(errno));
    }
    if (got == 0) return Status::Internal("spill file truncated");
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

/// One spilled run being merged: a small read buffer sliding over the
/// run's [offset, offset + count) record range in the spill file.
struct RunCursor {
  int fd = -1;
  uint64_t next = 0;       // next record index within the run
  uint64_t count = 0;      // records in the run
  uint64_t base = 0;       // run start offset in the file, in records
  std::vector<uint64_t> buf;
  size_t pos = 0;          // read position within buf

  bool Exhausted() const { return next >= count && pos >= buf.size(); }

  Status Refill(size_t per_run_records) {
    const uint64_t remain = count - next;
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(per_run_records, remain));
    buf.resize(take);
    pos = 0;
    if (take == 0) return Status::OK();
    TRILIST_RETURN_NOT_OK(PreadFullStrict(
        fd, buf.data(), take * sizeof(uint64_t),
        (base + next) * sizeof(uint64_t)));
    next += take;
    return Status::OK();
  }

  /// Current head record; only valid when !Exhausted() after a Refill.
  uint64_t Head() const { return buf[pos]; }

  Status Pop(size_t per_run_records) {
    ++pos;
    if (pos >= buf.size() && next < count) {
      return Refill(per_run_records);
    }
    return Status::OK();
  }
};

}  // namespace

ExternalU64Sorter::ExternalU64Sorter(std::string tmpdir,
                                     size_t sort_buffer_bytes,
                                     size_t merge_buffer_bytes)
    : tmpdir_(std::move(tmpdir)),
      capacity_(std::max(sort_buffer_bytes, kMinBufferBytes) /
                sizeof(uint64_t)),
      merge_buffer_bytes_(
          std::max(merge_buffer_bytes, kMinBufferBytes)) {
  buffer_.reserve(capacity_);
}

ExternalU64Sorter::~ExternalU64Sorter() {
  if (spill_fd_ >= 0) ::close(spill_fd_);
}

Status ExternalU64Sorter::Add(uint64_t record) {
  if (drained_) {
    return Status::InvalidArgument("ExternalU64Sorter: Add after Drain");
  }
  if (buffer_.size() >= capacity_) {
    TRILIST_RETURN_NOT_OK(SpillRun());
  }
  buffer_.push_back(record);
  ++stats_.records_in;
  return Status::OK();
}

Status ExternalU64Sorter::AddBatch(std::span<const uint64_t> records) {
  for (const uint64_t r : records) {
    TRILIST_RETURN_NOT_OK(Add(r));
  }
  return Status::OK();
}

Status ExternalU64Sorter::SpillRun() {
  if (buffer_.empty()) return Status::OK();
  if (spill_fd_ < 0) {
    // One unlinked temp file holds every run back to back (see
    // temp_file.h for the no-debris rationale).
    Result<int> fd = MakeUnlinkedTempFile(tmpdir_, "trilist-spill");
    if (!fd.ok()) return fd.status();
    spill_fd_ = *fd;
  }
  std::sort(buffer_.begin(), buffer_.end());
  buffer_.erase(std::unique(buffer_.begin(), buffer_.end()),
                buffer_.end());
  const size_t bytes = buffer_.size() * sizeof(uint64_t);
  TRILIST_RETURN_NOT_OK(
      PwriteFull(spill_fd_, buffer_.data(), bytes,
                 spill_end_ * sizeof(uint64_t)));
  runs_.emplace_back(spill_end_, buffer_.size());
  spill_end_ += buffer_.size();
  ++stats_.runs;
  stats_.spilled_bytes += static_cast<int64_t>(bytes);
  buffer_.clear();
  return Status::OK();
}

Status ExternalU64Sorter::Drain(
    const std::function<Status(std::span<const uint64_t>)>& emit) {
  if (drained_) {
    return Status::InvalidArgument(
        "ExternalU64Sorter: Drain called twice");
  }
  drained_ = true;

  if (runs_.empty()) {
    // Everything fit in RAM: one sort, no I/O at all.
    std::sort(buffer_.begin(), buffer_.end());
    buffer_.erase(std::unique(buffer_.begin(), buffer_.end()),
                  buffer_.end());
    stats_.merged_records = static_cast<int64_t>(buffer_.size());
    if (buffer_.empty()) return Status::OK();
    Status st = emit(std::span<const uint64_t>(buffer_));
    buffer_.clear();
    buffer_.shrink_to_fit();
    return st;
  }

  // Spill the final partial run so the merge sees a uniform run list and
  // the big sort buffer can be released before merge buffers allocate.
  TRILIST_RETURN_NOT_OK(SpillRun());
  buffer_.clear();
  buffer_.shrink_to_fit();

  const size_t per_run_records =
      std::max<size_t>(512, merge_buffer_bytes_ / sizeof(uint64_t) /
                                runs_.size());
  std::vector<RunCursor> cursors(runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    cursors[i].fd = spill_fd_;
    cursors[i].base = runs_[i].first;
    cursors[i].count = runs_[i].second;
    TRILIST_RETURN_NOT_OK(cursors[i].Refill(per_run_records));
  }

  // Min-heap of (head record, run index). Runs are internally deduped,
  // so cross-run duplicates are adjacent in the merged stream and one
  // last-emitted check removes them.
  using Entry = std::pair<uint64_t, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      heap;
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i].Exhausted()) heap.emplace(cursors[i].Head(), i);
  }

  std::vector<uint64_t> out;
  out.reserve(64 << 10);
  uint64_t last = 0;
  bool have_last = false;
  while (!heap.empty()) {
    const auto [value, run] = heap.top();
    heap.pop();
    TRILIST_RETURN_NOT_OK(cursors[run].Pop(per_run_records));
    if (!cursors[run].Exhausted()) {
      heap.emplace(cursors[run].Head(), run);
    }
    if (have_last && value == last) continue;
    last = value;
    have_last = true;
    out.push_back(value);
    ++stats_.merged_records;
    if (out.size() == out.capacity()) {
      TRILIST_RETURN_NOT_OK(emit(std::span<const uint64_t>(out)));
      out.clear();
    }
  }
  if (!out.empty()) {
    TRILIST_RETURN_NOT_OK(emit(std::span<const uint64_t>(out)));
  }
  return Status::OK();
}

}  // namespace trilist::ooc
