#include "src/ooc/chunk_reader.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace trilist::ooc {

namespace {

constexpr size_t kDirectAlign = 4096;

size_t AlignUp(size_t x, size_t a) { return (x + a - 1) / a * a; }

/// Buffered positional read of exactly `want` bytes (EINTR/short-read
/// safe). Returns bytes read (< want only at EOF) or -1 on error.
ssize_t PreadFull(int fd, char* dst, size_t want, uint64_t offset) {
  size_t done = 0;
  while (done < want) {
    const ssize_t got = ::pread(fd, dst + done, want - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (got == 0) break;
    done += static_cast<size_t>(got);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

struct ChunkReader::Impl {
  struct Slot {
    char* buf = nullptr;  // aligned for O_DIRECT
    size_t len = 0;
    uint64_t owner = 0;   // chunk index this slot currently serves
    enum State { kFree, kReady } state = kFree;
    Status status = Status::OK();
  };

  int direct_fd = -1;    // -1 when O_DIRECT unavailable or disabled
  int buffered_fd = -1;  // always open; the correctness path
  size_t file_size = 0;
  size_t chunk_bytes = 0;
  uint64_t num_chunks = 0;
  std::string path;

  std::vector<Slot> slots;
  std::mutex mu;
  std::condition_variable worker_cv;
  std::condition_variable consumer_cv;
  uint64_t next_claim = 0;    // next chunk a worker picks up
  uint64_t next_consume = 0;  // next chunk Next() returns
  bool consumer_holds = false;  // Next() handed out next_consume - 1
  bool shutdown = false;
  int64_t bytes_read = 0;
  std::vector<std::thread> threads;

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    worker_cv.notify_all();
    for (std::thread& t : threads) t.join();
    for (Slot& s : slots) std::free(s.buf);
    if (direct_fd >= 0) ::close(direct_fd);
    if (buffered_fd >= 0) ::close(buffered_fd);
  }

  /// Reads chunk `c` into `slot->buf`, preferring O_DIRECT.
  Status ReadChunk(uint64_t c, Slot* slot) {
    const uint64_t offset = c * chunk_bytes;
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(chunk_bytes, file_size - offset));
    if (direct_fd >= 0) {
      // O_DIRECT wants an aligned length; over-reading past EOF is fine
      // (the kernel stops at the file size).
      const ssize_t got = PreadFull(direct_fd, slot->buf,
                                    AlignUp(want, kDirectAlign), offset);
      if (got >= 0 && static_cast<size_t>(got) >= want) {
        slot->len = want;
        return Status::OK();
      }
      // Fall through to the buffered descriptor on any direct failure —
      // filesystems disagree about O_DIRECT edge cases and the buffered
      // path is always correct.
    }
    const ssize_t got = PreadFull(buffered_fd, slot->buf, want, offset);
    if (got < 0) {
      return Status::Internal("read failed: " + path + ": " +
                              std::strerror(errno));
    }
    if (static_cast<size_t>(got) < want) {
      return Status::Internal("short read (file shrank?): " + path);
    }
    slot->len = want;
    return Status::OK();
  }

  void WorkerLoop() {
    for (;;) {
      uint64_t c;
      Slot* slot;
      {
        std::unique_lock<std::mutex> lock(mu);
        worker_cv.wait(lock, [&] {
          if (shutdown) return true;
          if (next_claim >= num_chunks) return false;
          return slots[next_claim % slots.size()].state ==
                     Slot::kFree &&
                 slots[next_claim % slots.size()].owner == next_claim;
        });
        if (shutdown) return;
        c = next_claim++;
        slot = &slots[c % slots.size()];
        // Mark in-progress by bumping owner past its free state; state
        // stays kFree until the payload is resident.
      }
      const Status status = ReadChunk(c, slot);
      {
        std::lock_guard<std::mutex> lock(mu);
        slot->status = status;
        slot->state = Slot::kReady;
        if (status.ok()) bytes_read += static_cast<int64_t>(slot->len);
      }
      consumer_cv.notify_one();
      worker_cv.notify_all();
    }
  }
};

Result<ChunkReader> ChunkReader::Open(const std::string& path,
                                      const ChunkReaderOptions& options) {
  ChunkReader out;
  Impl& im = *out.impl_;
  im.path = path;
  im.buffered_fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (im.buffered_fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st;
  if (::fstat(im.buffered_fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    return Status::InvalidArgument("not a regular file: " + path);
  }
  im.file_size = static_cast<size_t>(st.st_size);
  im.chunk_bytes =
      AlignUp(std::max<size_t>(options.chunk_bytes, kDirectAlign),
              kDirectAlign);
  im.num_chunks =
      (im.file_size + im.chunk_bytes - 1) / im.chunk_bytes;
  if (options.direct_io) {
#if defined(O_DIRECT)
    im.direct_fd =
        ::open(path.c_str(), O_RDONLY | O_CLOEXEC | O_DIRECT);
#endif
  }
  const int depth = std::max(1, options.queue_depth);
  im.slots.resize(static_cast<size_t>(depth));
  for (size_t i = 0; i < im.slots.size(); ++i) {
    void* buf = nullptr;
    if (posix_memalign(&buf, kDirectAlign, im.chunk_bytes) != 0) {
      return Status::Internal("chunk buffer allocation failed");
    }
    im.slots[i].buf = static_cast<char*>(buf);
    im.slots[i].owner = i;  // first chunk each slot serves
  }
  const int workers =
      std::max(1, std::min(options.workers, depth));
  im.threads.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    im.threads.emplace_back([impl = out.impl_.get()] {
      impl->WorkerLoop();
    });
  }
  return out;
}

Result<std::span<const char>> ChunkReader::Next() {
  Impl& im = *impl_;
  std::unique_lock<std::mutex> lock(im.mu);
  // Recycle the chunk handed out by the previous call.
  if (im.consumer_holds) {
    Impl::Slot& prev =
        im.slots[(im.next_consume - 1) % im.slots.size()];
    prev.state = Impl::Slot::kFree;
    prev.owner += im.slots.size();  // now serves chunk c + depth
    im.consumer_holds = false;
    im.worker_cv.notify_all();
  }
  if (im.next_consume >= im.num_chunks) {
    return std::span<const char>{};
  }
  Impl::Slot& slot = im.slots[im.next_consume % im.slots.size()];
  im.consumer_cv.wait(lock, [&] {
    return slot.state == Impl::Slot::kReady &&
           slot.owner == im.next_consume;
  });
  if (!slot.status.ok()) return slot.status;
  ++im.next_consume;
  im.consumer_holds = true;
  return std::span<const char>(slot.buf, slot.len);
}

size_t ChunkReader::file_size() const { return impl_->file_size; }

ChunkReaderStats ChunkReader::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ChunkReaderStats s;
  s.bytes_read = impl_->bytes_read;
  s.chunks = static_cast<int64_t>(impl_->next_consume);
  s.direct_io = impl_->direct_fd >= 0;
  return s;
}

ChunkReader::ChunkReader() : impl_(std::make_unique<Impl>()) {}
ChunkReader::~ChunkReader() = default;
ChunkReader::ChunkReader(ChunkReader&& other) noexcept = default;
ChunkReader& ChunkReader::operator=(ChunkReader&& other) noexcept =
    default;

}  // namespace trilist::ooc
