#include "src/ooc/temp_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace trilist::ooc {

Result<int> MakeUnlinkedTempFile(const std::string& tmpdir,
                                 const std::string& prefix) {
  std::string tmpl = tmpdir + "/" + prefix + "-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    return Status::InvalidArgument("cannot create temp file in " + tmpdir +
                                   ": " + std::strerror(errno));
  }
  ::unlink(tmpl.c_str());
  return fd;
}

}  // namespace trilist::ooc
