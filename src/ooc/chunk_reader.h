#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "src/util/status.h"

/// \file chunk_reader.h
/// Sequential chunked file reader with a small asynchronous I/O queue:
/// a pool of pread workers keeps `queue_depth` fixed-size chunks in
/// flight ahead of the consumer, so parsing and disk latency overlap
/// without mmap (whose page cache residency is exactly what the
/// out-of-core pipeline must avoid). Opens with O_DIRECT when possible —
/// reads bypass the page cache entirely, leaving RSS untouched — and
/// falls back to buffered reads transparently (tmpfs and some
/// filesystems reject O_DIRECT).
///
/// Chunks are delivered strictly in file order; the consumer sees a
/// plain `span<const char>` per chunk and owns nothing. Alignment
/// obligations of O_DIRECT (4 KiB buffer, offset and length) are handled
/// internally; consumers never see them.

namespace trilist::ooc {

/// Reader knobs.
struct ChunkReaderOptions {
  /// Chunk payload size; rounded up to a 4 KiB multiple internally.
  size_t chunk_bytes = 1 << 20;
  /// Buffers in flight (reader-ahead depth). Memory = depth * chunk.
  int queue_depth = 4;
  /// pread worker threads filling the queue.
  int workers = 2;
  /// Try O_DIRECT first; transparently falls back when the filesystem
  /// refuses it.
  bool direct_io = true;
};

/// Counters of one reader's lifetime.
struct ChunkReaderStats {
  int64_t bytes_read = 0;
  int64_t chunks = 0;
  bool direct_io = false;  ///< O_DIRECT was actually in effect.
};

/// \brief Ordered chunk stream over one file, prefetched by a worker
/// pool.
class ChunkReader {
 public:
  static Result<ChunkReader> Open(const std::string& path,
                                  const ChunkReaderOptions& options = {});

  ChunkReader();
  ~ChunkReader();
  ChunkReader(ChunkReader&& other) noexcept;
  ChunkReader& operator=(ChunkReader&& other) noexcept;
  ChunkReader(const ChunkReader&) = delete;
  ChunkReader& operator=(const ChunkReader&) = delete;

  /// Blocks until the next chunk (in file order) is resident and returns
  /// it; an empty span signals end of file. The span stays valid until
  /// the next call (the slot is recycled).
  Result<std::span<const char>> Next();

  /// Total size of the underlying file.
  size_t file_size() const;

  /// Point-in-time counters.
  ChunkReaderStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trilist::ooc
