#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/util/status.h"

/// \file external_sort.h
/// Chunked external merge sort of fixed-size u64 records — the workhorse
/// of the out-of-core conversion pipeline (src/ooc/convert.h), which
/// packs a directed arc (src, dst) into one u64 as (src << 32) | dst so
/// ascending u64 order IS (src, dst) lexicographic order, i.e. CSR
/// order.
///
/// Records accumulate in a RAM buffer of `sort_buffer_bytes`; when it
/// fills, the run is sorted, deduplicated and appended to one unlinked
/// spill file in `tmpdir` (crash-safe: the kernel reclaims it when the
/// fd dies). Drain() k-way-merges all runs through per-run read buffers
/// and emits the globally sorted, deduplicated stream in batches —
/// duplicates collapse across runs, which is exactly the both-direction
/// edge dedupe when every input edge contributes both of its arcs. An
/// input that never overflows the buffer sorts purely in RAM and spills
/// nothing.

namespace trilist::ooc {

/// Ledger of one sorter's lifetime.
struct SpillStats {
  int64_t records_in = 0;      ///< records pushed (pre-dedupe)
  int64_t runs = 0;            ///< sorted runs spilled to disk
  int64_t spilled_bytes = 0;   ///< bytes written to the spill file
  int64_t merged_records = 0;  ///< records emitted by Drain (deduped)
};

/// \brief External sorter of u64 records with fused dedupe.
class ExternalU64Sorter {
 public:
  /// \param tmpdir directory for the (unlinked) spill file; created
  ///        lazily on first overflow.
  /// \param sort_buffer_bytes RAM run size (floor 64 KiB).
  /// \param merge_buffer_bytes total RAM for merge-side read buffers,
  ///        split across runs at Drain time (floor 64 KiB).
  ExternalU64Sorter(std::string tmpdir, size_t sort_buffer_bytes,
                    size_t merge_buffer_bytes);
  ~ExternalU64Sorter();
  ExternalU64Sorter(const ExternalU64Sorter&) = delete;
  ExternalU64Sorter& operator=(const ExternalU64Sorter&) = delete;

  /// Adds one record (spilling the current run if the buffer is full).
  Status Add(uint64_t record);

  /// Bulk variant of Add.
  Status AddBatch(std::span<const uint64_t> records);

  /// Sorts/merges everything added so far and emits the ascending,
  /// deduplicated stream in batches through `emit`. Consumes the
  /// sorter; Add after Drain is an error.
  Status Drain(
      const std::function<Status(std::span<const uint64_t>)>& emit);

  const SpillStats& stats() const { return stats_; }

 private:
  Status SpillRun();

  std::string tmpdir_;
  size_t capacity_;            // records per RAM run
  size_t merge_buffer_bytes_;
  std::vector<uint64_t> buffer_;
  int spill_fd_ = -1;
  std::vector<std::pair<uint64_t, uint64_t>> runs_;  // (offset, count)
  uint64_t spill_end_ = 0;  // append cursor into the spill file
  bool drained_ = false;
  SpillStats stats_;
};

}  // namespace trilist::ooc
