#pragma once

#include <string>

#include "src/util/status.h"

/// \file temp_file.h
/// The one way the out-of-core layer makes scratch files: mkstemp in the
/// caller's tmpdir, immediately unlinked, so the kernel reclaims the
/// space when the fd closes and no crash leaves debris on disk. Shared
/// by the external sorter's spill file and the converter's CSR staging
/// stream (and anything else that needs anonymous spill space).

namespace trilist::ooc {

/// Creates "<tmpdir>/<prefix>-XXXXXX" via mkstemp and unlinks it before
/// returning, yielding an anonymous file descriptor the caller owns (and
/// must close). InvalidArgument with strerror detail when the directory
/// is missing or unwritable.
Result<int> MakeUnlinkedTempFile(const std::string& tmpdir,
                                 const std::string& prefix);

}  // namespace trilist::ooc
