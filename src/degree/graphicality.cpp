#include "src/degree/graphicality.h"

#include <algorithm>
#include <functional>

#include "src/util/status.h"

namespace trilist {

bool IsGraphic(const std::vector<int64_t>& degrees) {
  const size_t n = degrees.size();
  if (n == 0) return true;
  std::vector<int64_t> d = degrees;
  std::sort(d.begin(), d.end(), std::greater<int64_t>());
  if (d.back() < 0) return false;
  if (d.front() > static_cast<int64_t>(n) - 1) return false;
  int64_t sum = 0;
  for (int64_t x : d) sum += x;
  if (sum % 2 != 0) return false;

  // Prefix sums for the right-hand side evaluation.
  std::vector<int64_t> prefix(n + 1, 0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + d[i];

  int64_t lhs = 0;
  for (size_t k = 1; k <= n; ++k) {
    lhs += d[k - 1];
    // rhs = k(k-1) + sum_{i > k} min(d_i, k). Split the tail at the first
    // index where d_i <= k (sorted descending -> binary search).
    const auto kk = static_cast<int64_t>(k);
    const auto split = std::lower_bound(d.begin() + static_cast<int64_t>(k),
                                        d.end(), kk,
                                        std::greater_equal<int64_t>()) -
                       d.begin();
    // Entries in [k, split) have d_i > k and contribute k each; entries in
    // [split, n) contribute d_i.
    const int64_t big = static_cast<int64_t>(split) - kk;
    const int64_t rhs = kk * (kk - 1) + big * kk +
                        (prefix[n] - prefix[static_cast<size_t>(split)]);
    if (lhs > rhs) return false;
  }
  return true;
}

int64_t MakeGraphic(std::vector<int64_t>* degrees) {
  TRILIST_DCHECK(degrees != nullptr);
  if (degrees->empty()) return 0;
  int64_t decrements = 0;
  auto decrement_max = [&]() {
    auto it = std::max_element(degrees->begin(), degrees->end());
    TRILIST_DCHECK(*it > 0);
    --(*it);
    ++decrements;
  };
  int64_t sum = 0;
  for (int64_t d : *degrees) sum += d;
  if (sum % 2 != 0) decrement_max();
  // Each round of Erdős–Gallai repair removes a full edge (two stubs) from
  // the largest degree so the parity stays even.
  while (!IsGraphic(*degrees)) {
    auto it = std::max_element(degrees->begin(), degrees->end());
    if (*it < 2) break;  // all-ones corner; already graphic if even sum
    *it -= 2;
    decrements += 2;
  }
  return decrements;
}

}  // namespace trilist
