#include "src/degree/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/status.h"

namespace trilist {

double DegreeDistribution::Pmf(int64_t k) const {
  if (k < 1) return 0.0;
  return Cdf(static_cast<double>(k)) - Cdf(static_cast<double>(k - 1));
}

int64_t DegreeDistribution::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  // Gallop to find an upper bound, then binary search for the smallest k
  // with F(k) >= u.
  int64_t hi = 1;
  const int64_t max_support = MaxSupport();
  while (Cdf(static_cast<double>(hi)) < u) {
    if (hi >= max_support) return max_support;
    hi = std::min(max_support, hi * 2);
  }
  int64_t lo = std::max<int64_t>(1, hi / 2);
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (Cdf(static_cast<double>(mid)) >= u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double DegreeDistribution::Mean() const {
  // E[D] = sum_{k >= 0} (1 - F(k)); since D >= 1 the k = 0 term is 1.
  // Blocks [k, k + jump) contribute between jump * (1 - F(k + jump - 1))
  // and jump * (1 - F(k - 1)); we take the left endpoint (upper estimate)
  // with small relative jumps, and stop when the tail is negligible or
  // the support bound is reached.
  const double eps = 1e-6;
  const int64_t max_k =
      MaxSupport() == kUnboundedSupport ? (int64_t{1} << 56) : MaxSupport();
  double mean = 0.0;
  int64_t k = 0;
  while (k < max_k) {
    const double tail = 1.0 - Cdf(static_cast<double>(k));
    if (tail <= 0.0) break;
    const int64_t jump = std::max<int64_t>(
        1, static_cast<int64_t>(eps * static_cast<double>(k)));
    const int64_t end = std::min(max_k, k + jump);
    mean += static_cast<double>(end - k) * tail;
    if (tail < 1e-15 && k > 1024) {
      // Heavy-tail guard: if the tail decays slower than 1/k the series
      // diverges; detect by comparing against a harmonic threshold.
      break;
    }
    k = end;
    if (mean > 1e18) return std::numeric_limits<double>::infinity();
  }
  return mean;
}

double ApproxExpectation(const DegreeDistribution& dist, double (*g)(double),
                         int64_t max_k, double eps) {
  const int64_t bound = dist.MaxSupport() == kUnboundedSupport
                            ? max_k
                            : std::min(max_k, dist.MaxSupport());
  double acc = 0.0;
  int64_t k = 1;
  while (k <= bound) {
    const int64_t jump = std::max<int64_t>(
        1, static_cast<int64_t>(eps * static_cast<double>(k)));
    const int64_t end = std::min(bound, k + jump - 1);
    const double mass = dist.Cdf(static_cast<double>(end)) -
                        dist.Cdf(static_cast<double>(k - 1));
    acc += g(static_cast<double>(k)) * mass;
    k = end + 1;
    if (acc > 1e300) return std::numeric_limits<double>::infinity();
  }
  return acc;
}

}  // namespace trilist
