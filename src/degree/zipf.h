#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/degree/distribution.h"

/// \file zipf.h
/// Additional degree families beyond the paper's Pareto: bounded Zipf
/// (the other ubiquitous power law, P(D = k) ∝ k^-s on [1, N]) and a
/// shifted Poisson (the Erdos-Renyi degree profile). Both plug into the
/// same model/generator machinery, letting users study how the
/// cost-regime picture changes away from the Pareto parameterization.

namespace trilist {

/// \brief Bounded Zipf: P(D = k) = k^-s / H_{N,s} for k in [1, N].
///
/// The CDF is materialized once (O(N) doubles), so N is intended to be at
/// most ~1e8. Tail exponent corresponds to Pareto alpha = s - 1.
class ZipfDegree : public DegreeDistribution {
 public:
  /// \param s exponent (> 0).
  /// \param max_k support bound N (>= 1).
  ZipfDegree(double s, int64_t max_k);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override { return max_k_; }
  int64_t Quantile(double u) const override;
  double Mean() const override;
  std::string Name() const override;

  /// Exponent s.
  double s() const { return s_; }

 private:
  double s_;
  int64_t max_k_;
  std::vector<double> cdf_;  // cdf_[k-1] = F(k)
};

/// \brief Shifted Poisson: D = 1 + P, P ~ Poisson(lambda).
///
/// The degree profile of sparse Erdos-Renyi graphs (conditioned on
/// minimum degree 1). Light-tailed: every cost limit is finite and every
/// permutation is within a constant of optimal, the opposite corner from
/// the paper's heavy-tail regimes.
class ShiftedPoissonDegree : public DegreeDistribution {
 public:
  /// \param lambda Poisson rate (> 0); E[D] = 1 + lambda.
  explicit ShiftedPoissonDegree(double lambda);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override {
    return static_cast<int64_t>(cdf_.size());
  }
  int64_t Quantile(double u) const override;
  double Mean() const override { return 1.0 + lambda_; }
  std::string Name() const override;

 private:
  double lambda_;
  std::vector<double> cdf_;  // cdf_[k-1] = F(k), truncated at ~1e-17 tail
};

}  // namespace trilist
