#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/degree/distribution.h"

/// \file simple_distributions.h
/// Light-tailed / degenerate degree distributions. These are not studied by
/// the paper directly but serve three purposes: (a) sanity baselines whose
/// spread distributions have textbook forms (geometric D gives a
/// negative-binomial-like spread, the discrete analogue of the paper's
/// "exponential D produces Erlang(2) spread" remark), (b) regular graphs
/// where every permutation must cost the same (the r(x) = const percolation
/// point of Proposition 8), and (c) corner-case inputs for tests.

namespace trilist {

/// \brief Degenerate distribution: P(D = d) = 1.
///
/// With constant degree, g(D)/w(D) is constant, so by Proposition 8 every
/// permutation yields the same limiting cost — a property the test suite
/// checks against the model and against simulation.
class ConstantDegree : public DegreeDistribution {
 public:
  /// \param degree the single support point (>= 1).
  explicit ConstantDegree(int64_t degree);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override { return degree_; }
  int64_t Quantile(double u) const override;
  double Mean() const override { return static_cast<double>(degree_); }
  std::string Name() const override;

 private:
  int64_t degree_;
};

/// \brief Shifted geometric: P(D = k) = p (1-p)^(k-1), k >= 1.
class GeometricDegree : public DegreeDistribution {
 public:
  /// \param p success probability in (0, 1]; E[D] = 1/p.
  explicit GeometricDegree(double p);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t Quantile(double u) const override;
  double Mean() const override { return 1.0 / p_; }
  std::string Name() const override;

 private:
  double p_;
};

/// \brief Uniform over the integers [lo, hi].
class UniformDegree : public DegreeDistribution {
 public:
  /// \param lo smallest support point (>= 1).
  /// \param hi largest support point (>= lo).
  UniformDegree(int64_t lo, int64_t hi);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override { return hi_; }
  int64_t Quantile(double u) const override;
  double Mean() const override {
    return 0.5 * static_cast<double>(lo_ + hi_);
  }
  std::string Name() const override;

 private:
  int64_t lo_;
  int64_t hi_;
};

/// \brief Arbitrary finite PMF over [1, n], normalized at construction.
///
/// Used in tests to build adversarial distributions (e.g. bimodal degree
/// mixes) that exercise the model machinery away from smooth families.
class TabulatedDegree : public DegreeDistribution {
 public:
  /// \param pmf weights for degrees 1..pmf.size(); need not be normalized,
  ///        must be non-negative with a positive sum.
  explicit TabulatedDegree(std::vector<double> pmf);

  double Cdf(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override {
    return static_cast<int64_t>(pmf_.size());
  }
  int64_t Quantile(double u) const override;
  double Mean() const override;
  std::string Name() const override;

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;
};

}  // namespace trilist
