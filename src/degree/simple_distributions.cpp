#include "src/degree/simple_distributions.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace trilist {

ConstantDegree::ConstantDegree(int64_t degree) : degree_(degree) {
  TRILIST_DCHECK(degree >= 1);
}

double ConstantDegree::Cdf(double x) const {
  return x >= static_cast<double>(degree_) ? 1.0 : 0.0;
}

double ConstantDegree::Pmf(int64_t k) const {
  return k == degree_ ? 1.0 : 0.0;
}

int64_t ConstantDegree::Quantile(double /*u*/) const { return degree_; }

std::string ConstantDegree::Name() const {
  return "ConstantDegree(" + std::to_string(degree_) + ")";
}

GeometricDegree::GeometricDegree(double p) : p_(p) {
  TRILIST_DCHECK(p > 0.0 && p <= 1.0);
}

double GeometricDegree::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  const double k = std::floor(x);
  return 1.0 - std::pow(1.0 - p_, k);
}

double GeometricDegree::Pmf(int64_t k) const {
  if (k < 1) return 0.0;
  return p_ * std::pow(1.0 - p_, static_cast<double>(k - 1));
}

int64_t GeometricDegree::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  if (p_ >= 1.0) return 1;
  const double raw = std::log1p(-u) / std::log1p(-p_);
  int64_t k = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(raw)));
  while (k > 1 && Cdf(static_cast<double>(k - 1)) >= u) --k;
  while (Cdf(static_cast<double>(k)) < u) ++k;
  return k;
}

std::string GeometricDegree::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "GeometricDegree(p=%.4g)", p_);
  return buf;
}

UniformDegree::UniformDegree(int64_t lo, int64_t hi) : lo_(lo), hi_(hi) {
  TRILIST_DCHECK(lo >= 1 && hi >= lo);
}

double UniformDegree::Cdf(double x) const {
  if (x < static_cast<double>(lo_)) return 0.0;
  const double k = std::floor(x);
  if (k >= static_cast<double>(hi_)) return 1.0;
  return (k - static_cast<double>(lo_) + 1.0) /
         static_cast<double>(hi_ - lo_ + 1);
}

double UniformDegree::Pmf(int64_t k) const {
  if (k < lo_ || k > hi_) return 0.0;
  return 1.0 / static_cast<double>(hi_ - lo_ + 1);
}

int64_t UniformDegree::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  const auto span = static_cast<double>(hi_ - lo_ + 1);
  int64_t k = lo_ + static_cast<int64_t>(std::floor(u * span));
  if (k > hi_) k = hi_;
  while (k > lo_ && Cdf(static_cast<double>(k - 1)) >= u) --k;
  while (Cdf(static_cast<double>(k)) < u) ++k;
  return k;
}

std::string UniformDegree::Name() const {
  return "UniformDegree(" + std::to_string(lo_) + "," + std::to_string(hi_) +
         ")";
}

TabulatedDegree::TabulatedDegree(std::vector<double> pmf)
    : pmf_(std::move(pmf)) {
  TRILIST_DCHECK(!pmf_.empty());
  double total = 0.0;
  for (double w : pmf_) {
    TRILIST_DCHECK(w >= 0.0);
    total += w;
  }
  TRILIST_DCHECK(total > 0.0);
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    pmf_[i] /= total;
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;
}

double TabulatedDegree::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  const auto k = static_cast<size_t>(std::floor(x));
  if (k >= pmf_.size()) return 1.0;
  return cdf_[k - 1];
}

double TabulatedDegree::Pmf(int64_t k) const {
  if (k < 1 || k > static_cast<int64_t>(pmf_.size())) return 0.0;
  return pmf_[static_cast<size_t>(k - 1)];
}

int64_t TabulatedDegree::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double TabulatedDegree::Mean() const {
  double mean = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    mean += static_cast<double>(i + 1) * pmf_[i];
  }
  return mean;
}

std::string TabulatedDegree::Name() const {
  return "TabulatedDegree(max=" + std::to_string(pmf_.size()) + ")";
}

}  // namespace trilist
