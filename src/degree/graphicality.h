#pragma once

#include <cstdint>
#include <vector>

/// \file graphicality.h
/// Erdős–Gallai graphicality test: whether a degree sequence is realizable
/// by a simple undirected graph. The paper assumes D_n is graphic with
/// probability 1 - o(1) "or can be made such by removal of one edge"; the
/// generator uses this test to decide whether a sampled sequence needs the
/// one-stub drop and to reject pathological inputs early.

namespace trilist {

/// Returns true iff `degrees` is graphic (Erdős–Gallai). Runs in
/// O(n log n): sorts a copy descending and checks all n prefix conditions
/// with a two-pointer computation of sum_{k>i} min(d_k, i).
/// Sequences with an odd degree sum are not graphic by definition.
bool IsGraphic(const std::vector<int64_t>& degrees);

/// Adjusts a sequence in place so it becomes graphic while changing as
/// little as possible, in this order of preference:
///  1. If the sum is odd, decrement one maximal degree by 1 (the paper's
///     "removal of one edge" allowance affects one stub).
///  2. While Erdős–Gallai fails, decrement the largest degree (rare under
///     the paper's truncation regimes; each step strictly reduces the
///     violation).
/// Degrees never drop below 1. Returns the number of unit decrements made.
int64_t MakeGraphic(std::vector<int64_t>* degrees);

}  // namespace trilist
