#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/degree/distribution.h"

/// \file truncated.h
/// Truncation of a base distribution to [1, t_n] (Section 1.2 / 3.1):
///   F_n(x) = F(x) / F(t_n).
///
/// The paper distinguishes *root* truncation t_n = sqrt(n), which makes the
/// sequence deterministically AMRC (max degree <= sqrt(n), so the
/// edge-probability approximation (10) stays a probability), from *linear*
/// truncation t_n = n - 1, which only requires the degrees to be realizable
/// and produces "unconstrained" graphs when E[D^2] = inf.

namespace trilist {

/// How the truncation point t_n scales with the graph size n.
enum class TruncationKind {
  kLinear,  ///< t_n = n - 1
  kRoot,    ///< t_n = floor(sqrt(n))
  kFixed,   ///< t_n = user-supplied constant
};

/// Returns the truncation point t_n for a graph of n nodes.
/// \param kind scaling rule.
/// \param n graph size (>= 2 for kLinear / kRoot).
/// \param fixed_t used only for kFixed.
int64_t TruncationPoint(TruncationKind kind, int64_t n, int64_t fixed_t = 0);

/// Human-readable name ("linear", "root", "fixed").
const char* TruncationKindName(TruncationKind kind);

/// \brief F_n(x) = F(x) / F(t_n) on [1, t_n].
///
/// Holds a non-owning reference to the base distribution; the caller keeps
/// the base alive (typical usage allocates both on the stack of an
/// experiment). All virtual overrides are exact, not re-normalized tables,
/// so t_n may be as large as 2^62 without memory cost.
class TruncatedDistribution : public DegreeDistribution {
 public:
  /// \param base underlying F(x); must outlive this object.
  /// \param t_n truncation point (>= 1; base must have F(t_n) > 0).
  TruncatedDistribution(const DegreeDistribution& base, int64_t t_n);

  double Cdf(double x) const override;
  double Survival(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t MaxSupport() const override { return t_n_; }
  int64_t Quantile(double u) const override;
  std::string Name() const override;

  /// The truncation point t_n.
  int64_t truncation_point() const { return t_n_; }
  /// The untruncated base distribution.
  const DegreeDistribution& base() const { return base_; }

 private:
  const DegreeDistribution& base_;
  int64_t t_n_;
  double cdf_at_tn_;  // F(t_n), the normalizing constant
};

}  // namespace trilist
