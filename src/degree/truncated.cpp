#include "src/degree/truncated.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace trilist {

int64_t TruncationPoint(TruncationKind kind, int64_t n, int64_t fixed_t) {
  switch (kind) {
    case TruncationKind::kLinear:
      TRILIST_DCHECK(n >= 2);
      return n - 1;
    case TruncationKind::kRoot: {
      TRILIST_DCHECK(n >= 2);
      auto t = static_cast<int64_t>(std::floor(std::sqrt(
          static_cast<double>(n))));
      // Guard against floating point off-by-one around perfect squares.
      while ((t + 1) * (t + 1) <= n) ++t;
      while (t * t > n) --t;
      return std::max<int64_t>(1, t);
    }
    case TruncationKind::kFixed:
      TRILIST_DCHECK(fixed_t >= 1);
      return fixed_t;
  }
  return 1;
}

const char* TruncationKindName(TruncationKind kind) {
  switch (kind) {
    case TruncationKind::kLinear: return "linear";
    case TruncationKind::kRoot: return "root";
    case TruncationKind::kFixed: return "fixed";
  }
  return "?";
}

TruncatedDistribution::TruncatedDistribution(const DegreeDistribution& base,
                                             int64_t t_n)
    : base_(base),
      t_n_(std::min(t_n, base.MaxSupport())),
      cdf_at_tn_(base.Cdf(static_cast<double>(t_n_))) {
  TRILIST_DCHECK(t_n_ >= 1);
  TRILIST_DCHECK(cdf_at_tn_ > 0.0);
}

double TruncatedDistribution::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  if (x >= static_cast<double>(t_n_)) return 1.0;
  return base_.Cdf(x) / cdf_at_tn_;
}

double TruncatedDistribution::Survival(double x) const {
  if (x < 1.0) return 1.0;
  if (x >= static_cast<double>(t_n_)) return 0.0;
  // S_n(x) = (S(x) - S(t_n)) / F(t_n): exact in the tail where the CDF
  // form 1 - F(x)/F(t_n) would cancel.
  return (base_.Survival(x) - base_.Survival(static_cast<double>(t_n_))) /
         cdf_at_tn_;
}

double TruncatedDistribution::Pmf(int64_t k) const {
  if (k < 1 || k > t_n_) return 0.0;
  return base_.Pmf(k) / cdf_at_tn_;
}

int64_t TruncatedDistribution::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  return std::min(t_n_, base_.Quantile(u * cdf_at_tn_));
}

std::string TruncatedDistribution::Name() const {
  return base_.Name() + "|t=" + std::to_string(t_n_);
}

}  // namespace trilist
