#include "src/degree/pareto.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/status.h"

namespace trilist {

DiscretePareto::DiscretePareto(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  TRILIST_DCHECK(alpha > 0.0 && beta > 0.0);
}

double DiscretePareto::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  const double k = std::floor(x);
  return 1.0 - std::pow(1.0 + k / beta_, -alpha_);
}

double DiscretePareto::Survival(double x) const {
  if (x < 1.0) return 1.0;
  const double k = std::floor(x);
  return std::pow(1.0 + k / beta_, -alpha_);
}

double DiscretePareto::Pmf(int64_t k) const {
  if (k < 1) return 0.0;
  const double km1 = static_cast<double>(k - 1);
  return std::pow(1.0 + km1 / beta_, -alpha_) -
         std::pow(1.0 + static_cast<double>(k) / beta_, -alpha_);
}

int64_t DiscretePareto::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  // Smallest k >= 1 with (1 + k/beta)^(-alpha) <= 1 - u.
  const double raw = beta_ * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
  int64_t k = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(raw)));
  // Guard against floating-point edges: walk to the exact boundary.
  while (k > 1 && Cdf(static_cast<double>(k - 1)) >= u) --k;
  while (Cdf(static_cast<double>(k)) < u) ++k;
  return k;
}

double DiscretePareto::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  // E[D] = sum_{k >= 0} (1 + k/beta)^(-alpha). Sum the first block exactly
  // and integrate the tail: sum_{k >= K} (1+k/b)^-a ~ integral + 0.5 term
  // (midpoint correction keeps the error ~1e-8 for K = 1e6).
  const int64_t kExactTerms = 1 << 20;
  double mean = 0.0;
  for (int64_t k = 0; k < kExactTerms; ++k) {
    mean += std::pow(1.0 + static_cast<double>(k) / beta_, -alpha_);
  }
  const double K = static_cast<double>(kExactTerms);
  // integral_{K - 0.5}^{inf} (1 + x/b)^-a dx = b/(a-1) (1 + (K-0.5)/b)^{1-a}
  mean += beta_ / (alpha_ - 1.0) *
          std::pow(1.0 + (K - 0.5) / beta_, 1.0 - alpha_);
  return mean;
}

std::string DiscretePareto::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "DiscretePareto(alpha=%.4g, beta=%.4g)",
                alpha_, beta_);
  return buf;
}

ContinuousPareto::ContinuousPareto(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  TRILIST_DCHECK(alpha > 0.0 && beta > 0.0);
}

double ContinuousPareto::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 + x / beta_, -alpha_);
}

double ContinuousPareto::Density(double x) const {
  if (x < 0.0) return 0.0;
  return alpha_ / beta_ * std::pow(1.0 + x / beta_, -alpha_ - 1.0);
}

double ContinuousPareto::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  return beta_ * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
}

double ContinuousPareto::Mean() const {
  if (alpha_ <= 1.0) return std::numeric_limits<double>::infinity();
  return beta_ / (alpha_ - 1.0);
}

double ContinuousPareto::SpreadCdf(double x) const {
  TRILIST_DCHECK(alpha_ > 1.0);
  if (x <= 0.0) return 0.0;
  return 1.0 - (beta_ + alpha_ * x) / beta_ * std::pow(1.0 + x / beta_, -alpha_);
}

}  // namespace trilist
