#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/util/rng.h"

/// \file distribution.h
/// Degree distributions F(x) on the integers [1, inf) (Section 1.2).
///
/// The stochastic framework of the paper starts from a fixed CDF F on the
/// positive integers; finite graphs use its truncation
/// F_n(x) = F(x) / F(t_n) to [1, t_n] (see truncated.h). Every distribution
/// exposes its CDF, PMF, quantile function and sampling; heavy-tailed
/// implementations override the defaults with closed forms.

namespace trilist {

/// Sentinel for distributions with unbounded support.
inline constexpr int64_t kUnboundedSupport = INT64_MAX;

/// \brief A discrete degree distribution supported on integers >= 1.
class DegreeDistribution {
 public:
  virtual ~DegreeDistribution() = default;

  /// CDF F(x) = P(D <= x) evaluated at real x (right-continuous step
  /// function of floor(x)). Must satisfy F(x) = 0 for x < 1.
  virtual double Cdf(double x) const = 0;

  /// Survival function P(D > x). Defaults to 1 - Cdf(x); heavy-tailed
  /// distributions override it with a direct form because the model code
  /// computes block masses as S(a) - S(b), which stays accurate in the
  /// deep tail where 1 - F(x) underflows the CDF's precision.
  virtual double Survival(double x) const { return 1.0 - Cdf(x); }

  /// PMF P(D = k). Default: F(k) - F(k-1).
  virtual double Pmf(int64_t k) const;

  /// Largest support point, or kUnboundedSupport.
  virtual int64_t MaxSupport() const { return kUnboundedSupport; }

  /// Quantile: smallest integer k >= 1 with F(k) >= u, for u in [0,1).
  /// Default: galloping + binary search over the CDF.
  virtual int64_t Quantile(double u) const;

  /// Expected value E[D]; may be +inf for heavy tails with alpha <= 1.
  /// Default: numeric tail sum via E[D] = sum_{k>=0} (1 - F(k)) with
  /// geometric block compression (relative block width 1e-6).
  virtual double Mean() const;

  /// Human-readable name including parameters, for reports.
  virtual std::string Name() const = 0;

  /// Draws one variate by inversion.
  int64_t Sample(Rng* rng) const { return Quantile(rng->NextDouble()); }
};

/// Numerically approximates E[g(D)] for a monotone-block-compressible
/// integrand by summing g(k) * (F(k + jump - 1) - F(k - 1)) over geometric
/// blocks with relative width `eps`, stopping at `max_k` (or the
/// distribution's own support bound).
///
/// This is the same compression idea as the paper's Algorithm 2 and is used
/// for means, second moments, and tail diagnostics of unbounded
/// distributions.
double ApproxExpectation(const DegreeDistribution& dist, double (*g)(double),
                         int64_t max_k = kUnboundedSupport,
                         double eps = 1e-7);

}  // namespace trilist
