#pragma once

#include <cstdint>
#include <string>

#include "src/degree/distribution.h"

/// \file pareto.h
/// Pareto degree distributions (Section 7.1).
///
/// The paper starts with a continuous Pareto CDF
///   F*(x) = 1 - (1 + x/beta)^(-alpha),  x >= 0,
/// and discretizes it by rounding each variate up, producing
///   F(x)  = 1 - (1 + floor(x)/beta)^(-alpha)
/// on the natural numbers. The evaluation keeps beta = 30(alpha - 1), which
/// yields E[D] ~ 30.5 after discretization.

namespace trilist {

/// \brief Discretized Pareto degree distribution on integers >= 1.
class DiscretePareto : public DegreeDistribution {
 public:
  /// \param alpha tail/shape parameter (> 0).
  /// \param beta  scale parameter (> 0).
  DiscretePareto(double alpha, double beta);

  double Cdf(double x) const override;
  double Survival(double x) const override;
  double Pmf(int64_t k) const override;
  int64_t Quantile(double u) const override;
  /// Closed-ish form: E[D] = sum_{k>=0} (1 + k/beta)^(-alpha), evaluated
  /// with block compression; +inf for alpha <= 1.
  double Mean() const override;
  std::string Name() const override;

  /// Tail/shape parameter alpha.
  double alpha() const { return alpha_; }
  /// Scale parameter beta.
  double beta() const { return beta_; }

  /// The paper's evaluation convention beta = 30(alpha-1), giving
  /// E[D] ~ 30.5 after discretization (Section 7.3).
  static DiscretePareto PaperParameterization(double alpha) {
    return DiscretePareto(alpha, 30.0 * (alpha - 1.0));
  }

 private:
  double alpha_;
  double beta_;
};

/// \brief Continuous Pareto on [0, inf): F*(x) = 1 - (1 + x/beta)^(-alpha).
///
/// Used by the continuous model Eq. (49) and for the closed-form spread
/// distribution Eq. (19). Not a DegreeDistribution (support is continuous);
/// the discrete library interacts with it only through the model layer.
class ContinuousPareto {
 public:
  /// \param alpha tail/shape parameter (> 0).
  /// \param beta  scale parameter (> 0).
  ContinuousPareto(double alpha, double beta);

  /// CDF F*(x); 0 for x < 0.
  double Cdf(double x) const;
  /// Density f*(x) = alpha/beta (1 + x/beta)^(-alpha-1).
  double Density(double x) const;
  /// Inverse CDF for u in [0, 1).
  double Quantile(double u) const;
  /// E[D] = beta / (alpha - 1); +inf for alpha <= 1.
  double Mean() const;
  /// Closed-form spread CDF with w(x) = x, Eq. (19):
  ///   J(x) = 1 - (beta + alpha x)/beta * (1 + x/beta)^(-alpha).
  /// Requires alpha > 1 (finite mean).
  double SpreadCdf(double x) const;

  /// Tail/shape parameter alpha.
  double alpha() const { return alpha_; }
  /// Scale parameter beta.
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

}  // namespace trilist
