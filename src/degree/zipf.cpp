#include "src/degree/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/util/status.h"

namespace trilist {

ZipfDegree::ZipfDegree(double s, int64_t max_k) : s_(s), max_k_(max_k) {
  TRILIST_DCHECK(s > 0.0 && max_k >= 1);
  cdf_.resize(static_cast<size_t>(max_k));
  double acc = 0.0;
  for (int64_t k = 1; k <= max_k; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[static_cast<size_t>(k - 1)] = acc;
  }
  for (double& v : cdf_) v /= acc;
  cdf_.back() = 1.0;
}

double ZipfDegree::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  const auto k = static_cast<int64_t>(std::floor(x));
  if (k >= max_k_) return 1.0;
  return cdf_[static_cast<size_t>(k - 1)];
}

double ZipfDegree::Pmf(int64_t k) const {
  if (k < 1 || k > max_k_) return 0.0;
  if (k == 1) return cdf_[0];
  return cdf_[static_cast<size_t>(k - 1)] - cdf_[static_cast<size_t>(k - 2)];
}

int64_t ZipfDegree::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double ZipfDegree::Mean() const {
  double mean = 0.0;
  for (int64_t k = 1; k <= max_k_; ++k) {
    mean += static_cast<double>(k) * Pmf(k);
  }
  return mean;
}

std::string ZipfDegree::Name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "Zipf(s=%.3g, N=%lld)", s_,
                static_cast<long long>(max_k_));
  return buf;
}

ShiftedPoissonDegree::ShiftedPoissonDegree(double lambda)
    : lambda_(lambda) {
  TRILIST_DCHECK(lambda > 0.0);
  // Accumulate the PMF until the remaining tail is below 1e-17.
  double term = std::exp(-lambda);  // P(P = 0)
  double acc = term;
  cdf_.push_back(acc);  // F(1)
  for (int64_t p = 1; acc < 1.0 - 1e-17 && p < 1 << 22; ++p) {
    term *= lambda / static_cast<double>(p);
    acc += term;
    cdf_.push_back(std::min(acc, 1.0));
  }
  cdf_.back() = 1.0;
}

double ShiftedPoissonDegree::Cdf(double x) const {
  if (x < 1.0) return 0.0;
  const auto k = static_cast<size_t>(std::floor(x));
  if (k >= cdf_.size()) return 1.0;
  return cdf_[k - 1];
}

double ShiftedPoissonDegree::Pmf(int64_t k) const {
  if (k < 1 || k > static_cast<int64_t>(cdf_.size())) return 0.0;
  if (k == 1) return cdf_[0];
  return cdf_[static_cast<size_t>(k - 1)] - cdf_[static_cast<size_t>(k - 2)];
}

int64_t ShiftedPoissonDegree::Quantile(double u) const {
  TRILIST_DCHECK(u >= 0.0 && u < 1.0);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

std::string ShiftedPoissonDegree::Name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "ShiftedPoisson(lambda=%.3g)", lambda_);
  return buf;
}

}  // namespace trilist
