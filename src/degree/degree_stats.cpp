#include "src/degree/degree_stats.h"

#include <algorithm>

namespace trilist {

int64_t MaxDegree(const std::vector<int64_t>& degrees) {
  if (degrees.empty()) return 0;
  return *std::max_element(degrees.begin(), degrees.end());
}

std::vector<int64_t> SortedAscending(std::vector<int64_t> degrees) {
  std::sort(degrees.begin(), degrees.end());
  return degrees;
}

std::vector<int64_t> AscendingDegrees(const Graph& g) {
  return SortedAscending(g.Degrees());
}

}  // namespace trilist
