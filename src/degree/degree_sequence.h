#pragma once

#include <cstdint>
#include <vector>

#include "src/degree/distribution.h"
#include "src/util/rng.h"

/// \file degree_sequence.h
/// IID degree sequences D_n = (D_n1, ..., D_nn) drawn from a (truncated)
/// degree distribution, and the ascending-sorted view A_n used by the
/// permutation machinery (Section 3.1).

namespace trilist {

/// \brief An n-vector of node degrees plus cached aggregates.
class DegreeSequence {
 public:
  /// Wraps an explicit degree vector.
  explicit DegreeSequence(std::vector<int64_t> degrees);

  /// Samples n iid degrees from `dist`.
  static DegreeSequence SampleIid(const DegreeDistribution& dist, size_t n,
                                  Rng* rng);

  /// Number of nodes n.
  size_t size() const { return degrees_.size(); }
  /// Degree of node i (0-based, pre-sorting order).
  int64_t operator[](size_t i) const { return degrees_[i]; }
  /// The raw vector.
  const std::vector<int64_t>& degrees() const { return degrees_; }

  /// Sum of all degrees (2m if realized exactly; odd sums drop one stub).
  int64_t Sum() const { return sum_; }
  /// Largest degree L_n.
  int64_t Max() const { return max_; }
  /// True iff the degree sum is even (a necessary graphicality condition).
  bool HasEvenSum() const { return sum_ % 2 == 0; }

  /// Returns the degrees sorted ascending — the paper's A_n vector. The
  /// original order is preserved in this object; the sorted copy is what
  /// permutations index into.
  std::vector<int64_t> SortedAscending() const;

 private:
  std::vector<int64_t> degrees_;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

}  // namespace trilist
