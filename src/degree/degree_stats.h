#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

/// \file degree_stats.h
/// Small shared helpers over degree vectors. Several layers need the same
/// two reductions — the maximum degree (bucket-queue sizing in the
/// smallest-last peeling, graphicality repair) and the ascending-sorted
/// sequence A_n (the cost model's input, catalog pricing, the split
/// ordering) — and each used to reimplement them inline. One home keeps
/// the tie-break and empty-input conventions identical everywhere.

namespace trilist {

/// Largest entry of a degree vector; 0 for an empty vector.
int64_t MaxDegree(const std::vector<int64_t>& degrees);

/// The vector sorted ascending — the paper's A_n when fed node degrees.
std::vector<int64_t> SortedAscending(std::vector<int64_t> degrees);

/// Ascending degree sequence of a realized graph (Degrees() + sort).
std::vector<int64_t> AscendingDegrees(const Graph& g);

}  // namespace trilist
