#include "src/degree/degree_sequence.h"

#include <algorithm>

namespace trilist {

DegreeSequence::DegreeSequence(std::vector<int64_t> degrees)
    : degrees_(std::move(degrees)) {
  for (int64_t d : degrees_) {
    sum_ += d;
    if (d > max_) max_ = d;
  }
}

DegreeSequence DegreeSequence::SampleIid(const DegreeDistribution& dist,
                                         size_t n, Rng* rng) {
  std::vector<int64_t> degrees(n);
  for (size_t i = 0; i < n; ++i) degrees[i] = dist.Sample(rng);
  return DegreeSequence(std::move(degrees));
}

std::vector<int64_t> DegreeSequence::SortedAscending() const {
  std::vector<int64_t> sorted = degrees_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace trilist
