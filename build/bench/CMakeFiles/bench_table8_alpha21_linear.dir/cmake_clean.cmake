file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_alpha21_linear.dir/bench_table8_alpha21_linear.cpp.o"
  "CMakeFiles/bench_table8_alpha21_linear.dir/bench_table8_alpha21_linear.cpp.o.d"
  "bench_table8_alpha21_linear"
  "bench_table8_alpha21_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_alpha21_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
