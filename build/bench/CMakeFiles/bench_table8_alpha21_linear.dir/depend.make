# Empty dependencies file for bench_table8_alpha21_linear.
# This may be replaced when dependencies are built.
