# Empty dependencies file for bench_table7_t2_root.
# This may be replaced when dependencies are built.
