file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_t2_root.dir/bench_table7_t2_root.cpp.o"
  "CMakeFiles/bench_table7_t2_root.dir/bench_table7_t2_root.cpp.o.d"
  "bench_table7_t2_root"
  "bench_table7_t2_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_t2_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
