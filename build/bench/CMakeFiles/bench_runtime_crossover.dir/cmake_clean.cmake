file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_crossover.dir/bench_runtime_crossover.cpp.o"
  "CMakeFiles/bench_runtime_crossover.dir/bench_runtime_crossover.cpp.o.d"
  "bench_runtime_crossover"
  "bench_runtime_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
