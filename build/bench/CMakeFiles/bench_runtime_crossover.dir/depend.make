# Empty dependencies file for bench_runtime_crossover.
# This may be replaced when dependencies are built.
