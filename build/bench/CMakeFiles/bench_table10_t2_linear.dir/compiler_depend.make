# Empty compiler generated dependencies file for bench_table10_t2_linear.
# This may be replaced when dependencies are built.
