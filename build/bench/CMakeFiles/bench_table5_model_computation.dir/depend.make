# Empty dependencies file for bench_table5_model_computation.
# This may be replaced when dependencies are built.
