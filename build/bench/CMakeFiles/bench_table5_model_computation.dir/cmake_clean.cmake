file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_model_computation.dir/bench_table5_model_computation.cpp.o"
  "CMakeFiles/bench_table5_model_computation.dir/bench_table5_model_computation.cpp.o.d"
  "bench_table5_model_computation"
  "bench_table5_model_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_model_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
