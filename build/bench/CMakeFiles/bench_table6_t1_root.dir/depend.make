# Empty dependencies file for bench_table6_t1_root.
# This may be replaced when dependencies are built.
