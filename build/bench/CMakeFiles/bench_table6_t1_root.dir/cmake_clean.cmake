file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_t1_root.dir/bench_table6_t1_root.cpp.o"
  "CMakeFiles/bench_table6_t1_root.dir/bench_table6_t1_root.cpp.o.d"
  "bench_table6_t1_root"
  "bench_table6_t1_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_t1_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
