# Empty dependencies file for bench_generator_speed.
# This may be replaced when dependencies are built.
