# Empty dependencies file for bench_table9_t1_linear.
# This may be replaced when dependencies are built.
