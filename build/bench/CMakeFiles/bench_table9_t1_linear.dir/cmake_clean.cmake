file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_t1_linear.dir/bench_table9_t1_linear.cpp.o"
  "CMakeFiles/bench_table9_t1_linear.dir/bench_table9_t1_linear.cpp.o.d"
  "bench_table9_t1_linear"
  "bench_table9_t1_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_t1_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
