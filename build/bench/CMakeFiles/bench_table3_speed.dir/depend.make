# Empty dependencies file for bench_table3_speed.
# This may be replaced when dependencies are built.
