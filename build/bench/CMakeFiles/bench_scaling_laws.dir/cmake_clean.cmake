file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_laws.dir/bench_scaling_laws.cpp.o"
  "CMakeFiles/bench_scaling_laws.dir/bench_scaling_laws.cpp.o.d"
  "bench_scaling_laws"
  "bench_scaling_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
