# Empty dependencies file for bench_scaling_laws.
# This may be replaced when dependencies are built.
