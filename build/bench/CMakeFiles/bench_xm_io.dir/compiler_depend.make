# Empty compiler generated dependencies file for bench_xm_io.
# This may be replaced when dependencies are built.
