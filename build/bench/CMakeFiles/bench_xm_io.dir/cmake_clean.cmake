file(REMOVE_RECURSE
  "CMakeFiles/bench_xm_io.dir/bench_xm_io.cpp.o"
  "CMakeFiles/bench_xm_io.dir/bench_xm_io.cpp.o.d"
  "bench_xm_io"
  "bench_xm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
