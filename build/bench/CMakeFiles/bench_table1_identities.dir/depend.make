# Empty dependencies file for bench_table1_identities.
# This may be replaced when dependencies are built.
