file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_identities.dir/bench_table1_identities.cpp.o"
  "CMakeFiles/bench_table1_identities.dir/bench_table1_identities.cpp.o.d"
  "bench_table1_identities"
  "bench_table1_identities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_identities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
