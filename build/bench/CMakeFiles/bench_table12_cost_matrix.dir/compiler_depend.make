# Empty compiler generated dependencies file for bench_table12_cost_matrix.
# This may be replaced when dependencies are built.
