# Empty dependencies file for bench_table11_weight_functions.
# This may be replaced when dependencies are built.
