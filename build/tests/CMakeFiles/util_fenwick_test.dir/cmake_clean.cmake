file(REMOVE_RECURSE
  "CMakeFiles/util_fenwick_test.dir/util_fenwick_test.cpp.o"
  "CMakeFiles/util_fenwick_test.dir/util_fenwick_test.cpp.o.d"
  "util_fenwick_test"
  "util_fenwick_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_fenwick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
