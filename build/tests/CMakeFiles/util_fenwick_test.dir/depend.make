# Empty dependencies file for util_fenwick_test.
# This may be replaced when dependencies are built.
