file(REMOVE_RECURSE
  "CMakeFiles/model_glivenko_test.dir/model_glivenko_test.cpp.o"
  "CMakeFiles/model_glivenko_test.dir/model_glivenko_test.cpp.o.d"
  "model_glivenko_test"
  "model_glivenko_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_glivenko_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
