# Empty compiler generated dependencies file for model_glivenko_test.
# This may be replaced when dependencies are built.
