file(REMOVE_RECURSE
  "CMakeFiles/oriented_graph_test.dir/oriented_graph_test.cpp.o"
  "CMakeFiles/oriented_graph_test.dir/oriented_graph_test.cpp.o.d"
  "oriented_graph_test"
  "oriented_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oriented_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
