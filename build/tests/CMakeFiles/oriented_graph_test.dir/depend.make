# Empty dependencies file for oriented_graph_test.
# This may be replaced when dependencies are built.
