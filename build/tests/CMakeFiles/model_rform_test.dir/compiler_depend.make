# Empty compiler generated dependencies file for model_rform_test.
# This may be replaced when dependencies are built.
