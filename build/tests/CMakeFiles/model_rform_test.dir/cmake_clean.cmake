file(REMOVE_RECURSE
  "CMakeFiles/model_rform_test.dir/model_rform_test.cpp.o"
  "CMakeFiles/model_rform_test.dir/model_rform_test.cpp.o.d"
  "model_rform_test"
  "model_rform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_rform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
