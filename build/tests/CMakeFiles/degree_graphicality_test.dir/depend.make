# Empty dependencies file for degree_graphicality_test.
# This may be replaced when dependencies are built.
