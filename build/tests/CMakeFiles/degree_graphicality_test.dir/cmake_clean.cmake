file(REMOVE_RECURSE
  "CMakeFiles/degree_graphicality_test.dir/degree_graphicality_test.cpp.o"
  "CMakeFiles/degree_graphicality_test.dir/degree_graphicality_test.cpp.o.d"
  "degree_graphicality_test"
  "degree_graphicality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_graphicality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
