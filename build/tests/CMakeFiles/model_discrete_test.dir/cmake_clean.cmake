file(REMOVE_RECURSE
  "CMakeFiles/model_discrete_test.dir/model_discrete_test.cpp.o"
  "CMakeFiles/model_discrete_test.dir/model_discrete_test.cpp.o.d"
  "model_discrete_test"
  "model_discrete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_discrete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
