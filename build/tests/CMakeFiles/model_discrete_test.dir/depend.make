# Empty dependencies file for model_discrete_test.
# This may be replaced when dependencies are built.
