# Empty compiler generated dependencies file for model_kernel_test.
# This may be replaced when dependencies are built.
