file(REMOVE_RECURSE
  "CMakeFiles/model_kernel_test.dir/model_kernel_test.cpp.o"
  "CMakeFiles/model_kernel_test.dir/model_kernel_test.cpp.o.d"
  "model_kernel_test"
  "model_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
