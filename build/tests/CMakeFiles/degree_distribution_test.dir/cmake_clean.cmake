file(REMOVE_RECURSE
  "CMakeFiles/degree_distribution_test.dir/degree_distribution_test.cpp.o"
  "CMakeFiles/degree_distribution_test.dir/degree_distribution_test.cpp.o.d"
  "degree_distribution_test"
  "degree_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
