# Empty dependencies file for degree_distribution_test.
# This may be replaced when dependencies are built.
