file(REMOVE_RECURSE
  "CMakeFiles/zipf_poisson_test.dir/zipf_poisson_test.cpp.o"
  "CMakeFiles/zipf_poisson_test.dir/zipf_poisson_test.cpp.o.d"
  "zipf_poisson_test"
  "zipf_poisson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zipf_poisson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
