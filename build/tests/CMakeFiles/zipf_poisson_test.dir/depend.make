# Empty dependencies file for zipf_poisson_test.
# This may be replaced when dependencies are built.
