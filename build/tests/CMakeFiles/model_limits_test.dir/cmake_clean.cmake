file(REMOVE_RECURSE
  "CMakeFiles/model_limits_test.dir/model_limits_test.cpp.o"
  "CMakeFiles/model_limits_test.dir/model_limits_test.cpp.o.d"
  "model_limits_test"
  "model_limits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
