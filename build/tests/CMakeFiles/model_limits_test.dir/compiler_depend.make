# Empty compiler generated dependencies file for model_limits_test.
# This may be replaced when dependencies are built.
