# Empty compiler generated dependencies file for wedge_sampling_test.
# This may be replaced when dependencies are built.
