file(REMOVE_RECURSE
  "CMakeFiles/wedge_sampling_test.dir/wedge_sampling_test.cpp.o"
  "CMakeFiles/wedge_sampling_test.dir/wedge_sampling_test.cpp.o.d"
  "wedge_sampling_test"
  "wedge_sampling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wedge_sampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
