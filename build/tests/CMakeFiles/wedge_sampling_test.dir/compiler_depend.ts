# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wedge_sampling_test.
