file(REMOVE_RECURSE
  "CMakeFiles/stochastic_properties_test.dir/stochastic_properties_test.cpp.o"
  "CMakeFiles/stochastic_properties_test.dir/stochastic_properties_test.cpp.o.d"
  "stochastic_properties_test"
  "stochastic_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stochastic_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
