# Empty dependencies file for stochastic_properties_test.
# This may be replaced when dependencies are built.
