file(REMOVE_RECURSE
  "CMakeFiles/model_sim_integration_test.dir/model_sim_integration_test.cpp.o"
  "CMakeFiles/model_sim_integration_test.dir/model_sim_integration_test.cpp.o.d"
  "model_sim_integration_test"
  "model_sim_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_sim_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
