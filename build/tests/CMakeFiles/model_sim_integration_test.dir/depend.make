# Empty dependencies file for model_sim_integration_test.
# This may be replaced when dependencies are built.
