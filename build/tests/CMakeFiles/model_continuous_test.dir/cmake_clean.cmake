file(REMOVE_RECURSE
  "CMakeFiles/model_continuous_test.dir/model_continuous_test.cpp.o"
  "CMakeFiles/model_continuous_test.dir/model_continuous_test.cpp.o.d"
  "model_continuous_test"
  "model_continuous_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_continuous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
