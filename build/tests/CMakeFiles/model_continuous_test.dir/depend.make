# Empty dependencies file for model_continuous_test.
# This may be replaced when dependencies are built.
