# Empty compiler generated dependencies file for algo_cost_test.
# This may be replaced when dependencies are built.
