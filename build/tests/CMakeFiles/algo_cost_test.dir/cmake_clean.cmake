file(REMOVE_RECURSE
  "CMakeFiles/algo_cost_test.dir/algo_cost_test.cpp.o"
  "CMakeFiles/algo_cost_test.dir/algo_cost_test.cpp.o.d"
  "algo_cost_test"
  "algo_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
