# Empty dependencies file for algo_correctness_test.
# This may be replaced when dependencies are built.
