file(REMOVE_RECURSE
  "CMakeFiles/algo_correctness_test.dir/algo_correctness_test.cpp.o"
  "CMakeFiles/algo_correctness_test.dir/algo_correctness_test.cpp.o.d"
  "algo_correctness_test"
  "algo_correctness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
