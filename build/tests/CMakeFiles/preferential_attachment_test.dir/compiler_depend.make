# Empty compiler generated dependencies file for preferential_attachment_test.
# This may be replaced when dependencies are built.
