file(REMOVE_RECURSE
  "CMakeFiles/preferential_attachment_test.dir/preferential_attachment_test.cpp.o"
  "CMakeFiles/preferential_attachment_test.dir/preferential_attachment_test.cpp.o.d"
  "preferential_attachment_test"
  "preferential_attachment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preferential_attachment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
