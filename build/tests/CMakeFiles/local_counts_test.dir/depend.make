# Empty dependencies file for local_counts_test.
# This may be replaced when dependencies are built.
