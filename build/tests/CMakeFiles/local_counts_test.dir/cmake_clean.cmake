file(REMOVE_RECURSE
  "CMakeFiles/local_counts_test.dir/local_counts_test.cpp.o"
  "CMakeFiles/local_counts_test.dir/local_counts_test.cpp.o.d"
  "local_counts_test"
  "local_counts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_counts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
