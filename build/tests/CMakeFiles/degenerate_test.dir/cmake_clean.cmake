file(REMOVE_RECURSE
  "CMakeFiles/degenerate_test.dir/degenerate_test.cpp.o"
  "CMakeFiles/degenerate_test.dir/degenerate_test.cpp.o.d"
  "degenerate_test"
  "degenerate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degenerate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
