file(REMOVE_RECURSE
  "CMakeFiles/paper_values_test.dir/paper_values_test.cpp.o"
  "CMakeFiles/paper_values_test.dir/paper_values_test.cpp.o.d"
  "paper_values_test"
  "paper_values_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_values_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
