# Empty compiler generated dependencies file for paper_values_test.
# This may be replaced when dependencies are built.
