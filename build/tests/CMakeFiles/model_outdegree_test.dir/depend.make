# Empty dependencies file for model_outdegree_test.
# This may be replaced when dependencies are built.
