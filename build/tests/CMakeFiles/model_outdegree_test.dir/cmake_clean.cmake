file(REMOVE_RECURSE
  "CMakeFiles/model_outdegree_test.dir/model_outdegree_test.cpp.o"
  "CMakeFiles/model_outdegree_test.dir/model_outdegree_test.cpp.o.d"
  "model_outdegree_test"
  "model_outdegree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_outdegree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
