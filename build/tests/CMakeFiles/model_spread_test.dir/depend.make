# Empty dependencies file for model_spread_test.
# This may be replaced when dependencies are built.
