file(REMOVE_RECURSE
  "CMakeFiles/model_spread_test.dir/model_spread_test.cpp.o"
  "CMakeFiles/model_spread_test.dir/model_spread_test.cpp.o.d"
  "model_spread_test"
  "model_spread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_spread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
