# Empty dependencies file for trilist_cli.
# This may be replaced when dependencies are built.
