file(REMOVE_RECURSE
  "CMakeFiles/trilist_cli.dir/trilist_cli.cpp.o"
  "CMakeFiles/trilist_cli.dir/trilist_cli.cpp.o.d"
  "trilist_cli"
  "trilist_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trilist_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
