# Empty dependencies file for orientation_advisor.
# This may be replaced when dependencies are built.
