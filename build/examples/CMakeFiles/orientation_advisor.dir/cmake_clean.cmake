file(REMOVE_RECURSE
  "CMakeFiles/orientation_advisor.dir/orientation_advisor.cpp.o"
  "CMakeFiles/orientation_advisor.dir/orientation_advisor.cpp.o.d"
  "orientation_advisor"
  "orientation_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orientation_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
