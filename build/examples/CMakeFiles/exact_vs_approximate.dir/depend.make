# Empty dependencies file for exact_vs_approximate.
# This may be replaced when dependencies are built.
