file(REMOVE_RECURSE
  "CMakeFiles/exact_vs_approximate.dir/exact_vs_approximate.cpp.o"
  "CMakeFiles/exact_vs_approximate.dir/exact_vs_approximate.cpp.o.d"
  "exact_vs_approximate"
  "exact_vs_approximate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_vs_approximate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
