# Empty dependencies file for clustering_analysis.
# This may be replaced when dependencies are built.
