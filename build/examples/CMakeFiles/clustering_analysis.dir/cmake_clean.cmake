file(REMOVE_RECURSE
  "CMakeFiles/clustering_analysis.dir/clustering_analysis.cpp.o"
  "CMakeFiles/clustering_analysis.dir/clustering_analysis.cpp.o.d"
  "clustering_analysis"
  "clustering_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
