# Empty compiler generated dependencies file for trilist.
# This may be replaced when dependencies are built.
