
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/baselines.cpp" "src/CMakeFiles/trilist.dir/algo/baselines.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/baselines.cpp.o.d"
  "/root/repo/src/algo/brute_force.cpp" "src/CMakeFiles/trilist.dir/algo/brute_force.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/brute_force.cpp.o.d"
  "/root/repo/src/algo/cost.cpp" "src/CMakeFiles/trilist.dir/algo/cost.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/cost.cpp.o.d"
  "/root/repo/src/algo/edge_iterator.cpp" "src/CMakeFiles/trilist.dir/algo/edge_iterator.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/edge_iterator.cpp.o.d"
  "/root/repo/src/algo/intersect.cpp" "src/CMakeFiles/trilist.dir/algo/intersect.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/intersect.cpp.o.d"
  "/root/repo/src/algo/local_counts.cpp" "src/CMakeFiles/trilist.dir/algo/local_counts.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/local_counts.cpp.o.d"
  "/root/repo/src/algo/lookup_iterator.cpp" "src/CMakeFiles/trilist.dir/algo/lookup_iterator.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/lookup_iterator.cpp.o.d"
  "/root/repo/src/algo/registry.cpp" "src/CMakeFiles/trilist.dir/algo/registry.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/registry.cpp.o.d"
  "/root/repo/src/algo/triangle_sink.cpp" "src/CMakeFiles/trilist.dir/algo/triangle_sink.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/triangle_sink.cpp.o.d"
  "/root/repo/src/algo/vertex_iterator.cpp" "src/CMakeFiles/trilist.dir/algo/vertex_iterator.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/vertex_iterator.cpp.o.d"
  "/root/repo/src/algo/wedge_sampling.cpp" "src/CMakeFiles/trilist.dir/algo/wedge_sampling.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/algo/wedge_sampling.cpp.o.d"
  "/root/repo/src/core/advisor.cpp" "src/CMakeFiles/trilist.dir/core/advisor.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/advisor.cpp.o.d"
  "/root/repo/src/core/continuous_model.cpp" "src/CMakeFiles/trilist.dir/core/continuous_model.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/continuous_model.cpp.o.d"
  "/root/repo/src/core/discrete_model.cpp" "src/CMakeFiles/trilist.dir/core/discrete_model.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/discrete_model.cpp.o.d"
  "/root/repo/src/core/fast_model.cpp" "src/CMakeFiles/trilist.dir/core/fast_model.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/fast_model.cpp.o.d"
  "/root/repo/src/core/h_function.cpp" "src/CMakeFiles/trilist.dir/core/h_function.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/h_function.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/CMakeFiles/trilist.dir/core/kernel.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/kernel.cpp.o.d"
  "/root/repo/src/core/limits.cpp" "src/CMakeFiles/trilist.dir/core/limits.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/limits.cpp.o.d"
  "/root/repo/src/core/out_degree_model.cpp" "src/CMakeFiles/trilist.dir/core/out_degree_model.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/out_degree_model.cpp.o.d"
  "/root/repo/src/core/pmf_table.cpp" "src/CMakeFiles/trilist.dir/core/pmf_table.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/pmf_table.cpp.o.d"
  "/root/repo/src/core/r_function.cpp" "src/CMakeFiles/trilist.dir/core/r_function.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/r_function.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/CMakeFiles/trilist.dir/core/scaling.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/scaling.cpp.o.d"
  "/root/repo/src/core/spread.cpp" "src/CMakeFiles/trilist.dir/core/spread.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/spread.cpp.o.d"
  "/root/repo/src/core/xi_map.cpp" "src/CMakeFiles/trilist.dir/core/xi_map.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/core/xi_map.cpp.o.d"
  "/root/repo/src/degree/degree_sequence.cpp" "src/CMakeFiles/trilist.dir/degree/degree_sequence.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/degree_sequence.cpp.o.d"
  "/root/repo/src/degree/distribution.cpp" "src/CMakeFiles/trilist.dir/degree/distribution.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/distribution.cpp.o.d"
  "/root/repo/src/degree/graphicality.cpp" "src/CMakeFiles/trilist.dir/degree/graphicality.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/graphicality.cpp.o.d"
  "/root/repo/src/degree/pareto.cpp" "src/CMakeFiles/trilist.dir/degree/pareto.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/pareto.cpp.o.d"
  "/root/repo/src/degree/simple_distributions.cpp" "src/CMakeFiles/trilist.dir/degree/simple_distributions.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/simple_distributions.cpp.o.d"
  "/root/repo/src/degree/truncated.cpp" "src/CMakeFiles/trilist.dir/degree/truncated.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/truncated.cpp.o.d"
  "/root/repo/src/degree/zipf.cpp" "src/CMakeFiles/trilist.dir/degree/zipf.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/degree/zipf.cpp.o.d"
  "/root/repo/src/gen/configuration_model.cpp" "src/CMakeFiles/trilist.dir/gen/configuration_model.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/gen/configuration_model.cpp.o.d"
  "/root/repo/src/gen/erdos_renyi.cpp" "src/CMakeFiles/trilist.dir/gen/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/gen/preferential_attachment.cpp" "src/CMakeFiles/trilist.dir/gen/preferential_attachment.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/gen/preferential_attachment.cpp.o.d"
  "/root/repo/src/gen/residual_generator.cpp" "src/CMakeFiles/trilist.dir/gen/residual_generator.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/gen/residual_generator.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/trilist.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/edge_set.cpp" "src/CMakeFiles/trilist.dir/graph/edge_set.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/graph/edge_set.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/trilist.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/trilist.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/oriented_graph.cpp" "src/CMakeFiles/trilist.dir/graph/oriented_graph.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/graph/oriented_graph.cpp.o.d"
  "/root/repo/src/order/degenerate.cpp" "src/CMakeFiles/trilist.dir/order/degenerate.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/order/degenerate.cpp.o.d"
  "/root/repo/src/order/named_orders.cpp" "src/CMakeFiles/trilist.dir/order/named_orders.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/order/named_orders.cpp.o.d"
  "/root/repo/src/order/optimal.cpp" "src/CMakeFiles/trilist.dir/order/optimal.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/order/optimal.cpp.o.d"
  "/root/repo/src/order/permutation.cpp" "src/CMakeFiles/trilist.dir/order/permutation.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/order/permutation.cpp.o.d"
  "/root/repo/src/order/pipeline.cpp" "src/CMakeFiles/trilist.dir/order/pipeline.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/order/pipeline.cpp.o.d"
  "/root/repo/src/sim/cost_measurement.cpp" "src/CMakeFiles/trilist.dir/sim/cost_measurement.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/sim/cost_measurement.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/trilist.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/trilist.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/sim/report.cpp.o.d"
  "/root/repo/src/util/fenwick_tree.cpp" "src/CMakeFiles/trilist.dir/util/fenwick_tree.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/fenwick_tree.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/trilist.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/trilist.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/trilist.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/status.cpp.o.d"
  "/root/repo/src/util/table_printer.cpp" "src/CMakeFiles/trilist.dir/util/table_printer.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/table_printer.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/trilist.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/util/timer.cpp.o.d"
  "/root/repo/src/xm/partitioned.cpp" "src/CMakeFiles/trilist.dir/xm/partitioned.cpp.o" "gcc" "src/CMakeFiles/trilist.dir/xm/partitioned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
