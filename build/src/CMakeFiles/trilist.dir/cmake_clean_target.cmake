file(REMOVE_RECURSE
  "libtrilist.a"
)
