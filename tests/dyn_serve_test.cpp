#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algo/cost.h"
#include "src/dyn/dyn_graph.h"
#include "src/dyn/mutation_log.h"
#include "src/graph/graph.h"
#include "src/serve/client.h"
#include "src/serve/net.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/serve/wire.h"

/// \file dyn_serve_test.cpp
/// The dynamic-graph serving surface: kMutate wire codec (including the
/// adversarial decode matrix — forged counts, truncation, unknown
/// opcodes), the epoch/COW view lifecycle through a live server, and the
/// mutate/query interleaving that TSan exercises in CI (`-L dyn`).

namespace trilist::serve {
namespace {

// ---------------------------------------------------------------------------
// Fixtures (same conventions as serve_test.cpp: per-test tmpdir names so
// parallel ctest invocations never collide).

/// K4 on {0..3} (4 triangles) plus the pendant path 3-4-5.
std::string WriteK4File(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fprintf(f, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 5\n");
  std::fclose(f);
  return path;
}

std::unique_ptr<TriangleServer> StartUnixServer(
    const std::string& test_name,
    const std::map<std::string, std::string>& named, ServerOptions options) {
  options.unix_path = ::testing::TempDir() + "trilist_dyn_" + test_name +
                      "_" + std::to_string(::getpid()) + ".sock";
  ::unlink(options.unix_path.c_str());
  options.named_graphs = named;
  auto server = TriangleServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).ValueOrDie();
}

ServeClient MustConnect(const TriangleServer& server) {
  auto client = ServeClient::ConnectUnix(server.unix_path());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).ValueOrDie();
}

MutateRequest Ops(const std::string& graph,
                  std::vector<dyn::EdgeMutation> ops) {
  MutateRequest request;
  request.graph = graph;
  request.ops = std::move(ops);
  return request;
}

// ---------------------------------------------------------------------------
// Mutate wire codec: round trips

TEST(MutateCodecTest, RequestRoundTrips) {
  const MutateRequest request =
      Ops("web", {{0, 1, true}, {7, 2, false}, {1u << 30, 5, true}});
  const std::string payload = EncodeMutateRequest(request);

  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kMutate);

  MutateRequest decoded;
  ASSERT_TRUE(DecodeMutateRequest(body, &decoded).ok());
  EXPECT_EQ(decoded.graph, "web");
  EXPECT_EQ(decoded.ops, request.ops);
}

TEST(MutateCodecTest, ReplyRoundTrips) {
  MutateReply reply;
  reply.epoch = 3;
  reply.seq = 1234;
  reply.applied_inserts = 10;
  reply.applied_deletes = 2;
  reply.noops = 1;
  reply.triangles = 42;
  reply.num_nodes = 100;
  reply.num_edges = 250;
  reply.overlay_arcs = 24;
  reply.compacted = 1;
  reply.predicted_ops = 96.5;
  reply.wall_s = 0.125;

  const std::string payload = EncodeMutateReply(reply);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kMutateOk);

  MutateReply decoded;
  ASSERT_TRUE(DecodeMutateReply(body, &decoded).ok());
  EXPECT_EQ(decoded.epoch, 3u);
  EXPECT_EQ(decoded.seq, 1234u);
  EXPECT_EQ(decoded.triangles, 42u);
  EXPECT_EQ(decoded.overlay_arcs, 24u);
  EXPECT_EQ(decoded.compacted, 1);
  EXPECT_EQ(decoded.predicted_ops, 96.5);
}

// ---------------------------------------------------------------------------
// Adversarial decode matrix: every hostile frame shape is rejected with
// a typed error, and never with an allocation proportional to what the
// frame *claims* (only to what it carries).

TEST(MutateCodecTest, UnknownOpcodeIsRejectedByTheHeader) {
  for (const uint16_t raw : {uint16_t{10}, uint16_t{999}, uint16_t{0xffff},
                             uint16_t{0}}) {
    WireWriter w;
    w.U32(kFrameMagic);
    w.U16(kProtocolVersion);
    w.U16(raw);
    const std::string payload = std::move(w).Take();
    MsgType type;
    std::string body;
    const Status st = DecodeHeader(payload, &type, &body);
    EXPECT_FALSE(st.ok()) << "accepted opcode " << raw;
  }
}

TEST(MutateCodecTest, EveryTruncatedFramePrefixIsRejected) {
  const std::string payload =
      EncodeMutateRequest(Ops("k4", {{0, 1, true}, {2, 3, false}}));
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(payload, &type, &body).ok());

  MutateRequest decoded;
  ASSERT_TRUE(DecodeMutateRequest(body, &decoded).ok());  // intact: fine
  for (size_t len = 0; len < body.size(); ++len) {
    MutateRequest scratch;
    EXPECT_FALSE(DecodeMutateRequest(body.substr(0, len), &scratch).ok())
        << "prefix length " << len;
  }
}

TEST(MutateCodecTest, ForgedCountIsRejectedBeforeAnyReserve) {
  // Claims the maximum legal batch but carries two ops' worth of bytes:
  // the decoder must bounce it off Remaining() before reserving.
  WireWriter w;
  w.Str("k4");
  w.U32(kMaxMutationsPerFrame);
  w.U8(1);
  w.U32(0);
  w.U32(1);
  const std::string body = std::move(w).Take();

  MutateRequest request;
  const Status st = DecodeMutateRequest(body, &request);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds frame body"), std::string::npos)
      << st.message();
  // No allocation proportional to the declared million ops.
  EXPECT_EQ(request.ops.capacity(), 0u);
}

TEST(MutateCodecTest, CountOutsideTheLegalRangeIsRejected) {
  for (const uint32_t count : {uint32_t{0}, kMaxMutationsPerFrame + 1}) {
    WireWriter w;
    w.Str("k4");
    w.U32(count);
    const std::string body = std::move(w).Take();
    MutateRequest request;
    const Status st = DecodeMutateRequest(body, &request);
    ASSERT_FALSE(st.ok()) << "accepted count " << count;
    EXPECT_NE(st.message().find("out of range"), std::string::npos);
  }
}

TEST(MutateCodecTest, ZeroLengthGraphNameIsRejected) {
  WireWriter w;
  w.Str("");
  w.U32(1);
  w.U8(1);
  w.U32(0);
  w.U32(1);
  const std::string body = std::move(w).Take();
  MutateRequest request;
  const Status st = DecodeMutateRequest(body, &request);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty graph name"), std::string::npos);
}

TEST(MutateCodecTest, BadOpByteAndSelfLoopAndTrailingBytesAreRejected) {
  const auto one_op_body = [](uint8_t op, uint32_t u, uint32_t v,
                              const std::string& trailing) {
    WireWriter w;
    w.Str("k4");
    w.U32(1);
    w.U8(op);
    w.U32(u);
    w.U32(v);
    std::string body = std::move(w).Take();
    body += trailing;
    return body;
  };
  MutateRequest request;
  EXPECT_FALSE(DecodeMutateRequest(one_op_body(2, 0, 1, ""), &request).ok());
  EXPECT_FALSE(DecodeMutateRequest(one_op_body(1, 4, 4, ""), &request).ok());
  EXPECT_FALSE(DecodeMutateRequest(one_op_body(1, 0, 1, "x"), &request).ok());
  EXPECT_TRUE(DecodeMutateRequest(one_op_body(1, 0, 1, ""), &request).ok());
}

// ---------------------------------------------------------------------------
// Live server: the epoch lifecycle

TEST(DynServeTest, MutateBumpsEpochAndMaintainsTheExactCount) {
  const std::string path = WriteK4File("dyn_mutate_k4.txt");
  auto server = StartUnixServer("mutate", {{"k4", path}}, ServerOptions{});
  ServeClient client = MustConnect(*server);

  // Closing the wedge 3-4-5 adds one triangle to the K4's four.
  auto reply = client.Mutate(Ops("k4", {{3, 5, true}}));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->epoch, 1u);
  EXPECT_EQ(reply->seq, 1u);
  EXPECT_EQ(reply->applied_inserts, 1u);
  EXPECT_EQ(reply->triangles, 5u);
  EXPECT_EQ(reply->num_edges, 9u);
  EXPECT_GT(reply->predicted_ops, 0.0);

  // A second batch: one delete plus one noop re-insert.
  reply = client.Mutate(Ops("k4", {{0, 1, false}, {2, 3, true}}));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->epoch, 2u);
  EXPECT_EQ(reply->seq, 3u);
  EXPECT_EQ(reply->applied_deletes, 1u);
  EXPECT_EQ(reply->noops, 1u);
  EXPECT_EQ(reply->triangles, 3u);  // 0-1 supported two K4 triangles

  const ServerStats stats = server->StatsSnapshot();
  EXPECT_EQ(stats.mutations_total, 2u);
  EXPECT_EQ(stats.mutate_ok, 2u);
}

TEST(DynServeTest, QueryAfterMutateSeesTheNewEpoch) {
  const std::string path = WriteK4File("dyn_qam_k4.txt");
  auto server = StartUnixServer("qam", {{"k4", path}}, ServerOptions{});
  ServeClient client = MustConnect(*server);

  QueryRequest query;
  query.graph = "k4";
  query.orient = OrientSpec{PermutationKind::kDescending, 1};
  query.methods = {Method::kT1, Method::kT2};

  auto before = client.Query(query);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  for (const MethodResult& m : before->methods) EXPECT_EQ(m.triangles, 4u);

  auto reply = client.Mutate(Ops("k4", {{3, 5, true}, {0, 4, true}}));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->triangles, 6u);  // wedges 3-4-5 and 0-3-4 both closed

  // The same spec against the new epoch: the cached epoch-0 orientation
  // must be invalidated, not served stale.
  auto after = client.Query(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->num_edges, 10u);
  for (const MethodResult& m : after->methods) {
    EXPECT_EQ(m.triangles, 6u) << MethodName(m.method);
  }
}

TEST(DynServeTest, MutateUnknownGraphIsNotFound) {
  const std::string path = WriteK4File("dyn_notfound_k4.txt");
  auto server = StartUnixServer("notfound", {{"k4", path}}, ServerOptions{});
  ServeClient client = MustConnect(*server);

  auto reply = client.Mutate(Ops("nope", {{0, 1, true}}));
  ASSERT_FALSE(reply.ok());
  ASSERT_TRUE(client.last_failure_was_reply());
  EXPECT_EQ(client.last_error().code, ErrorCode::kNotFound);
}

TEST(DynServeTest, MalformedMutateBodyIsBadRequestAndKeepsTheConnection) {
  const std::string path = WriteK4File("dyn_badreq_k4.txt");
  auto server = StartUnixServer("badreq", {{"k4", path}}, ServerOptions{});

  // Raw socket: a mutate frame whose single op is a self-loop.
  auto fd = ConnectUnix(server->unix_path());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  WireWriter w;
  w.U32(kFrameMagic);
  w.U16(kProtocolVersion);
  w.U16(static_cast<uint16_t>(MsgType::kMutate));
  w.Str("k4");
  w.U32(1);
  w.U8(1);
  w.U32(4);
  w.U32(4);
  ASSERT_TRUE(SendFrame(*fd, std::move(w).Take()).ok());

  std::string response;
  bool eof = false;
  ASSERT_TRUE(RecvFrame(*fd, &response, &eof).ok());
  ASSERT_FALSE(eof);
  MsgType type;
  std::string body;
  ASSERT_TRUE(DecodeHeader(response, &type, &body).ok());
  ASSERT_EQ(type, MsgType::kError);
  ErrorReply error;
  ASSERT_TRUE(DecodeError(body, &error).ok());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);

  // The header parsed, so the server keeps the stream: a well-formed
  // frame on the same connection still succeeds.
  WireWriter ping;
  ping.U32(kFrameMagic);
  ping.U16(kProtocolVersion);
  ping.U16(static_cast<uint16_t>(MsgType::kPing));
  ASSERT_TRUE(SendFrame(*fd, std::move(ping).Take()).ok());
  ASSERT_TRUE(RecvFrame(*fd, &response, &eof).ok());
  ASSERT_TRUE(DecodeHeader(response, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kPong);
  CloseFd(*fd);
}

TEST(DynServeTest, CompactionUnderServeKeepsCountsExact) {
  const std::string path = WriteK4File("dyn_compact_k4.txt");
  ServerOptions options;
  // Hair-trigger compaction: every batch that leaves overlay arcs
  // behind compacts immediately.
  options.compact_overlay_fraction = 1e-9;
  options.compact_min_arcs = 1;
  auto server = StartUnixServer("compact", {{"k4", path}}, options);
  ServeClient client = MustConnect(*server);

  auto reply = client.Mutate(Ops("k4", {{3, 5, true}}));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->compacted, 1);
  EXPECT_EQ(reply->overlay_arcs, 0u);
  EXPECT_EQ(reply->triangles, 5u);

  // Counts stay exact across the rebase, against both the maintained
  // counter and a served query.
  reply = client.Mutate(Ops("k4", {{0, 1, false}}));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->triangles, 3u);

  QueryRequest query;
  query.graph = "k4";
  query.methods = {Method::kT1};
  auto response = client.Query(query);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->methods.front().triangles, 3u);
  EXPECT_GE(server->StatsSnapshot().catalog.compactions, 1u);
}

TEST(DynServeTest, PrometheusExportsMutationCountersAndEpochGauges) {
  const std::string path = WriteK4File("dyn_prom_k4.txt");
  auto server = StartUnixServer("prom", {{"k4", path}}, ServerOptions{});
  ServeClient client = MustConnect(*server);

  ASSERT_TRUE(client.Mutate(Ops("k4", {{3, 5, true}, {3, 5, true}})).ok());

  auto text = client.Stats();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  for (const std::string& needle : {
           std::string("trilist_serve_mutations_total 1"),
           std::string("trilist_serve_mutate_ok_total 1"),
           std::string("trilist_serve_mutations_applied_total 1"),
           std::string("trilist_serve_mutation_noops_total 1"),
           std::string("trilist_serve_graph_epoch{graph=\"k4\"} 1"),
           std::string("trilist_serve_graph_seq{graph=\"k4\"} 2"),
           std::string("trilist_serve_graph_triangles{graph=\"k4\"} 5"),
           std::string("trilist_serve_mutation_latency_seconds"),
       }) {
    EXPECT_NE(text->find(needle), std::string::npos)
        << "missing: " << needle << "\n"
        << *text;
  }
}

// ---------------------------------------------------------------------------
// Concurrency: the TSan surface for the COW epoch swap. Writers push
// disjoint edge sets while readers query the same entry; every reply
// must be internally consistent and the final state is deterministic.

TEST(DynServeTest, ConcurrentMutationsAndQueriesConverge) {
  const std::string path = WriteK4File("dyn_race_k4.txt");
  ServerOptions options;
  options.workers = 4;
  options.max_queue = 256;
  auto server = StartUnixServer("race", {{"k4", path}}, options);

  // Two writers on disjoint ID ranges (so the final edge set does not
  // depend on interleaving) plus two query readers.
  constexpr int kBatches = 8;
  constexpr int kPerBatch = 4;
  std::atomic<bool> failed{false};
  const auto writer = [&](NodeId base) {
    ServeClient client = MustConnect(*server);
    for (int b = 0; b < kBatches && !failed.load(); ++b) {
      std::vector<dyn::EdgeMutation> ops;
      for (int i = 0; i < kPerBatch; ++i) {
        const NodeId u = base + static_cast<NodeId>(b * kPerBatch + i);
        ops.push_back({u, u + 1, true});
      }
      auto reply = client.Mutate(Ops("k4", ops));
      if (!reply.ok()) {
        ADD_FAILURE() << reply.status().ToString();
        failed.store(true);
      }
    }
  };
  const auto reader = [&] {
    ServeClient client = MustConnect(*server);
    QueryRequest query;
    query.graph = "k4";
    query.methods = {Method::kT1};
    for (int i = 0; i < 12 && !failed.load(); ++i) {
      auto response = client.Query(query);
      if (!response.ok()) {
        // Backpressure is a legal outcome under load; anything else is
        // a bug.
        if (!(client.last_failure_was_reply() &&
              client.last_error().code == ErrorCode::kOverloaded)) {
          ADD_FAILURE() << response.status().ToString();
          failed.store(true);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, NodeId{100});
  threads.emplace_back(writer, NodeId{300});
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // Deterministic final state: the base K4 component plus two disjoint
  // paths — same triangle count (4), known node/edge totals.
  ServeClient client = MustConnect(*server);
  QueryRequest query;
  query.graph = "k4";
  query.methods = {Method::kT1, Method::kT2};
  auto response = client.Query(query);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->num_edges, 8u + 2 * kBatches * kPerBatch);
  for (const MethodResult& m : response->methods) {
    EXPECT_EQ(m.triangles, 4u);
  }
}

}  // namespace
}  // namespace trilist::serve
